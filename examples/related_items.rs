//! Related-item recommendation with adaptive top-k queries — the
//! recommendation use case the paper's introduction cites as the driver
//! for single-source SimRank.
//!
//! Setup: a bipartite-flavored catalog where items cluster into
//! categories (planted partition). For a handful of "seed" items we ask
//! for the top-k most similar items via [`Prsim::top_k_adaptive`], which
//! samples only until the answer set stabilizes, and we check how many
//! recommendations land in the seed's own category.
//!
//! Run with: `cargo run --example related_items --release`

use prsim::core::{Prsim, PrsimConfig, QueryParams, TopKParams};
use prsim::gen::{community_of, planted_partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

const COMMUNITIES: usize = 60;
const SIZE: usize = 40;
const K: usize = 10;

fn main() {
    // An item-similarity graph: dense links within a category, sparse
    // across (co-purchase / co-click structure).
    let catalog = planted_partition(COMMUNITIES, SIZE, 0.2, 0.001, 777);
    println!(
        "catalog graph: {} items, {} links, {} categories of {}",
        catalog.node_count(),
        catalog.edge_count(),
        COMMUNITIES,
        SIZE
    );

    let engine = Prsim::build(
        catalog,
        PrsimConfig {
            eps: 0.05,
            query: QueryParams::Practical { c_mult: 3.0 },
            ..Default::default()
        },
    )
    .expect("valid config");
    let mut rng = StdRng::seed_from_u64(99);

    let seeds: Vec<u32> = (0..8).map(|i| (i * 7 * SIZE + 3) as u32).collect();
    let mut in_category = 0usize;
    let mut total = 0usize;
    let mut total_samples = 0usize;
    let start = std::time::Instant::now();

    for &item in &seeds {
        let res = engine
            .top_k_adaptive(item, K, TopKParams::default(), &mut rng)
            .expect("valid query");
        total_samples += res.samples_used;
        let cat = community_of(item, SIZE);
        let hits = res
            .entries
            .iter()
            .filter(|&&(v, _)| community_of(v, SIZE) == cat)
            .count();
        in_category += hits;
        total += res.entries.len();
        println!(
            "item {item:>5} (category {cat:>2}): {hits}/{} recommendations in-category, \
             {} samples, converged = {}",
            res.entries.len(),
            res.samples_used,
            res.converged
        );
    }

    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "\n{in_category}/{total} recommendations share the seed's category \
         ({:.0}%), {:.1} ms and {} samples per query on average",
        100.0 * in_category as f64 / total as f64,
        1e3 * elapsed / seeds.len() as f64,
        total_samples / seeds.len()
    );
    assert!(
        in_category * 10 >= total * 8,
        "expected >=80% in-category recommendations, got {in_category}/{total}"
    );
}
