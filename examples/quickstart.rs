//! Quickstart: build a PRSim engine on a synthetic power-law graph and
//! answer a single-source SimRank query.
//!
//! Run with: `cargo run --example quickstart --release`

use prsim::core::{Prsim, PrsimConfig};
use prsim::gen::{chung_lu_undirected, ChungLuConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Get a graph. Any `prsim::graph::DiGraph` works — load one with
    //    `prsim::graph::io::read_edge_list_file` or generate one:
    let graph = chung_lu_undirected(ChungLuConfig::new(10_000, 10.0, 2.0, 42));
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Build the engine. This runs the paper's Algorithm 1: counting-sort
    //    of adjacency lists, reverse PageRank, hub selection (j0 = sqrt(n)
    //    by default) and one backward search per hub.
    let start = std::time::Instant::now();
    let engine = Prsim::build(graph, PrsimConfig::default()).expect("valid configuration");
    println!(
        "preprocessing: {:.3}s, index: {} hubs, {} entries ({} bytes)",
        start.elapsed().as_secs_f64(),
        engine.index().hub_count(),
        engine.index().entry_count(),
        engine.index().size_bytes(),
    );

    // 3. Query. Randomness is explicit: pass any `rand::Rng`.
    let mut rng = StdRng::seed_from_u64(7);
    let source = 0;
    let start = std::time::Instant::now();
    let scores = engine.single_source(source, &mut rng);
    println!(
        "single-source query from node {source}: {:.4}s, {} non-zero scores",
        start.elapsed().as_secs_f64(),
        scores.len()
    );

    // 4. Consume the result.
    println!("top-10 most SimRank-similar nodes to {source}:");
    for (rank, (v, s)) in scores.top_k(10).into_iter().enumerate() {
        println!("  {:>2}. node {:>6}  s = {:.4}", rank + 1, v, s);
    }
}
