//! Index persistence: build a PRSim index once, serialize it to disk, and
//! reload it into a query engine without re-running preprocessing —
//! the workflow for serving SimRank queries in production.
//!
//! Run with: `cargo run --example index_persistence --release`

use prsim::core::{Prsim, PrsimConfig, PrsimIndex};
use prsim::gen::{chung_lu_undirected, ChungLuConfig};
use prsim::graph::io::{read_binary_file, write_binary_file};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dir = std::env::temp_dir().join("prsim_example_persistence");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let graph_path = dir.join("web.graph");
    let index_path = dir.join("web.prsimix");

    // --- Offline: build and persist -------------------------------------
    let graph = chung_lu_undirected(ChungLuConfig::new(20_000, 10.0, 2.0, 2024));
    let config = PrsimConfig {
        eps: 0.05,
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let engine = Prsim::build(graph, config.clone()).expect("valid config");
    println!("offline build: {:.3}s", t.elapsed().as_secs_f64());

    // The engine's graph is counting-sorted during build; persist that
    // exact graph so the reloaded engine sees identical adjacency order.
    write_binary_file(engine.graph(), &graph_path).expect("write graph");
    std::fs::write(&index_path, engine.index().to_bytes()).expect("write index");
    println!(
        "persisted: graph {}B, index {}B",
        std::fs::metadata(&graph_path).unwrap().len(),
        std::fs::metadata(&index_path).unwrap().len()
    );

    // --- Online: reload and serve ---------------------------------------
    let t = std::time::Instant::now();
    let graph = read_binary_file(&graph_path).expect("read graph");
    let index_bytes = std::fs::read(&index_path).expect("read index");
    let index = PrsimIndex::from_bytes(&index_bytes, graph.node_count()).expect("decode index");
    let pi = prsim::core::pagerank::reverse_pagerank(&graph, config.sqrt_c(), 1e-12, 64);
    let served = Prsim::from_parts(graph, pi, index, config).expect("assemble engine");
    println!(
        "reload: {:.3}s (no backward searches)",
        t.elapsed().as_secs_f64()
    );

    // Same query on both engines: identical index, same seeds, same answer.
    let mut rng1 = StdRng::seed_from_u64(5);
    let mut rng2 = StdRng::seed_from_u64(5);
    let a = engine.single_source(123, &mut rng1);
    let b = served.single_source(123, &mut rng2);
    let diff = a.max_abs_diff(&b);
    println!("max |Δ| between offline and reloaded engine answers: {diff:.6}");
    assert!(diff < 1e-12, "reloaded engine must reproduce the original");
    println!("reloaded engine reproduces the original bit-for-bit ✓");
}
