//! Link prediction with SimRank — the social-network use case from the
//! paper's introduction (Liben-Nowell & Kleinberg).
//!
//! Protocol: generate a community-structured social network (planted
//! partition), hide a random 10% of its edges, and ask PRSim to rank
//! candidate partners for a set of test users. A hidden edge counts as a
//! hit when its endpoint appears in the user's top-k candidates. We
//! compare against the (index-free) ProbeSim baseline and raw
//! common-neighbor counts.
//!
//! Run with: `cargo run --example link_prediction --release`

use prsim::baselines::{ProbeSim, ProbeSimConfig, SingleSourceSimRank};
use prsim::core::{Prsim, PrsimConfig, QueryParams};
use prsim::gen::planted_partition;
use prsim::graph::{DiGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

const K: usize = 20;

fn main() {
    // 100 communities of 40 users; dense inside, sparse across.
    let full = planted_partition(100, 40, 0.25, 0.002, 1234);
    let mut rng = StdRng::seed_from_u64(99);

    // Hide 10% of undirected edges (both directions).
    let mut undirected: Vec<(NodeId, NodeId)> = full.edges().filter(|&(u, v)| u < v).collect();
    undirected.shuffle(&mut rng);
    let hidden_count = undirected.len() / 10;
    let (hidden, kept) = undirected.split_at(hidden_count);
    let hidden_set: HashSet<(NodeId, NodeId)> = hidden.iter().copied().collect();

    let mut builder = GraphBuilder::new();
    builder.ensure_nodes(full.node_count());
    for &(u, v) in kept {
        builder.add_undirected_edge(u, v);
    }
    let observed: DiGraph = builder.build();
    println!(
        "social network: {} nodes, {} observed edges, {} hidden edges",
        observed.node_count(),
        observed.edge_count() / 2,
        hidden.len()
    );

    // Test users: endpoints of hidden edges.
    let mut test_users: Vec<NodeId> = hidden.iter().flat_map(|&(u, v)| [u, v]).collect();
    test_users.sort_unstable();
    test_users.dedup();
    test_users.truncate(40);

    // Rankers. PRSim gets enough samples to resolve community-level scores.
    let engine = Prsim::build(
        observed.clone(),
        PrsimConfig {
            eps: 0.02,
            query: QueryParams::Practical { c_mult: 5.0 },
            ..Default::default()
        },
    )
    .expect("valid config");
    let probesim = ProbeSim::new(
        std::sync::Arc::new(observed.clone()),
        ProbeSimConfig {
            eps_a: 0.05,
            c_mult: 3.0,
            ..Default::default()
        },
    );

    let mut hits_prsim = 0usize;
    let mut hits_probesim = 0usize;
    let mut hits_cn = 0usize;
    let mut total = 0usize;
    let mut prsim_query_s = 0.0;

    for &u in &test_users {
        let truth: HashSet<NodeId> = hidden_set
            .iter()
            .filter_map(|&(a, b)| (a == u).then_some(b).or((b == u).then_some(a)))
            .collect();
        if truth.is_empty() {
            continue;
        }
        total += truth.len();

        let neighbors: HashSet<NodeId> = observed.out_neighbors(u).iter().copied().collect();
        let is_candidate = |v: NodeId| v != u && !neighbors.contains(&v);

        // PRSim ranking.
        let t = std::time::Instant::now();
        let scores = engine.single_source(u, &mut rng);
        prsim_query_s += t.elapsed().as_secs_f64();
        let top: Vec<NodeId> = scores
            .top_k(K + neighbors.len())
            .into_iter()
            .map(|(v, _)| v)
            .filter(|&v| is_candidate(v))
            .take(K)
            .collect();
        hits_prsim += top.iter().filter(|v| truth.contains(v)).count();

        // ProbeSim ranking.
        let scores = probesim.single_source(u, &mut rng);
        let top: Vec<NodeId> = scores
            .top_k(K + neighbors.len())
            .into_iter()
            .map(|(v, _)| v)
            .filter(|&v| is_candidate(v))
            .take(K)
            .collect();
        hits_probesim += top.iter().filter(|v| truth.contains(v)).count();

        // Common-neighbor baseline.
        let mut counts: std::collections::HashMap<NodeId, usize> = Default::default();
        for &w in observed.out_neighbors(u) {
            for &v in observed.out_neighbors(w) {
                if is_candidate(v) {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
        }
        let mut cn: Vec<(NodeId, usize)> = counts.into_iter().collect();
        cn.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits_cn += cn.iter().take(K).filter(|(v, _)| truth.contains(v)).count();
    }

    println!("\nhidden-edge recovery in top-{K} (over {total} hidden endpoints):");
    println!(
        "  PRSim            : {hits_prsim:>4} hits ({:.1} ms/query)",
        1e3 * prsim_query_s / test_users.len() as f64
    );
    println!("  ProbeSim         : {hits_probesim:>4} hits");
    println!("  common neighbors : {hits_cn:>4} hits");
    assert!(
        hits_prsim * 3 >= hits_cn,
        "PRSim should be competitive with common neighbors on community graphs"
    );
    println!("\nOn community-structured networks SimRank recovers hidden partners\nabout as well as common-neighbor counting while also producing a\ncalibrated similarity score, in milliseconds per query via PRSim.");
}
