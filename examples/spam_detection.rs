//! Spam detection with SimRank — the web-graph use case from the paper's
//! introduction (Spirin & Han's survey motivates link-based spam signals).
//!
//! Setup: a power-law "web graph" plus an injected *link farm*: a clique
//! of spam pages that all point at one boosted target page. Given a few
//! known spam seeds, pages are scored by their maximum SimRank similarity
//! to any seed; link-farm members should dominate the ranking because
//! they share in-neighbors (each other) with the seeds.
//!
//! Run with: `cargo run --example spam_detection --release`

use prsim::core::{Prsim, PrsimConfig};
use prsim::gen::{chung_lu_directed, ChungLuConfig};
use prsim::graph::{DiGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const FARM_SIZE: usize = 30;
const SEEDS: usize = 3;

fn main() {
    // Honest web: directed power-law graph.
    let honest = chung_lu_directed(ChungLuConfig::new(4_000, 8.0, 2.0, 555), 2.3, 666);
    let n0 = honest.node_count();

    // Inject the link farm: nodes n0..n0+FARM_SIZE form a near-clique and
    // all point at the boosted page (node 0).
    let mut b = GraphBuilder::new();
    for (u, v) in honest.edges() {
        b.add_edge(u, v);
    }
    let farm: Vec<NodeId> = (n0..n0 + FARM_SIZE).map(|x| x as NodeId).collect();
    for &s in &farm {
        for &t in &farm {
            if s != t {
                b.add_edge(s, t);
            }
        }
        b.add_edge(s, 0); // boost the target page
    }
    let web: DiGraph = b.build();
    println!(
        "web graph: {} pages, {} links ({} farm pages hidden among them)",
        web.node_count(),
        web.edge_count(),
        FARM_SIZE
    );

    // PRSim engine over the full web.
    let engine = Prsim::build(
        web,
        PrsimConfig {
            eps: 0.05,
            ..Default::default()
        },
    )
    .expect("valid config");
    let mut rng = StdRng::seed_from_u64(31);

    // Known spam seeds: the first few farm members.
    let seeds: Vec<NodeId> = farm.iter().copied().take(SEEDS).collect();
    println!("known spam seeds: {seeds:?}");

    // Score every page by max similarity to any seed.
    let mut suspicion: HashMap<NodeId, f64> = HashMap::new();
    for &seed in &seeds {
        let scores = engine.single_source(seed, &mut rng);
        for (v, s) in scores.iter() {
            if v != seed {
                let entry = suspicion.entry(v).or_insert(0.0);
                *entry = entry.max(s);
            }
        }
    }
    let mut ranked: Vec<(NodeId, f64)> = suspicion.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    // Evaluate: how many unknown farm members appear in the top-k?
    let unknown_farm: Vec<NodeId> = farm.iter().copied().skip(SEEDS).collect();
    let k = unknown_farm.len();
    let top: Vec<NodeId> = ranked.iter().take(k).map(|&(v, _)| v).collect();
    let caught = top.iter().filter(|v| unknown_farm.contains(v)).count();

    println!("\ntop-{k} most suspicious pages (by max SimRank to a seed):");
    for (rank, &(v, s)) in ranked.iter().take(10).enumerate() {
        let label = if unknown_farm.contains(&v) {
            "FARM"
        } else if seeds.contains(&v) {
            "seed"
        } else {
            "    "
        };
        println!("  {:>2}. page {:>5}  s = {:.4}  {label}", rank + 1, v, s);
    }
    println!(
        "\nrecall: {caught}/{} unknown farm pages caught in the top-{k}",
        unknown_farm.len()
    );
    assert!(
        caught * 2 >= unknown_farm.len(),
        "expected SimRank to expose at least half the farm"
    );
}
