//! Minimal offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate re-implements exactly the surface the PRSim
//! workspace uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits,
//! a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`thread_rng`], and [`seq::SliceRandom::shuffle`].
//!
//! It is **not** a drop-in replacement for the real crate beyond that
//! surface, and it makes no cryptographic claims whatsoever.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from the full range of the type (the
/// `Standard` distribution of the real crate).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform sampling over a caller-supplied range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`. `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Lemire's multiply-shift rejection sampler: draws uniformly from
/// `[0, span)` for `span >= 1` with **zero bias**.
///
/// The widening multiply `x · span` maps a 64-bit word into `span`
/// buckets of the 128-bit product space; buckets are not all the same
/// size when `2^64 % span != 0`, so draws whose low 64 bits fall below
/// the threshold `2^64 mod span` (the overhang that makes some buckets
/// one element larger) are rejected and redrawn. The threshold check
/// `lo < span` short-circuits the `%` on the overwhelmingly common path:
/// rejection probability is `span / 2^64` at worst, so the expected cost
/// is one multiply per draw. Replaces the previous rejection-free
/// reduction (bias `O(2^-64)`) and classic modulo/retry loops; the
/// `uniformity` tests pin the exactness with a chi-square bound.
#[inline]
pub fn lemire_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0, "lemire_u64: empty span");
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        // 2^64 mod span, computed without 128-bit division.
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo < hi, "gen_range: empty range");
                // Every supported type spans at most 64 bits, so the
                // half-open width always fits in u64.
                let span = (hi as i128 - lo as i128) as u64;
                let scaled = lemire_u64(span, rng);
                (lo as i128 + scaled as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        debug_assert!(lo < hi, "gen_range: empty range");
        let unit = f64::standard_sample(rng);
        let out = lo + (hi - lo) * unit;
        // Guard against rounding up to the excluded endpoint.
        if out < hi {
            out
        } else {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                if hi == <$t>::MAX {
                    if lo == 0 && hi == <$t>::MAX {
                        // Full span: every 64-bit word is already uniform.
                        return <$t>::standard_sample(rng);
                    }
                    // hi = MAX with lo > 0: the span still fits in u64.
                    let span = (hi - lo) as u64 + 1;
                    return lo + lemire_u64(span, rng) as $t;
                }
                <$t>::sample_half_open(lo, hi + 1, rng)
            }
        }
    )*};
}

impl_sample_range_inclusive!(u32, u64, usize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64
    /// (mirrors the real crate's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }

    /// Builds the generator from weak process-local entropy (time,
    /// allocation addresses). Not cryptographically secure.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

fn entropy_u64() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut h = RandomState::new().build_hasher();
    if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        h.write_u128(d.as_nanos());
    }
    h.finish()
}

thread_local! {
    static THREAD_RNG: std::cell::RefCell<rngs::StdRng> =
        std::cell::RefCell::new(rngs::StdRng::from_entropy());
}

/// Handle to a lazily-initialized thread-local [`rngs::StdRng`].
#[derive(Clone, Debug)]
pub struct ThreadRng;

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }
}

/// Returns the thread-local generator handle.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

/// Draws one value from the thread-local generator.
pub fn random<T: StandardSample>() -> T {
    thread_rng().gen::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
            let z: f64 = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = StdRng::seed_from_u64(6);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    /// Pearson chi-square statistic of `draws` uniform draws over
    /// `span` buckets produced by `f`.
    fn chi_square(span: u64, draws: usize, mut f: impl FnMut() -> u64) -> f64 {
        let mut counts = vec![0usize; span as usize];
        for _ in 0..draws {
            let x = f();
            assert!(x < span, "draw {x} outside [0, {span})");
            counts[x as usize] += 1;
        }
        let expect = draws as f64 / span as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum()
    }

    #[test]
    fn lemire_uniformity_chi_square() {
        // Spans chosen so 2^64 mod span != 0 (the rejection threshold is
        // live) and so a modulo-biased or truncation-biased sampler would
        // skew low buckets. dof = span - 1; the p = 0.001 critical values
        // are ~32.9 (dof 12) and ~36.1 (dof 14) — use 40 as a generous
        // deterministic bound (the seeds are fixed, so this is a pinned
        // computation, and the bound says the pin is representative).
        let mut r = StdRng::seed_from_u64(0x1E14_13E5);
        let x2 = chi_square(13, 130_000, || lemire_u64(13, &mut r));
        assert!(x2 < 40.0, "span 13: chi-square {x2:.1}");
        let mut r = StdRng::seed_from_u64(0xCAFE_F00D);
        let x2 = chi_square(15, 150_000, || r.gen_range(0u64..15));
        assert!(x2 < 40.0, "gen_range span 15: chi-square {x2:.1}");
        // Inclusive ranges route through the same reduction.
        let mut r = StdRng::seed_from_u64(7);
        let x2 = chi_square(11, 110_000, || r.gen_range(3u64..=13) - 3);
        assert!(x2 < 40.0, "inclusive span 11: chi-square {x2:.1}");
    }

    #[test]
    fn lemire_exercises_rejection_on_huge_spans() {
        // span just above 2^63: threshold = 2^64 mod span = 2^64 - span
        // is nearly 2^63, so ~half of all words are rejected — the loop
        // must still terminate and stay in range.
        let span = (1u64 << 63) + 3;
        let mut r = StdRng::seed_from_u64(99);
        for _ in 0..1_000 {
            assert!(lemire_u64(span, &mut r) < span);
        }
        // span = 1 is the degenerate single-bucket case.
        assert_eq!(lemire_u64(1, &mut r), 0);
        // Powers of two have threshold 0: never reject, always in range.
        for _ in 0..1_000 {
            assert!(lemire_u64(1u64 << 40, &mut r) < (1u64 << 40));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
