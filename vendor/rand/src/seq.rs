//! Sequence-related random operations.

use crate::Rng;

/// Extension trait adding random operations to slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements staying put is ~impossible");
    }

    #[test]
    fn choose_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1u8, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
