//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly instead of a `Result`. Poisoned
//! locks are recovered transparently, matching parking_lot's behavior of
//! not propagating panics through lock acquisition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires the lock if free, without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutably borrows the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
