//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `criterion_group!` / `criterion_main!` — with a
//! simple mean-of-samples timer instead of criterion's statistical
//! machinery. Output is one `name ... mean ns/iter` line per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` sizes its input batches. The stub runs one input
/// per measured call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; the real crate batches many per allocation.
    SmallInput,
    /// Large setup output; the real crate allocates one at a time.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Identifier for one parameterized benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, discarding one warm-up call first.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
        }
        self.last_mean_ns = total.as_nanos() as f64 / self.samples as f64;
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last_mean_ns = total.as_nanos() as f64 / self.samples as f64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured calls per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let samples = self.sample_size;
        run_one(&id.to_string(), samples, f);
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the measured-call count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is per-benchmark in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        last_mean_ns: 0.0,
    };
    f(&mut b);
    println!(
        "bench: {label:<48} {:>14.1} ns/iter ({samples} samples)",
        b.last_mean_ns
    );
}

/// Declares a group of benchmark functions, with an optional explicit
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| black_box(2) * 2));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            b.iter(|| x * x)
        });
        group.bench_with_input(BenchmarkId::from_parameter(9), &9, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::LargeInput)
        });
        group.finish();
    }

    criterion_group!(simple, trivial_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = trivial_bench, trivial_bench
    }

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| black_box(1)));
    }

    #[test]
    fn group_macros_expand_and_run() {
        simple();
        configured();
    }
}
