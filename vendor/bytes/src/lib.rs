//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements only what the PRSim workspace's binary codecs use:
//! [`Bytes`], [`BytesMut`], and little-endian read/write through the
//! [`Buf`] / [`BufMut`] traits. Unlike the real crate there is no
//! zero-copy reference counting — [`Bytes`] owns a plain `Vec<u8>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// Immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.data
    }
}

/// Growable byte buffer for encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Ensures room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian reads from a byte source.
///
/// Implemented for `&[u8]`, advancing the slice in place — `get_*` on an
/// exhausted buffer panics, so check [`Buf::remaining`] first, exactly as
/// with the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "Buf::copy_to_slice: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(std::f64::consts::PI);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), std::f64::consts::PI);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn truncated_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }

    #[test]
    fn advance_moves_window() {
        let mut r: &[u8] = &[1, 2, 3, 4];
        r.advance(2);
        assert_eq!(r.chunk(), &[3, 4]);
    }
}
