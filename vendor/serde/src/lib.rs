//! Minimal offline stand-in for `serde`.
//!
//! The workspace only *derives* [`Serialize`] as a marker today (no JSON
//! backend is wired up), so the trait carries a single introspection
//! method with a default implementation and the derive macro emits an
//! empty impl. Swap in the real crates when a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the derive's generated `impl ::serde::Serialize` resolve inside
// this crate's own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// Marker trait for serializable types.
///
/// The real crate's `serialize<S: Serializer>` entry point is omitted —
/// nothing in this workspace serializes through serde yet.
pub trait Serialize {
    /// Human-readable name of the implementing type, for diagnostics.
    fn type_name(&self) -> &'static str {
        std::any::type_name::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize as _;

    #[derive(crate::Serialize)]
    struct Probe {
        _x: u32,
    }

    #[test]
    fn derive_produces_an_impl() {
        let p = Probe { _x: 1 };
        assert!(p.type_name().ends_with("Probe"));
    }
}
