//! Derive-macro half of the vendored `serde` stand-in.
//!
//! Emits an empty `impl ::serde::Serialize` for the annotated type.
//! Supports plain (non-generic) structs and enums, which is all the
//! workspace derives today.

use proc_macro::{TokenStream, TokenTree};

/// Derives the marker `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input.clone())
        .unwrap_or_else(|| panic!("#[derive(Serialize)] stub: no struct/enum name in {input}"));
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    None
}
