//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating random values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking; a
/// strategy simply draws a fresh value per case.
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying up to 100 draws.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.sample_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.sample_value(rng)).sample_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..100 {
            let v = self.source.sample_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?}: 100 consecutive rejections", self.whence);
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + Copy,
{
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($s:ident / $v:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(S0 / V0 / 0);
impl_strategy_for_tuple!(S0 / V0 / 0, S1 / V1 / 1);
impl_strategy_for_tuple!(S0 / V0 / 0, S1 / V1 / 1, S2 / V2 / 2);
impl_strategy_for_tuple!(S0 / V0 / 0, S1 / V1 / 1, S2 / V2 / 2, S3 / V3 / 3);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_combinators_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (2usize..10).prop_flat_map(|n| {
            crate::collection::vec((0..n as u32, 0..n as u32), 0..20).prop_map(move |es| (n, es))
        });
        for _ in 0..200 {
            let (n, edges) = strat.sample_value(&mut rng);
            assert!((2..10).contains(&n));
            assert!(edges.len() < 20);
            for (u, v) in edges {
                assert!((u as usize) < n && (v as usize) < n);
            }
        }
    }

    #[test]
    fn just_and_filter_work() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(Just(41).sample_value(&mut rng), 41);
        let evens = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..50 {
            assert_eq!(evens.sample_value(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = 0.0f64..10.0;
        for _ in 0..1000 {
            let x = s.sample_value(&mut rng);
            assert!((0.0..10.0).contains(&x));
        }
    }
}
