//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Sizes accepted by [`vec()`]: a fixed length or a half-open range.
pub trait SizeRange {
    /// Draws a length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_honor_all_size_forms() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(vec(0u32..5, 3usize).sample_value(&mut rng).len(), 3);
            let l = vec(0u32..5, 1..7).sample_value(&mut rng).len();
            assert!((1..7).contains(&l));
            let li = vec(0u32..5, 2..=4).sample_value(&mut rng).len();
            assert!((2..=4).contains(&li));
        }
    }
}
