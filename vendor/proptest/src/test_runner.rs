//! Test-runner configuration and per-test RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted via `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, matching the real crate's default.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for a named test. Override the seed mix with
/// `PROPTEST_SEED=<u64>` to explore different case streams.
pub fn rng_for_test(name: &str) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    let base = h.finish();
    let extra = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    StdRng::seed_from_u64(base ^ extra)
}
