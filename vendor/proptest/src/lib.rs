//! Minimal offline stand-in for `proptest`.
//!
//! Implements the slice of the API the workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed, failures panic immediately, and there is
//! **no shrinking** — a failing case is reported as-is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn doubling_is_even(x in 0u32..1000) {
///         prop_assert_eq!((x * 2) % 2, 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);
                )+
                let run = || -> Result<(), String> { $body Ok(()) };
                if let Err(msg) = run() {
                    panic!("proptest case {case} of {} failed: {msg}", config.cases);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "{}\n  left: {l:?}\n right: {r:?}",
                format!($($fmt)*)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {l:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
///
/// The stub treats an assumption failure as a silently passing case
/// rather than drawing a replacement, so heavy use of narrow assumptions
/// reduces the effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}
