//! # prsim
//!
//! Umbrella crate for the PRSim suite — a from-scratch Rust reproduction of
//! *"PRSim: Sublinear Time SimRank Computation on Large Power-Law Graphs"*
//! (Wei et al., SIGMOD 2019).
//!
//! This crate re-exports the public API of every member crate so examples
//! and downstream users can depend on a single package:
//!
//! * [`graph`] — CSR directed-graph substrate ([`prsim_graph`]).
//! * [`gen`] — synthetic graph generators ([`prsim_gen`]).
//! * [`core`] — the PRSim algorithm itself ([`prsim_core`]).
//! * [`baselines`] — Monte Carlo, power method, SLING, ProbeSim, TSF,
//!   READS and TopSim ([`prsim_baselines`]).
//! * [`eval`] — pooling, metrics and experiment harness ([`prsim_eval`]).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use prsim::gen::{chung_lu_undirected, ChungLuConfig};
//! use prsim::core::{Prsim, PrsimConfig};
//!
//! let graph = chung_lu_undirected(ChungLuConfig::new(1_000, 8.0, 2.5, 42));
//! let engine = Prsim::build(graph, PrsimConfig::default()).unwrap();
//! let scores = engine.single_source(0, &mut rand::thread_rng());
//! let top = scores.top_k(5);
//! assert!(!top.is_empty());
//! ```

pub use prsim_baselines as baselines;
pub use prsim_core as core;
pub use prsim_eval as eval;
pub use prsim_gen as gen;
pub use prsim_graph as graph;
