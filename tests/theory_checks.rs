//! Integration tests validating the paper's *theoretical claims* on real
//! executions: identity Eq. (4), the η·π joint estimator of §3.2, the
//! cost claims of Lemma 3.4 / Theorem 3.11, and the index-size claims of
//! Lemma 3.2 / Theorem 3.12.

use prsim::core::pagerank::{
    exact_lhop_rppr_from, rank_by_pagerank, reverse_pagerank, second_moment,
};
use prsim::core::walk::{estimate_eta, sample_pair_meets, sample_terminal, Terminal};
use prsim::core::{HubCount, Prsim, PrsimConfig, QueryParams};
use prsim::gen::{chung_lu_undirected, ChungLuConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const SQRT_C: f64 = 0.774_596_669_241_483_4;

#[test]
fn eta_pi_joint_estimator_is_unbiased() {
    // §3.2: the probability that a √c-walk from u ends at w at level ℓ
    // AND two follow-up walks from w do not meet equals η(w)·π_ℓ(u,w).
    let g = chung_lu_undirected(ChungLuConfig::new(60, 4.0, 2.0, 17));
    let u = 3u32;
    let mut rng = StdRng::seed_from_u64(5);
    let trials = 400_000usize;
    let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
    for _ in 0..trials {
        if let Terminal::At { node, level } = sample_terminal(&g, SQRT_C, u, 64, &mut rng) {
            if !sample_pair_meets(&g, SQRT_C, node, 64, &mut rng) {
                *counts.entry((node, level)).or_insert(0) += 1;
            }
        }
    }
    // Reference: exact π_ℓ(u,w) times MC-estimated η(w).
    let pi_from = exact_lhop_rppr_from(&g, SQRT_C, u, 20);
    let mut eta_cache: HashMap<u32, f64> = HashMap::new();
    for (&(w, l), &cnt) in counts.iter().filter(|&(_, &c)| c > 1_000) {
        let eta = *eta_cache
            .entry(w)
            .or_insert_with(|| estimate_eta(&g, SQRT_C, w, 100_000, 64, &mut rng));
        let pi_l = pi_from[l as usize].get(&w).copied().unwrap_or(0.0);
        let want = eta * pi_l;
        let got = cnt as f64 / trials as f64;
        assert!(
            (got - want).abs() < 0.15 * want + 1e-3,
            "η·π mismatch at (w={w}, ℓ={l}): got {got:.5}, want {want:.5}"
        );
    }
}

#[test]
fn second_moment_falls_with_gamma() {
    // Theorem 3.12's driver: Σπ(w)² must shrink as the out-degree
    // power-law exponent γ grows (hardness ∝ 1/γ, Conjecture 1).
    let n = 5_000;
    let mut prev = f64::INFINITY;
    for gamma in [1.2f64, 2.0, 4.0] {
        let g = chung_lu_undirected(ChungLuConfig::new(n, 10.0, gamma, 23));
        let pi = reverse_pagerank(&g, SQRT_C, 1e-10, 64);
        let m2 = second_moment(&pi);
        assert!(
            m2 < prev,
            "second moment should fall with gamma: {m2} at gamma={gamma} (prev {prev})"
        );
        prev = m2;
    }
}

#[test]
fn backward_cost_tracks_second_moment() {
    // Theorem 3.11: average backward-walk cost scales with n·Σπ(w)².
    let n = 5_000;
    let mut costs = Vec::new();
    let mut moments = Vec::new();
    for gamma in [1.2f64, 3.0] {
        let g = chung_lu_undirected(ChungLuConfig::new(n, 10.0, gamma, 29));
        let engine = Prsim::build(
            g,
            PrsimConfig {
                eps: 0.25,
                hubs: HubCount::Fixed(0), // pure backward-walk cost
                query: QueryParams::Explicit { dr: 300, fr: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        moments.push(second_moment(engine.reverse_pagerank()));
        let mut rng = StdRng::seed_from_u64(31);
        let mut cost = 0usize;
        for u in [0u32, 100, 2_000, 4_999] {
            let (_, stats) = engine.try_single_source(u, &mut rng).unwrap();
            cost += stats.backward_cost;
        }
        costs.push(cost as f64);
    }
    // γ = 1.2 is the harder instance on both axes.
    assert!(moments[0] > 2.0 * moments[1], "moments: {moments:?}");
    assert!(costs[0] > 1.5 * costs[1], "costs: {costs:?}");
}

#[test]
fn hub_indexing_reduces_backward_work() {
    // §3.3: indexing the top-π hubs removes exactly the most expensive
    // backward walks from the query path.
    let g = chung_lu_undirected(ChungLuConfig::new(3_000, 10.0, 1.6, 37));
    let mk = |j0| {
        Prsim::build(
            g.clone(),
            PrsimConfig {
                eps: 0.25,
                hubs: HubCount::Fixed(j0),
                query: QueryParams::Explicit { dr: 500, fr: 1 },
                ..Default::default()
            },
        )
        .unwrap()
    };
    let free = mk(0);
    let indexed = mk(100);
    let mut cost_free = 0usize;
    let mut cost_indexed = 0usize;
    for (engine, cost) in [(&free, &mut cost_free), (&indexed, &mut cost_indexed)] {
        let mut rng = StdRng::seed_from_u64(41);
        for u in [5u32, 500, 1_500, 2_500] {
            let (_, stats) = engine.try_single_source(u, &mut rng).unwrap();
            *cost += stats.backward_cost;
        }
    }
    assert!(
        cost_indexed * 2 < cost_free,
        "100 hubs should cut backward cost sharply: {cost_indexed} vs {cost_free}"
    );
}

#[test]
fn index_size_grows_with_hub_pagerank_mass() {
    // Lemma 3.2: index size is O(n/ε · Σ_{j≤j0} π(w_j)) — doubling j0
    // adds at most proportionally to the added PageRank mass.
    let g = chung_lu_undirected(ChungLuConfig::new(2_000, 8.0, 2.0, 43));
    let pi = reverse_pagerank(&g, SQRT_C, 1e-10, 64);
    let order = rank_by_pagerank(&pi);
    let mass = |j0: usize| -> f64 { order[..j0].iter().map(|&w| pi[w as usize]).sum() };
    let build = |j0: usize| {
        Prsim::build(
            g.clone(),
            PrsimConfig {
                eps: 0.1,
                hubs: HubCount::Fixed(j0),
                ..Default::default()
            },
        )
        .unwrap()
        .index()
        .entry_count()
    };
    let (e1, e2) = (build(50), build(400));
    let (m1, m2) = (mass(50), mass(400));
    assert!(e2 > e1);
    // Entries per unit of PageRank mass should be of the same order.
    let r1 = e1 as f64 / m1;
    let r2 = e2 as f64 / m2;
    assert!(
        r2 < 4.0 * r1 && r1 < 4.0 * r2,
        "entries per π-mass should be stable: {r1:.0} vs {r2:.0}"
    );
}

#[test]
fn walk_length_distribution_is_geometric() {
    // √c-walk survival: P(len ≥ L) = c^{L/2} on graphs without dangling
    // nodes; the expected terminal level is √c/(1−√c).
    let g = prsim::gen::toys::complete(50);
    let mut rng = StdRng::seed_from_u64(47);
    let trials = 200_000;
    let mut total_level = 0u64;
    for _ in 0..trials {
        match sample_terminal(&g, SQRT_C, 0, 256, &mut rng) {
            Terminal::At { level, .. } => total_level += level as u64,
            Terminal::Died => panic!("complete graph has no dangling nodes"),
        }
    }
    let mean = total_level as f64 / trials as f64;
    let want = SQRT_C / (1.0 - SQRT_C);
    assert!(
        (mean - want).abs() < 0.05,
        "mean walk length {mean:.3}, want {want:.3}"
    );
}
