//! Cross-crate integration tests: every algorithm in the suite must agree
//! with the exact power method within its accuracy budget, end to end.

use prsim::baselines::{
    power_method, MonteCarlo, MonteCarloConfig, ProbeSim, ProbeSimConfig, Reads, ReadsConfig,
    SingleSourceSimRank, Sling, SlingConfig, Tsf, TsfConfig,
};
use prsim::core::{HubCount, Prsim, PrsimConfig, QueryParams};
use prsim::gen::{chung_lu_directed, chung_lu_undirected, ChungLuConfig};
use prsim::graph::DiGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn test_graph() -> DiGraph {
    chung_lu_undirected(ChungLuConfig::new(80, 5.0, 2.0, 31))
}

fn directed_test_graph() -> DiGraph {
    chung_lu_directed(ChungLuConfig::new(80, 5.0, 1.9, 32), 2.3, 33)
}

/// Max |ŝ − s| over all nodes for a few query sources.
fn max_error(
    algo: &dyn SingleSourceSimRank,
    exact: &prsim::baselines::PowerMethodResult,
    sources: &[u32],
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst: f64 = 0.0;
    for &u in sources {
        let scores = algo.single_source(u, &mut rng);
        for v in 0..exact.node_count() as u32 {
            worst = worst.max((scores.get(v) - exact.get(u, v)).abs());
        }
    }
    worst
}

#[test]
fn prsim_matches_exact_simrank() {
    for (name, g) in [
        ("undirected", test_graph()),
        ("directed", directed_test_graph()),
    ] {
        let exact = power_method(&g, 0.6, 1e-10, 200);
        let engine = Prsim::build(
            g,
            PrsimConfig {
                eps: 0.05,
                query: QueryParams::Explicit { dr: 20_000, fr: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for u in [0u32, 11, 40, 79] {
            let scores = engine.single_source(u, &mut rng);
            for v in 0..80u32 {
                let err = (scores.get(v) - exact.get(u, v)).abs();
                assert!(
                    err < 0.05,
                    "{name}: |ŝ({u},{v}) − s| = {err:.4} (ŝ = {}, s = {})",
                    scores.get(v),
                    exact.get(u, v)
                );
            }
        }
    }
}

#[test]
fn prsim_error_shrinks_with_more_samples() {
    let g = test_graph();
    let exact = power_method(&g, 0.6, 1e-10, 200);
    let sources = [0u32, 25, 60];
    let mut errors = Vec::new();
    for dr in [200usize, 2_000, 20_000] {
        let engine = Prsim::build(
            g.clone(),
            PrsimConfig {
                eps: 0.05,
                query: QueryParams::Explicit { dr, fr: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut total = 0.0;
        for &u in &sources {
            let scores = engine.single_source(u, &mut rng);
            for v in 0..80u32 {
                total += (scores.get(v) - exact.get(u, v)).abs();
            }
        }
        errors.push(total);
    }
    assert!(
        errors[2] < errors[0] * 0.5,
        "100x samples should cut total error: {errors:?}"
    );
}

#[test]
fn every_algorithm_agrees_with_power_method() {
    let g = Arc::new(test_graph());
    let exact = power_method(&g, 0.6, 1e-10, 200);
    let sources = [3u32, 42];
    let mut build_rng = StdRng::seed_from_u64(70);

    let mc = MonteCarlo::new(
        Arc::clone(&g),
        MonteCarloConfig {
            nr: 10_000,
            ..Default::default()
        },
    );
    assert!(max_error(&mc, &exact, &sources, 1) < 0.04, "MC");

    let probesim = ProbeSim::new(
        Arc::clone(&g),
        ProbeSimConfig {
            eps_a: 0.02,
            c_mult: 5.0,
            ..Default::default()
        },
    );
    assert!(max_error(&probesim, &exact, &sources, 2) < 0.06, "ProbeSim");

    let sling = Sling::build(
        Arc::clone(&g),
        SlingConfig {
            eps_a: 0.005,
            eta_samples: 20_000,
            ..Default::default()
        },
        &mut build_rng,
    );
    assert!(max_error(&sling, &exact, &sources, 3) < 0.06, "SLING");

    let reads = Reads::build(
        Arc::clone(&g),
        ReadsConfig {
            c: 0.6,
            r: 8_000,
            t: 12,
        },
        &mut build_rng,
    );
    assert!(max_error(&reads, &exact, &sources, 4) < 0.05, "READS");

    // TSF overestimates by design; allow a looser budget.
    let tsf = Tsf::build(
        Arc::clone(&g),
        TsfConfig {
            rg: 300,
            rq: 20,
            ..Default::default()
        },
        &mut build_rng,
    );
    assert!(max_error(&tsf, &exact, &sources, 5) < 0.12, "TSF");
}

#[test]
fn hub_count_sweep_is_consistent() {
    // The same query must be (approximately) answerable at any j0: the
    // index only moves work between ŝ_I and ŝ_B.
    let g = test_graph();
    let exact = power_method(&g, 0.6, 1e-10, 200);
    for j0 in [HubCount::Fixed(0), HubCount::SqrtN, HubCount::Fixed(80)] {
        let engine = Prsim::build(
            g.clone(),
            PrsimConfig {
                eps: 0.05,
                hubs: j0,
                query: QueryParams::Explicit { dr: 10_000, fr: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let scores = engine.single_source(7, &mut rng);
        for v in 0..80u32 {
            let err = (scores.get(v) - exact.get(7, v)).abs();
            assert!(err < 0.06, "j0={j0:?} v={v}: err {err:.4}");
        }
    }
}

#[test]
fn median_trick_improves_worst_case() {
    // With fr rounds the estimator medians out heavy-tailed rounds; just
    // verify fr > 1 still matches the exact values.
    let g = test_graph();
    let exact = power_method(&g, 0.6, 1e-10, 200);
    let engine = Prsim::build(
        g,
        PrsimConfig {
            eps: 0.05,
            query: QueryParams::Explicit { dr: 4_000, fr: 5 },
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let scores = engine.single_source(3, &mut rng);
    for v in 0..80u32 {
        let err = (scores.get(v) - exact.get(3, v)).abs();
        assert!(err < 0.06, "v={v}: err {err:.4}");
    }
}

#[test]
fn adaptive_top_k_matches_exact_ranking() {
    // The adaptive top-k must recover the power method's top-k set up to
    // near-ties (scores within 2ε of the k-th exact score are acceptable
    // swaps for a randomized ε-approximation).
    let g = test_graph();
    let exact = power_method(&g, 0.6, 1e-10, 200);
    let engine = Prsim::build(
        g,
        PrsimConfig {
            eps: 0.02,
            query: QueryParams::Practical { c_mult: 3.0 },
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let k = 8;
    for u in [0u32, 23, 61] {
        let res = engine
            .top_k_adaptive(u, k, prsim::core::TopKParams::default(), &mut rng)
            .unwrap();
        // Exact reference ranking (excluding u).
        let mut truth: Vec<(u32, f64)> = (0..80u32)
            .filter(|&v| v != u)
            .map(|v| (v, exact.get(u, v)))
            .collect();
        truth.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let kth = truth.get(k - 1).map(|&(_, s)| s).unwrap_or(0.0);
        for &(v, _) in &res.entries {
            let s = exact.get(u, v);
            assert!(
                s >= kth - 0.04,
                "u={u}: node {v} (exact s={s:.4}) is far below the k-th score {kth:.4}"
            );
        }
    }
}

#[test]
fn deterministic_given_seed() {
    let g = test_graph();
    let engine = Prsim::build(g, PrsimConfig::default()).unwrap();
    let a = engine.single_source(5, &mut StdRng::seed_from_u64(99));
    let b = engine.single_source(5, &mut StdRng::seed_from_u64(99));
    assert_eq!(a.max_abs_diff(&b), 0.0);
    let c = engine.single_source(5, &mut StdRng::seed_from_u64(100));
    assert!(c.max_abs_diff(&a) > 0.0, "different seeds should differ");
}

#[test]
fn index_round_trip_preserves_answers() {
    let g = test_graph();
    let config = PrsimConfig::default();
    let engine = Prsim::build(g, config.clone()).unwrap();
    let bytes = engine.index().to_bytes();
    let index = prsim::core::PrsimIndex::from_bytes(&bytes, engine.graph().node_count()).unwrap();
    let pi = engine.reverse_pagerank().to_vec();
    let reloaded = Prsim::from_parts(engine.graph().clone(), pi, index, config).unwrap();
    let a = engine.single_source(9, &mut StdRng::seed_from_u64(1));
    let b = reloaded.single_source(9, &mut StdRng::seed_from_u64(1));
    assert_eq!(a.max_abs_diff(&b), 0.0);
}
