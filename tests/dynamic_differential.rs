//! Differential correctness harness for the incremental dynamic engine.
//!
//! The contract under test: after *any* stream of edge updates, an
//! incremental [`DynamicPrsim`] must answer single-source queries like a
//! PRSim engine **freshly built** over the same final edge set. The two
//! engines run the same estimator with the same sample budget but consume
//! their RNGs differently (the incremental CSR merge orders adjacency
//! lists differently than a from-scratch build), so "like" means within
//! the Monte-Carlo tolerance `DIFF_TOL` — a bound both sides meet w.h.p.
//! at the explicit sample count used here; everything is seeded, so the
//! suite is deterministic.
//!
//! On failure, the assertion message prints the full offending update
//! stream in `prsim update --stream` format, ready to replay. (The
//! vendored proptest stand-in does not shrink, so the stream is reported
//! as generated.)

use proptest::prelude::*;
use prsim::core::{DynamicParams, DynamicPrsim, Prsim, PrsimConfig, QueryParams, UpdateMode};
use prsim::graph::{DiGraph, EdgeUpdate, GraphBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Max |ŝ_inc − ŝ_fresh| allowed on any probe. With `DR` walk samples the
/// per-entry MC noise of each engine is ≈ √(1/(4·DR)) ≈ 0.006, so 0.1
/// (the configured ε) leaves a ~8σ margin for the worst entry.
const DIFF_TOL: f64 = 0.1;
/// Per-round walk samples of both engines.
const DR: usize = 4_000;

fn config() -> PrsimConfig {
    PrsimConfig {
        eps: DIFF_TOL,
        query: QueryParams::Explicit { dr: DR, fr: 1 },
        // The cache-invalidation regime opts in explicitly; the other
        // regimes isolate the index/graph maintenance under test.
        walk_cache_budget: 0,
        ..Default::default()
    }
}

/// The cache-invalidation regime's config: every node of the (≤ 44-node)
/// universe gets a pre-sampled pool, so each update must invalidate and
/// refill exactly the pools whose walks can traverse the changed
/// adjacency — any missed invalidation leaves a pool answering for the
/// old graph and blows the differential bound.
fn cached_config() -> PrsimConfig {
    PrsimConfig {
        walk_cache_budget: 64,
        ..config()
    }
}

/// Renders a stream in the `prsim update --stream` text format.
fn render_stream(stream: &[EdgeUpdate]) -> String {
    stream
        .iter()
        .map(|u| u.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Builds a fresh engine over the dynamic engine's current edge set.
fn fresh_over(engine: &DynamicPrsim, cfg: &PrsimConfig) -> Prsim {
    let mut b = GraphBuilder::new();
    b.ensure_nodes(engine.node_count());
    for (u, v) in engine
        .engine()
        .expect("incremental engine is built")
        .graph()
        .edges()
    {
        b.add_edge(u, v);
    }
    Prsim::build(b.build(), cfg.clone()).unwrap()
}

/// Core differential check: replay `stream` on an incremental engine,
/// probing after every `probe_every`-th update and at the end; each probe
/// compares a set of sources against a fresh build (both engines under
/// the same `cfg`, so the cache regime compares cached vs cached).
fn check_stream_with(
    cfg: PrsimConfig,
    base: &DiGraph,
    stream: &[EdgeUpdate],
    params: DynamicParams,
    probe_every: usize,
    seed: u64,
) -> Result<(), String> {
    let mut engine = DynamicPrsim::new(base, cfg.clone(), UpdateMode::Incremental(params))
        .map_err(|e| e.to_string())?;
    let context = |at: usize| {
        format!(
            "seed {seed}, base n={} m={}, probe after update {at}/{} of stream:\n{}",
            base.node_count(),
            base.edge_count(),
            stream.len(),
            render_stream(stream),
        )
    };
    let probe = |engine: &mut DynamicPrsim, at: usize| -> Result<(), String> {
        let fresh = fresh_over(engine, &cfg);
        let n = engine.node_count() as u32;
        let sources = [0u32, n / 2, n.saturating_sub(1)];
        for &u in &sources {
            let (inc, _) = engine
                .single_source(u, &mut StdRng::seed_from_u64(seed ^ u as u64))
                .map_err(|e| e.to_string())?;
            let fr = fresh.single_source(u, &mut StdRng::seed_from_u64(seed ^ u as u64));
            let diff = inc.max_abs_diff(&fr);
            if diff > DIFF_TOL {
                return Err(format!(
                    "source {u}: incremental vs fresh diff {diff} > {DIFF_TOL}\n{}",
                    context(at)
                ));
            }
        }
        Ok(())
    };
    for (i, &up) in stream.iter().enumerate() {
        engine.apply(up).map_err(|e| e.to_string())?;
        if (i + 1) % probe_every == 0 {
            probe(&mut engine, i + 1)?;
        }
    }
    probe(&mut engine, stream.len())
}

/// Random base graphs over up to 40 nodes.
fn arb_base() -> impl Strategy<Value = DiGraph> {
    (6usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 5..120).prop_map(move |es| {
            let mut b = GraphBuilder::new();
            b.ensure_nodes(n);
            for (u, v) in es {
                b.add_edge(u, v);
            }
            b.build()
        })
    })
}

/// Random update streams over a slightly larger node range than the base
/// (so inserts can grow the universe). op 0 = insert, 1 = delete.
fn arb_stream() -> impl Strategy<Value = Vec<EdgeUpdate>> {
    proptest::collection::vec((0u8..2, 0u32..44, 0u32..44), 1..14).prop_map(|ops| {
        ops.into_iter()
            .map(|(op, u, v)| {
                if op == 0 {
                    EdgeUpdate::Insert(u, v)
                } else {
                    EdgeUpdate::Delete(u, v)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mixed random streams, permissive drift budget: the repair path
    /// carries the whole maintenance load.
    #[test]
    fn incremental_matches_fresh_on_random_streams(base in arb_base(), stream in arb_stream()) {
        let params = DynamicParams { drift_budget: 1e9, ..Default::default() };
        check_stream_with(config(), &base, &stream, params, 5, 0xD1FF)?;
    }

    /// Tiny drift budget: every update goes through the full-rebuild
    /// fallback, which re-selects hubs — the divergent-hub-set half of
    /// the contract.
    #[test]
    fn incremental_matches_fresh_under_constant_rebuilds(base in arb_base(), stream in arb_stream()) {
        let params = DynamicParams { drift_budget: 1e-12, ..Default::default() };
        check_stream_with(config(), &base, &stream, params, 7, 0xBEEF)?;
    }

    /// Aggressive compaction: overlay folds into the CSR base every
    /// couple of updates, exercising the post-compaction delete/insert
    /// paths.
    #[test]
    fn incremental_matches_fresh_with_tiny_compaction_threshold(base in arb_base(), stream in arb_stream()) {
        let params = DynamicParams {
            drift_budget: 1e9,
            compact_threshold: 2,
            ..Default::default()
        };
        check_stream_with(config(), &base, &stream, params, 6, 0xC0DE)?;
    }

    /// Cache-invalidation regime: walk cache enabled on both engines,
    /// permissive drift budget so updates repair (never drop) the cache.
    /// Incremental answers after any stream must match a fresh cached
    /// build within eps — a missed pool invalidation would leave stale
    /// pre-drawn walks answering for a graph that no longer exists.
    #[test]
    fn incremental_matches_fresh_with_cache_enabled(base in arb_base(), stream in arb_stream()) {
        let params = DynamicParams { drift_budget: 1e9, ..Default::default() };
        check_stream_with(cached_config(), &base, &stream, params, 5, 0xCAC4E)?;
    }
}

/// Deterministic cache-invalidation check with counter assertions: the
/// stream touches reachable adjacency, so pools must actually be
/// invalidated (and the totals must say so), while answers track a fresh
/// cached build.
#[test]
fn cache_invalidation_counters_flow_and_stay_correct() {
    let base = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(30, 4.0, 2.0, 11));
    let params = DynamicParams {
        drift_budget: 1e9,
        ..Default::default()
    };
    let mut engine =
        DynamicPrsim::new(&base, cached_config(), UpdateMode::Incremental(params)).unwrap();
    assert!(engine.engine().unwrap().walk_cache().is_some());
    let mut invalidated = 0usize;
    for i in 0..8u32 {
        let stats = engine.insert_edge(i % 30, (i * 7 + 3) % 30).unwrap();
        if stats.applied {
            invalidated += stats.cache_invalidated_pools;
        }
    }
    assert!(
        invalidated > 0,
        "edge inserts into a connected region must dirty some pools"
    );
    assert_eq!(engine.totals().cache_invalidations, invalidated);
    // Differential: the maintained cache answers like a fresh one.
    let fresh = fresh_over(&engine, &cached_config());
    for u in [0u32, 15, 29] {
        let (inc, _) = engine
            .single_source(u, &mut StdRng::seed_from_u64(77 ^ u as u64))
            .unwrap();
        let fr = fresh.single_source(u, &mut StdRng::seed_from_u64(77 ^ u as u64));
        let diff = inc.max_abs_diff(&fr);
        assert!(diff <= DIFF_TOL, "source {u}: diff {diff}");
    }
}

/// Insert-only and delete-only streams on a fixed graph, probed after
/// every update — the deterministic smoke tier of the harness.
#[test]
fn directed_insert_then_delete_everything() {
    let base =
        prsim::gen::chung_lu_directed(prsim::gen::ChungLuConfig::new(30, 4.0, 2.0, 7), 2.2, 8);
    let mut stream: Vec<EdgeUpdate> = (0..10u32)
        .map(|i| EdgeUpdate::Insert(i % 30, (i * 11 + 1) % 30))
        .collect();
    // Then delete every edge the base started with.
    stream.extend(base.edges().take(20).map(|(u, v)| EdgeUpdate::Delete(u, v)));
    let params = DynamicParams {
        drift_budget: 1e9,
        compact_threshold: 4,
        ..Default::default()
    };
    check_stream_with(config(), &base, &stream, params, 1, 42).unwrap();
}

#[test]
fn stream_that_empties_the_graph_entirely() {
    let base = prsim::gen::toys::cycle(6);
    let stream: Vec<EdgeUpdate> = base
        .edges()
        .map(|(u, v)| EdgeUpdate::Delete(u, v))
        .collect();
    let params = DynamicParams {
        drift_budget: 1e9,
        ..Default::default()
    };
    check_stream_with(config(), &base, &stream, params, 1, 3).unwrap();
}

/// Max |ŝ_fused − ŝ_reference| on the *same* engine and RNG stream. The
/// two plans consume identical samples; the only permitted difference is
/// the fused plan's final-level fold reassociation, which is ~1 ulp per
/// entry — 1e-9 leaves seven orders of magnitude of headroom while still
/// catching any real divergence (a skipped terminal, a double-counted
/// posting, a stale accumulator slot).
const PLAN_TOL: f64 = 1e-9;

/// Replays `stream` on one incremental engine and, at every probe,
/// answers each source under both query plans from identically seeded
/// RNGs. Unlike the incremental-vs-fresh regimes above, this bound is
/// numerical, not statistical.
fn check_plan_differential(cfg: PrsimConfig, stream: &[EdgeUpdate], seed: u64) {
    let base = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(36, 4.0, 2.0, 13));
    let params = DynamicParams {
        drift_budget: 1e9,
        ..Default::default()
    };
    let mut engine = DynamicPrsim::new(&base, cfg, UpdateMode::Incremental(params)).unwrap();
    let probe = |engine: &mut DynamicPrsim, at: usize| {
        let n = engine.node_count() as u32;
        for &u in &[0u32, n / 2, n - 1] {
            engine.set_query_plan(prsim::core::QueryPlan::Fused);
            let (fused, fstats) = engine
                .single_source(u, &mut StdRng::seed_from_u64(seed ^ u as u64))
                .unwrap();
            engine.set_query_plan(prsim::core::QueryPlan::Reference);
            let (reference, rstats) = engine
                .single_source(u, &mut StdRng::seed_from_u64(seed ^ u as u64))
                .unwrap();
            let diff = fused.max_abs_diff(&reference);
            assert!(
                diff <= PLAN_TOL,
                "source {u} after update {at}: fused vs reference diff {diff} > {PLAN_TOL}\n\
                 stream:\n{}",
                render_stream(stream)
            );
            assert_eq!(fstats, rstats, "stats diverged at source {u}, update {at}");
        }
    };
    for (i, &up) in stream.iter().enumerate() {
        engine.apply(up).unwrap();
        if (i + 1) % 4 == 0 {
            probe(&mut engine, i + 1);
        }
    }
    probe(&mut engine, stream.len());
}

/// Deterministic mixed stream shared by the plan-differential regimes.
fn plan_stream() -> Vec<EdgeUpdate> {
    (0..12u32)
        .map(|i| {
            if i % 3 == 2 {
                EdgeUpdate::Delete(i % 36, (i * 5 + 2) % 36)
            } else {
                EdgeUpdate::Insert((i * 7) % 36, (i * 11 + 1) % 36)
            }
        })
        .collect()
}

/// Fused vs reference across an update stream, f64 reserves, walk cache
/// enabled (both plans consume cached draws identically).
#[test]
fn fused_matches_reference_across_updates_f64() {
    let cfg = PrsimConfig {
        reserve_precision: prsim::core::ReservePrecision::F64,
        walk_cache_budget: 64,
        ..config()
    };
    check_plan_differential(cfg, &plan_stream(), 0xF05ED);
}

/// Same regime over f32 reserves: quantization moves both plans by the
/// same amount, so the plan-to-plan bound stays numerical.
#[test]
fn fused_matches_reference_across_updates_f32() {
    let cfg = PrsimConfig {
        reserve_precision: prsim::core::ReservePrecision::F32,
        walk_cache_budget: 0,
        ..config()
    };
    check_plan_differential(cfg, &plan_stream(), 0xF32);
}

#[test]
fn rebuild_mode_is_differentially_correct_at_batch_boundaries() {
    // The paper's rebuild-on-batch contract: at a batch boundary the
    // engine is a fresh build over the same edges, so it must pass the
    // same differential bound the incremental engine is held to.
    let base = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(40, 4.0, 2.0, 9));
    let mut engine =
        DynamicPrsim::new(&base, config(), UpdateMode::RebuildOnBatch { batch: 1 }).unwrap();
    for i in 0..5u32 {
        engine.insert_edge(i, 39 - i).unwrap();
        let (inc, _) = engine
            .single_source(2, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let fresh = fresh_over(&engine, &config());
        let fr = fresh.single_source(2, &mut StdRng::seed_from_u64(11));
        let diff = inc.max_abs_diff(&fr);
        assert!(diff <= DIFF_TOL, "update {i}: diff {diff}");
    }
}
