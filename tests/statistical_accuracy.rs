//! Statistical accuracy tier: PRSim single-source estimates vs the exact
//! SimRank of the power method, on graphs small enough for an `O(n²)`
//! ground truth.
//!
//! The sample budget is derived from a Hoeffding-style bound rather than
//! guessed: the query's sampling noise concentrates like an average of
//! `d_r` bounded contributions, so
//! `d_r = ln(2·n·probes/δ) / (2·(ε/2)²)` makes
//! `P(any probed entry deviates by more than ε/2) ≤ δ`, leaving the other
//! `ε/2` of the budget for the deterministic (backward-search residue and
//! truncation) error. Every RNG is seeded, so the suite is a fixed
//! computation — the bound is what makes the *chosen seed* representative
//! rather than lucky, and δ = 1e-3 means a re-seed would still pass 99.9%
//! of the time. No retries, no tolerance slop beyond ε itself.

use prsim::baselines::power_method;
use prsim::core::{
    DynamicPrsim, HubCount, Prsim, PrsimConfig, QueryParams, QueryPlan, ReservePrecision,
};
use prsim::graph::DiGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every engine in this suite keeps the walk cache **off** unless a test
/// explicitly opts in: the cached-walk regimes below assert the cache's
/// own accuracy, while the rest of the suite pins the live sampler.
const NO_CACHE: usize = 0;

const C: f64 = 0.6;
const EPS: f64 = 0.1;
const DELTA: f64 = 1e-3;

/// Hoeffding-style sample count: mean of `d_r` [0,1]-bounded draws stays
/// within `t` of its expectation w.p. `1 − 2·exp(−2·d_r·t²)`; union-bound
/// over `entries` probed entries and solve for `d_r` at `t = ε/2`.
fn hoeffding_dr(entries: usize, eps: f64, delta: f64) -> usize {
    let t = eps / 2.0;
    ((2.0 * entries as f64 / delta).ln() / (2.0 * t * t)).ceil() as usize
}

fn accuracy_config(dr: usize, fr: usize) -> PrsimConfig {
    PrsimConfig {
        c: C,
        eps: EPS,
        query: QueryParams::Explicit { dr, fr },
        walk_cache_budget: NO_CACHE,
        ..Default::default()
    }
}

/// Asserts max-abs error of `engine` vs exact SimRank over `sources`.
fn assert_within_eps(engine: &Prsim, g: &DiGraph, sources: &[u32], seed: u64) {
    let exact = power_method(g, C, 1e-12, 200);
    let mut worst: f64 = 0.0;
    let mut worst_at = (0u32, 0u32);
    for &u in sources {
        let mut rng = StdRng::seed_from_u64(seed ^ u as u64);
        let scores = engine.single_source(u, &mut rng);
        for v in 0..g.node_count() as u32 {
            let err = (scores.get(v) - exact.get(u, v)).abs();
            if err > worst {
                worst = err;
                worst_at = (u, v);
            }
        }
    }
    assert!(
        worst <= EPS,
        "max |ŝ − s| = {worst} at {worst_at:?} exceeds ε = {EPS}"
    );
}

#[test]
fn single_source_beats_eps_on_undirected_power_law() {
    let g = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(60, 5.0, 2.0, 101));
    let sources = [0u32, 17, 59];
    let dr = hoeffding_dr(sources.len() * g.node_count(), EPS, DELTA);
    let engine = Prsim::build(g.clone(), accuracy_config(dr, 1)).unwrap();
    assert_within_eps(&engine, &g, &sources, 0xACC);
}

#[test]
fn single_source_beats_eps_on_directed_graph() {
    let g =
        prsim::gen::chung_lu_directed(prsim::gen::ChungLuConfig::new(50, 4.0, 1.9, 102), 2.3, 103);
    let sources = [3u32, 25, 49];
    let dr = hoeffding_dr(sources.len() * g.node_count(), EPS, DELTA);
    let engine = Prsim::build(g.clone(), accuracy_config(dr, 1)).unwrap();
    assert_within_eps(&engine, &g, &sources, 0xACD);
}

#[test]
fn median_trick_rounds_also_beat_eps() {
    // f_r > 1 splits the same budget over median-of-means rounds; the
    // median path must meet the same ε.
    let g = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(40, 4.0, 2.2, 104));
    let sources = [0u32, 20, 39];
    let dr = hoeffding_dr(sources.len() * g.node_count(), EPS, DELTA);
    let engine = Prsim::build(g.clone(), accuracy_config(dr, 3)).unwrap();
    assert_within_eps(&engine, &g, &sources, 0xACE);
}

#[test]
fn f32_reserve_regime_beats_eps_at_the_same_sample_counts() {
    // The quantized-arena regime: reserves stored as f32 perturb each
    // index contribution by a relative 2⁻²⁴ ≈ 6e-8 — orders of magnitude
    // inside the ε/2 deterministic half of the budget — so the engine
    // must meet the *same* Hoeffding-derived bound at the *same* d_r as
    // the f64 engine, with no extra samples and no tolerance slop.
    let g = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(60, 5.0, 2.0, 101));
    let sources = [0u32, 17, 59];
    let dr = hoeffding_dr(sources.len() * g.node_count(), EPS, DELTA);
    let config = PrsimConfig {
        reserve_precision: ReservePrecision::F32,
        // Force every terminal within reach of a hub through the index so
        // the quantized postings actually carry the estimate.
        hubs: HubCount::Fixed(g.node_count()),
        ..accuracy_config(dr, 1)
    };
    let engine = Prsim::build(g.clone(), config).unwrap();
    assert_eq!(
        engine.index().precision(),
        ReservePrecision::F32,
        "config flag must reach the arena"
    );
    assert_within_eps(&engine, &g, &sources, 0xACC);

    // Same seeds, f64 vs f32 engines: the realized estimates may differ
    // only by the quantization term, far below statistical noise.
    let wide = Prsim::build(
        g.clone(),
        PrsimConfig {
            hubs: HubCount::Fixed(g.node_count()),
            ..accuracy_config(dr, 1)
        },
    )
    .unwrap();
    for &u in &sources {
        use rand::{rngs::StdRng, SeedableRng};
        let a = engine.single_source(u, &mut StdRng::seed_from_u64(0xACC ^ u as u64));
        let b = wide.single_source(u, &mut StdRng::seed_from_u64(0xACC ^ u as u64));
        let diff = a.max_abs_diff(&b);
        assert!(
            diff < 1e-5,
            "f32 vs f64 engines diverge by {diff} at source {u}"
        );
    }
}

#[test]
fn cached_walk_regime_beats_eps() {
    // The terminal-sample cache substitutes pre-drawn walk remainders and
    // η verdicts for live sampling. Every node is cached here (budget ≥
    // n), so the whole walk phase runs off the pools — the estimates must
    // meet the *same* Hoeffding-derived bound at the *same* d_r as live
    // sampling, because each query's draws are an honest without-
    // replacement window over i.i.d. pool samples.
    let g = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(60, 5.0, 2.0, 101));
    let sources = [0u32, 17, 59];
    let dr = hoeffding_dr(sources.len() * g.node_count(), EPS, DELTA);
    let config = PrsimConfig {
        walk_cache_budget: g.node_count(),
        ..accuracy_config(dr, 1)
    };
    let engine = Prsim::build(g.clone(), config).unwrap();
    // The cache must actually be carrying the walk phase.
    let (_, stats) = engine
        .try_single_source(0, &mut StdRng::seed_from_u64(1))
        .unwrap();
    assert!(
        stats.cached_terminals > 0,
        "fully cached engine must serve terminal draws from pools"
    );
    assert!(
        stats.cached_eta > 0,
        "fully cached engine must serve eta verdicts from pools"
    );
    assert_within_eps(&engine, &g, &sources, 0xACC);
}

#[test]
fn cached_walk_regime_beats_eps_with_f32_reserves() {
    // Cache and quantized arena together: both error sources (pool
    // correlation is zero *within* a query; f32 rounding is ≤ 2⁻²⁴
    // relative) must still fit the same ε with the same sample counts.
    let g = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(60, 5.0, 2.0, 101));
    let sources = [0u32, 17, 59];
    let dr = hoeffding_dr(sources.len() * g.node_count(), EPS, DELTA);
    let config = PrsimConfig {
        walk_cache_budget: g.node_count(),
        reserve_precision: ReservePrecision::F32,
        hubs: HubCount::Fixed(g.node_count()),
        ..accuracy_config(dr, 1)
    };
    let engine = Prsim::build(g.clone(), config).unwrap();
    assert_eq!(engine.index().precision(), ReservePrecision::F32);
    assert!(engine.walk_cache().is_some());
    assert_within_eps(&engine, &g, &sources, 0xACB);
}

#[test]
fn fused_plan_beats_eps_under_the_same_hoeffding_bound() {
    // The fused back-half (per-terminal VBBW folded straight into the
    // accumulator, branchless ŝ_I scatter) is pinned to the *same*
    // Hoeffding-derived d_r as the reference plan — it reorders float
    // adds, it does not resample — so it must meet the same ε with no
    // extra budget. Forced explicitly rather than relying on `Auto`
    // resolving to Fused, so the bound keeps holding even if the Auto
    // rule changes.
    let g = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(60, 5.0, 2.0, 101));
    let sources = [0u32, 17, 59];
    let dr = hoeffding_dr(sources.len() * g.node_count(), EPS, DELTA);
    let fused = PrsimConfig {
        plan: QueryPlan::Fused,
        ..accuracy_config(dr, 1)
    };
    let engine = Prsim::build(g.clone(), fused).unwrap();
    assert_within_eps(&engine, &g, &sources, 0xACC);

    // And the reference plan, same seeds, same bound: both plans are
    // full citizens of the accuracy contract.
    let reference = PrsimConfig {
        plan: QueryPlan::Reference,
        ..accuracy_config(dr, 1)
    };
    let engine = Prsim::build(g.clone(), reference).unwrap();
    assert_within_eps(&engine, &g, &sources, 0xACC);
}

#[test]
fn fused_plan_beats_eps_with_cache_and_median_rounds() {
    // Fused plan under the heaviest estimator configuration: median
    // trick over f_r = 3 rounds with a fully cached walk phase. Same
    // Hoeffding d_r, same ε.
    let g = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(40, 4.0, 2.2, 104));
    let sources = [0u32, 20, 39];
    let dr = hoeffding_dr(sources.len() * g.node_count(), EPS, DELTA);
    let config = PrsimConfig {
        plan: QueryPlan::Fused,
        walk_cache_budget: g.node_count(),
        ..accuracy_config(dr, 3)
    };
    let engine = Prsim::build(g.clone(), config).unwrap();
    assert_within_eps(&engine, &g, &sources, 0xACE);
}

#[test]
fn index_free_engine_beats_eps() {
    // HubCount::Fixed(0): every terminal takes the backward-walk path.
    let g = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(40, 4.0, 2.0, 105));
    let sources = [1u32, 30];
    let dr = hoeffding_dr(sources.len() * g.node_count(), EPS, DELTA);
    let config = PrsimConfig {
        hubs: HubCount::Fixed(0),
        ..accuracy_config(dr, 1)
    };
    let engine = Prsim::build(g.clone(), config).unwrap();
    assert_within_eps(&engine, &g, &sources, 0xACF);
}

#[test]
fn incremental_engine_stays_within_eps_after_updates() {
    // The dynamic engine's answers after a burst of edits must satisfy
    // the same ε bound against the exact SimRank of the *mutated* graph.
    let g0 = prsim::gen::chung_lu_undirected(prsim::gen::ChungLuConfig::new(45, 4.0, 2.0, 106));
    let sources = [0u32, 22, 44];
    let dr = hoeffding_dr(sources.len() * 45, EPS, DELTA);
    let mut dyn_engine = DynamicPrsim::new_incremental(&g0, accuracy_config(dr, 1)).unwrap();
    for i in 0..8u32 {
        dyn_engine
            .insert_edge(i * 5 % 45, (i * 7 + 2) % 45)
            .unwrap();
    }
    let (du, dv) = g0.edges().next().unwrap();
    dyn_engine.delete_edge(du, dv).unwrap();

    let current = dyn_engine.engine().unwrap().graph().clone();
    let exact = power_method(&current, C, 1e-12, 200);
    for &u in &sources {
        let (scores, _) = dyn_engine
            .single_source(u, &mut StdRng::seed_from_u64(0xAD0 ^ u as u64))
            .unwrap();
        for v in 0..current.node_count() as u32 {
            let err = (scores.get(v) - exact.get(u, v)).abs();
            assert!(err <= EPS, "after updates: |ŝ({u},{v}) − s| = {err} > ε");
        }
    }
}
