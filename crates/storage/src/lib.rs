//! Injectable storage layer shared by the WAL and the paged arena.
//!
//! `prsim-server`'s write-ahead log and `prsim-core`'s buffer pool
//! perform every filesystem operation through the [`Storage`] and
//! [`WalFile`] traits instead of calling `std::fs` directly. Production
//! uses [`FsStorage`], a thin passthrough; tests swap in
//! [`fault::FaultyStorage`], which injects a deterministic,
//! seed-scheduled mix of fsync failures, short writes, disk-full
//! errors, read errors, page bit-rot, directory-sync failures and
//! rename failures — so the whole durability path (append → rotate →
//! checkpoint → replay) *and* the out-of-core read path (pin → verify
//! checksum → retry → degrade) can be driven through chaos schedules
//! without touching a real disk's failure modes.
//!
//! The trait surface is exactly the set of operations those two
//! subsystems need, not a general filesystem: that keeps the fault
//! matrix enumerable (every method is either faultable or documented as
//! repair-path reliable — see [`fault`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An open, append-only log file handle.
///
/// Handles are append-positioned by construction (the WAL never seeks);
/// truncation happens by path through [`Storage::truncate`] so a repair
/// can run even when the writing handle is suspect.
pub trait WalFile: Send + Sync {
    /// Appends `buf` in full (or fails, possibly after a partial write —
    /// the caller repairs via [`Storage::truncate`]).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flushes data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem surface the WAL and the buffer pool run on.
///
/// Methods that matter for durability can fail (and are fault-injected
/// in tests); [`truncate`](Storage::truncate) and
/// [`remove_file`](Storage::remove_file) are the *repair* surface the
/// WAL uses to undo a failed operation, so implementations must keep
/// them as reliable as the underlying filesystem allows.
pub trait Storage: Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Lists the entries of `dir` (files only, any order).
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Reads exactly the first `n` bytes of a file.
    fn read_prefix(&self, path: &Path, n: usize) -> io::Result<Vec<u8>>;
    /// Reads exactly `len` bytes starting at byte `offset` — the buffer
    /// pool's page-fetch primitive. A short file is an error, never a
    /// short read.
    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>>;
    /// Overwrites `data.len()` bytes in place starting at byte `offset`
    /// and syncs the file — the integrity scrubber's heal primitive for
    /// rewriting a rotten page from a clean resident frame. Never
    /// extends the file: writing past the end is an error.
    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()>;
    /// Opens an existing file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
    /// Creates a new file for appending; fails if it already exists.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
    /// Creates (or truncates) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
    /// Truncates the file at `path` to `len` bytes and fsyncs it.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// The file's current length in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Fsyncs the directory itself, making renames and creations within
    /// it durable. Platforms where directories cannot be opened for
    /// syncing report success (there is nothing actionable to sync);
    /// a directory that *can* be opened but fails to sync is an error
    /// the caller must handle — a just-renamed checkpoint may not
    /// survive a crash until this succeeds.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production backend: a direct passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FsStorage;

impl WalFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
}

impl Storage for FsStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn read_prefix(&self, path: &Path, n: usize) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; n];
        File::open(path)?.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        let len = fs::metadata(path)?.len();
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or_else(|| io::Error::other("write_at range overflows"))?;
        if end > len {
            return Err(io::Error::other(format!(
                "write_at [{offset}, {end}) exceeds file length {len}"
            )));
        }
        let mut f = OpenOptions::new().write(true).open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        Write::write_all(&mut f, data)?;
        f.sync_data()
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(OpenOptions::new().append(true).open(path)?))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(
            OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(path)?,
        ))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(File::create(path)?))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match File::open(dir) {
            Ok(d) => d.sync_all(),
            // Some platforms refuse to open directories; there is no
            // directory fsync to issue there, so nothing was swallowed.
            Err(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_at_reads_exact_windows() {
        let dir = std::env::temp_dir().join(format!("prsim_storage_rat_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob");
        fs::write(&path, (0u8..64).collect::<Vec<u8>>()).unwrap();
        let s = FsStorage;
        assert_eq!(s.read_at(&path, 0, 4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(s.read_at(&path, 60, 4).unwrap(), vec![60, 61, 62, 63]);
        // Reading past the end is an error, never a short read.
        assert!(s.read_at(&path, 62, 4).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_at_overwrites_in_place_and_never_extends() {
        let dir = std::env::temp_dir().join(format!("prsim_storage_wat_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob");
        fs::write(&path, vec![0u8; 16]).unwrap();
        let s = FsStorage;
        s.write_at(&path, 4, &[1, 2, 3, 4]).unwrap();
        let got = fs::read(&path).unwrap();
        assert_eq!(got.len(), 16);
        assert_eq!(&got[4..8], &[1, 2, 3, 4]);
        assert!(got[..4].iter().all(|&b| b == 0));
        assert!(got[8..].iter().all(|&b| b == 0));
        // A heal rewrite must never grow the artifact.
        assert!(s.write_at(&path, 14, &[9, 9, 9]).is_err());
        assert_eq!(fs::metadata(&path).unwrap().len(), 16);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_dir_succeeds_on_real_directories() {
        let dir = std::env::temp_dir();
        FsStorage.sync_dir(&dir).unwrap();
    }
}
