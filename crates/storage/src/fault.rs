//! Deterministic fault injection for the storage layer.
//!
//! [`FaultyStorage`] wraps any [`Storage`] backend and fails a
//! seed-scheduled fraction of its durability-relevant operations:
//! fsyncs, writes (short/torn prefixes and disk-full), reads, renames,
//! directory syncs and segment creation — and can silently flip a bit
//! in page reads ([`FaultPlan::bitrot_per_mille`]) so the buffer pool's
//! per-page checksums are exercised end to end. The schedule is a pure
//! function of the seed and a global operation counter, so a chaos test
//! that performs the same operation sequence twice sees the same faults
//! twice — shrunk proptest failures replay exactly.
//!
//! ## What is never faulted
//!
//! [`Storage::truncate`] and [`Storage::remove_file`] form the WAL's
//! *repair surface*: after a failed append, the WAL cuts the segment
//! back to its last known-good length so an errored (unacknowledged)
//! record can never survive to replay. By default the injector leaves
//! that surface reliable — the modeled failure is a transient I/O
//! error, not a disk that refuses repair. Tests that want to exercise
//! the unrepairable path (WAL broken → degraded serving → backoff
//! retry) opt in via [`FaultPlan::truncate_per_mille`]. Metadata reads
//! (`list`, `file_len`, `exists`) are left reliable; their failure
//! modes add noise without exercising any new recovery logic.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::{Storage, WalFile};

/// Per-operation fault probabilities, in permille (0 = never,
/// 1000 = always), plus the seed that schedules them.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// `sync_data` / `sync_all` failures (data may already be on disk).
    pub fsync_per_mille: u16,
    /// Short writes: a strict prefix of the buffer is persisted, then
    /// the write errors.
    pub short_write_per_mille: u16,
    /// Full write failures (disk-full: nothing is persisted).
    pub enospc_per_mille: u16,
    /// Whole-file and positioned read failures.
    pub read_per_mille: u16,
    /// Rename failures (checkpoint publication).
    pub rename_per_mille: u16,
    /// Segment/checkpoint file creation failures.
    pub create_per_mille: u16,
    /// Truncate failures — 0 by default; see the module docs.
    pub truncate_per_mille: u16,
    /// Directory fsync failures: the rename/creation went through but
    /// its durability is not guaranteed until a later sync succeeds.
    pub dir_sync_per_mille: u16,
    /// Silent corruption on positioned reads ([`Storage::read_at`]):
    /// the read *succeeds* but one schedule-chosen bit is flipped.
    /// Only page checksums can catch this.
    pub bitrot_per_mille: u16,
    /// Positioned heal-rewrite ([`Storage::write_at`]) failures — 0 by
    /// default: like truncate, `write_at` is a repair surface (the
    /// scrubber rewriting a rotten page from a clean frame), and tests
    /// that want unhealable rot opt in explicitly.
    pub write_at_per_mille: u16,
}

impl FaultPlan {
    /// A moderate all-round schedule derived from `seed`: roughly one
    /// operation in ten fails, spread across every fault kind, with the
    /// repair surface (truncate) reliable.
    pub fn from_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fsync_per_mille: 120,
            short_write_per_mille: 80,
            enospc_per_mille: 50,
            read_per_mille: 40,
            rename_per_mille: 80,
            create_per_mille: 80,
            truncate_per_mille: 0,
            dir_sync_per_mille: 60,
            bitrot_per_mille: 40,
            write_at_per_mille: 0,
        }
    }

    /// A schedule that injects nothing (useful as a baseline).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fsync_per_mille: 0,
            short_write_per_mille: 0,
            enospc_per_mille: 0,
            read_per_mille: 0,
            rename_per_mille: 0,
            create_per_mille: 0,
            truncate_per_mille: 0,
            dir_sync_per_mille: 0,
            bitrot_per_mille: 0,
            write_at_per_mille: 0,
        }
    }
}

/// SplitMix64 — tiny, high-quality mixing for the fault schedule (kept
/// local so the injector does not depend on the `rand` stand-in).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Shared schedule state: one operation counter across the storage and
/// every file handle it opens, so the fault sequence is a function of
/// the global operation order.
#[derive(Debug)]
struct FaultCore {
    plan: FaultPlan,
    ops: AtomicU64,
    injected: AtomicU64,
    armed: AtomicBool,
}

impl FaultCore {
    /// Rolls the schedule for one operation. Returns the mix value when
    /// the operation should fail. The counter advances on every call —
    /// armed or not — so arming mid-run keeps the schedule aligned with
    /// the operation sequence.
    fn roll(&self, per_mille: u16) -> Option<u64> {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if per_mille == 0 || !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let h = splitmix64(self.plan.seed ^ n.wrapping_mul(0xA076_1D64_78BD_642F));
        if h % 1000 < u64::from(per_mille) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            Some(h)
        } else {
            None
        }
    }
}

fn injected(kind: &str, path: &Path) -> io::Error {
    io::Error::other(format!("injected {kind} fault: {}", path.display()))
}

/// A [`Storage`] wrapper that injects deterministic faults per
/// [`FaultPlan`]. Clones share one schedule, so a test can keep a handle
/// to arm/disarm injection while the WAL owns another.
#[derive(Clone)]
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    core: Arc<FaultCore>,
}

impl std::fmt::Debug for FaultyStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStorage")
            .field("plan", &self.core.plan)
            .field("ops", &self.core.ops.load(Ordering::Relaxed))
            .field("injected", &self.core.injected.load(Ordering::Relaxed))
            .field("armed", &self.core.armed.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultyStorage {
    /// Wraps `inner` with the given schedule, armed from the start.
    pub fn new(inner: Arc<dyn Storage>, plan: FaultPlan) -> FaultyStorage {
        FaultyStorage {
            inner,
            core: Arc::new(FaultCore {
                plan,
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                armed: AtomicBool::new(true),
            }),
        }
    }

    /// Wraps `inner` disarmed: no faults until [`set_armed`] flips it.
    /// Lets a server boot cleanly and face chaos only once serving.
    ///
    /// [`set_armed`]: FaultyStorage::set_armed
    pub fn new_disarmed(inner: Arc<dyn Storage>, plan: FaultPlan) -> FaultyStorage {
        let s = FaultyStorage::new(inner, plan);
        s.set_armed(false);
        s
    }

    /// Enables or disables injection (the operation counter keeps
    /// advancing either way, preserving schedule determinism).
    pub fn set_armed(&self, armed: bool) {
        self.core.armed.store(armed, Ordering::Relaxed);
    }

    /// Total faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.core.injected.load(Ordering::Relaxed)
    }

    /// Total operations rolled so far (faulted or not).
    pub fn operations(&self) -> u64 {
        self.core.ops.load(Ordering::Relaxed)
    }
}

/// A file handle whose writes and syncs roll the shared schedule.
struct FaultyFile {
    inner: Box<dyn WalFile>,
    core: Arc<FaultCore>,
    path: PathBuf,
}

impl WalFile for FaultyFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.core.roll(self.core.plan.enospc_per_mille).is_some() {
            return Err(injected("disk-full write", &self.path));
        }
        if let Some(h) = self.core.roll(self.core.plan.short_write_per_mille) {
            if !buf.is_empty() {
                // Persist a strict prefix, then fail: the torn tail the
                // WAL's truncate-repair (and crash replay) must handle.
                let keep = (h >> 16) as usize % buf.len();
                self.inner.write_all(&buf[..keep])?;
                return Err(injected("short write", &self.path));
            }
        }
        self.inner.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        if self.core.roll(self.core.plan.fsync_per_mille).is_some() {
            // The write itself went through: the record may be fully on
            // disk even though the caller sees an error. Exactly the
            // case the WAL's tail repair exists for.
            return Err(injected("fsync", &self.path));
        }
        self.inner.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        if self.core.roll(self.core.plan.fsync_per_mille).is_some() {
            return Err(injected("fsync", &self.path));
        }
        self.inner.sync_all()
    }
}

impl Storage for FaultyStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.core.roll(self.core.plan.read_per_mille).is_some() {
            return Err(injected("read", path));
        }
        self.inner.read(path)
    }

    fn read_prefix(&self, path: &Path, n: usize) -> io::Result<Vec<u8>> {
        if self.core.roll(self.core.plan.read_per_mille).is_some() {
            return Err(injected("read", path));
        }
        self.inner.read_prefix(path, n)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        if self.core.roll(self.core.plan.read_per_mille).is_some() {
            return Err(injected("read", path));
        }
        let mut buf = self.inner.read_at(path, offset, len)?;
        if let Some(h) = self.core.roll(self.core.plan.bitrot_per_mille) {
            if !buf.is_empty() {
                // Silent corruption: succeed, but flip one bit. Only the
                // page checksum downstream can tell.
                let bit = (h >> 16) as usize % (buf.len() * 8);
                buf[bit / 8] ^= 1 << (bit % 8);
            }
        }
        Ok(buf)
    }

    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        if self.core.roll(self.core.plan.write_at_per_mille).is_some() {
            return Err(injected("write-at", path));
        }
        self.inner.write_at(path, offset, data)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(FaultyFile {
            inner: self.inner.open_append(path)?,
            core: Arc::clone(&self.core),
            path: path.to_path_buf(),
        }))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        if self.core.roll(self.core.plan.create_per_mille).is_some() {
            return Err(injected("create", path));
        }
        Ok(Box::new(FaultyFile {
            inner: self.inner.create_new(path)?,
            core: Arc::clone(&self.core),
            path: path.to_path_buf(),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        if self.core.roll(self.core.plan.create_per_mille).is_some() {
            return Err(injected("create", path));
        }
        Ok(Box::new(FaultyFile {
            inner: self.inner.create(path)?,
            core: Arc::clone(&self.core),
            path: path.to_path_buf(),
        }))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        if self.core.roll(self.core.plan.truncate_per_mille).is_some() {
            return Err(injected("truncate", path));
        }
        self.inner.truncate(path, len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.core.roll(self.core.plan.rename_per_mille).is_some() {
            return Err(injected("rename", from));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.core.roll(self.core.plan.dir_sync_per_mille).is_some() {
            return Err(injected("dir-sync", dir));
        }
        self.inner.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FsStorage;

    /// The schedule is a pure function of seed and operation order.
    #[test]
    fn schedule_is_deterministic() {
        let run = |seed: u64| {
            let s = FaultyStorage::new(Arc::new(FsStorage), FaultPlan::from_seed(seed));
            let dir = std::env::temp_dir();
            let mut outcomes = Vec::new();
            for i in 0..200u32 {
                // The probe files don't exist, so a clean roll surfaces
                // ENOENT; only schedule hits say "injected".
                let p = dir.join(format!("fault_probe_{i}"));
                outcomes.push(match s.read(&p) {
                    Err(e) => e.to_string().contains("injected"),
                    Ok(_) => false,
                });
            }
            (outcomes, s.faults_injected())
        };
        let (a, fa) = run(42);
        let (b, fb) = run(42);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
        let (c, _) = run(43);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    /// Disarmed schedules advance the counter without injecting.
    #[test]
    fn disarmed_injects_nothing_but_counts_ops() {
        let s = FaultyStorage::new_disarmed(Arc::new(FsStorage), FaultPlan::from_seed(7));
        for _ in 0..50 {
            let _ = s.read(Path::new("/nonexistent/fault_probe"));
        }
        assert_eq!(s.faults_injected(), 0);
        assert_eq!(s.operations(), 50);
    }

    /// Bit-rot flips exactly one bit of a successful positioned read.
    #[test]
    fn bitrot_flips_exactly_one_bit() {
        let dir = std::env::temp_dir().join(format!("prsim_fault_rot_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("page");
        let clean = vec![0u8; 256];
        std::fs::write(&path, &clean).unwrap();
        let s = FaultyStorage::new(
            Arc::new(FsStorage),
            FaultPlan {
                bitrot_per_mille: 1000,
                ..FaultPlan::none(9)
            },
        );
        let rotten = s.read_at(&path, 0, 256).unwrap();
        let flipped: u32 = rotten
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit flips per scheduled hit");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Directory syncs roll their own schedule once armed.
    #[test]
    fn dir_sync_faults_are_injected() {
        let s = FaultyStorage::new(
            Arc::new(FsStorage),
            FaultPlan {
                dir_sync_per_mille: 1000,
                ..FaultPlan::none(11)
            },
        );
        let err = s.sync_dir(&std::env::temp_dir()).unwrap_err();
        assert!(err.to_string().contains("injected dir-sync fault"));
    }
}
