//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use prsim_graph::io::{from_binary, read_edge_list, to_binary, write_edge_list};
use prsim_graph::ordering::{prefix_len_by_in_degree, sort_out_by_in_degree};
use prsim_graph::{DiGraph, GraphBuilder};
use std::io::BufReader;

/// Random edge lists over up to 40 nodes.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..200).prop_map(move |es| (n, es))
    })
}

proptest! {
    #[test]
    fn csr_preserves_edge_multiset((n, edges) in arb_edges()) {
        let g = DiGraph::from_edges(n, &edges);
        let mut got: Vec<_> = g.edges().collect();
        let mut want = edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // out/in degree sums both equal m.
        let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let in_sum: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out_sum, edges.len());
        prop_assert_eq!(in_sum, edges.len());
    }

    #[test]
    fn in_and_out_adjacency_agree((n, edges) in arb_edges()) {
        let g = DiGraph::from_edges(n, &edges);
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                let hits = g.in_neighbors(v).iter().filter(|&&x| x == u).count();
                let expect = g.out_neighbors(u).iter().filter(|&&x| x == v).count();
                prop_assert_eq!(hits, expect);
            }
        }
    }

    #[test]
    fn counting_sort_orders_and_preserves((n, edges) in arb_edges()) {
        let g0 = DiGraph::from_edges(n, &edges);
        let mut g = g0.clone();
        sort_out_by_in_degree(&mut g);
        for u in g.nodes() {
            let mut prev = 0usize;
            let mut sorted: Vec<u32> = g.out_neighbors(u).to_vec();
            for &y in &sorted {
                let d = g.in_degree(y);
                prop_assert!(d >= prev);
                prev = d;
            }
            // Same multiset per node.
            let mut orig: Vec<u32> = g0.out_neighbors(u).to_vec();
            sorted.sort_unstable();
            orig.sort_unstable();
            prop_assert_eq!(sorted, orig);
        }
    }

    #[test]
    fn prefix_len_matches_linear_scan((n, edges) in arb_edges(), bound in 0.0f64..10.0) {
        let mut g = DiGraph::from_edges(n, &edges);
        sort_out_by_in_degree(&mut g);
        for u in g.nodes() {
            let fast = prefix_len_by_in_degree(&g, u, bound);
            let slow = g
                .out_neighbors(u)
                .iter()
                .filter(|&&y| (g.in_degree(y) as f64) <= bound)
                .count();
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn binary_round_trip((n, edges) in arb_edges()) {
        let g = DiGraph::from_edges(n, &edges);
        let g2 = from_binary(&to_binary(&g)).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn text_round_trip((n, edges) in arb_edges()) {
        // Text format does not store isolated trailing nodes; compare via
        // the builder (dedup'd) on both sides.
        let mut b = GraphBuilder::new();
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let _ = n;
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(BufReader::new(&buf[..])).unwrap();
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = g2.edges().collect();
        e1.sort_unstable();
        e2.sort_unstable();
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn transpose_involution((n, edges) in arb_edges()) {
        let g = DiGraph::from_edges(n, &edges);
        let tt = g.transpose().transpose();
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = tt.edges().collect();
        e1.sort_unstable();
        e2.sort_unstable();
        prop_assert_eq!(e1, e2);
    }
}
