//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use prsim_graph::io::{from_binary, read_edge_list, to_binary, write_edge_list};
use prsim_graph::ordering::{prefix_len_by_in_degree, sort_out_by_in_degree};
use prsim_graph::{DiGraph, GraphBuilder};
use std::io::BufReader;

/// Random edge lists over up to 40 nodes.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..200).prop_map(move |es| (n, es))
    })
}

proptest! {
    #[test]
    fn csr_preserves_edge_multiset((n, edges) in arb_edges()) {
        let g = DiGraph::from_edges(n, &edges);
        let mut got: Vec<_> = g.edges().collect();
        let mut want = edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // out/in degree sums both equal m.
        let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let in_sum: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out_sum, edges.len());
        prop_assert_eq!(in_sum, edges.len());
    }

    #[test]
    fn in_and_out_adjacency_agree((n, edges) in arb_edges()) {
        let g = DiGraph::from_edges(n, &edges);
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                let hits = g.in_neighbors(v).iter().filter(|&&x| x == u).count();
                let expect = g.out_neighbors(u).iter().filter(|&&x| x == v).count();
                prop_assert_eq!(hits, expect);
            }
        }
    }

    #[test]
    fn counting_sort_orders_and_preserves((n, edges) in arb_edges()) {
        let g0 = DiGraph::from_edges(n, &edges);
        let mut g = g0.clone();
        sort_out_by_in_degree(&mut g);
        for u in g.nodes() {
            let mut prev = 0usize;
            let mut sorted: Vec<u32> = g.out_neighbors(u).to_vec();
            for &y in &sorted {
                let d = g.in_degree(y);
                prop_assert!(d >= prev);
                prev = d;
            }
            // Same multiset per node.
            let mut orig: Vec<u32> = g0.out_neighbors(u).to_vec();
            sorted.sort_unstable();
            orig.sort_unstable();
            prop_assert_eq!(sorted, orig);
        }
    }

    #[test]
    fn prefix_len_matches_linear_scan((n, edges) in arb_edges(), bound in 0.0f64..10.0) {
        let mut g = DiGraph::from_edges(n, &edges);
        sort_out_by_in_degree(&mut g);
        for u in g.nodes() {
            let fast = prefix_len_by_in_degree(&g, u, bound);
            let slow = g
                .out_neighbors(u)
                .iter()
                .filter(|&&y| (g.in_degree(y) as f64) <= bound)
                .count();
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn binary_round_trip((n, edges) in arb_edges()) {
        let g = DiGraph::from_edges(n, &edges);
        let g2 = from_binary(&to_binary(&g)).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn text_round_trip((n, edges) in arb_edges()) {
        // Text format does not store isolated trailing nodes; compare via
        // the builder (dedup'd) on both sides.
        let mut b = GraphBuilder::new();
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let _ = n;
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(BufReader::new(&buf[..])).unwrap();
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = g2.edges().collect();
        e1.sort_unstable();
        e2.sort_unstable();
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn transpose_involution((n, edges) in arb_edges()) {
        let g = DiGraph::from_edges(n, &edges);
        let tt = g.transpose().transpose();
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = tt.edges().collect();
        e1.sort_unstable();
        e2.sort_unstable();
        prop_assert_eq!(e1, e2);
    }

    /// Random byte corruption of the binary format must be rejected (or,
    /// rarely, still parse to *a* graph) without panicking — and
    /// truncations must always be rejected.
    #[test]
    fn binary_corruption_never_panics((n, edges) in arb_edges(),
                                      flips in proptest::collection::vec((0usize..1 << 16, 1u8..255), 1..8),
                                      cut_frac in 0.0f64..1.0) {
        let g = DiGraph::from_edges(n, &edges);
        let bytes = to_binary(&g).to_vec();

        let mut corrupt = bytes.clone();
        for &(pos, mask) in &flips {
            let idx = pos % corrupt.len();
            corrupt[idx] ^= mask;
        }
        // No panic, no oversized allocation: the call must simply return.
        // (Length fields are validated against the remaining payload, so a
        // corrupted count cannot drive allocation beyond the input size.)
        let _ = from_binary(&corrupt);

        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(from_binary(&bytes[..cut]).is_err(), "truncation at {} accepted", cut);
    }

    /// A DeltaGraph driven by a random update stream always snapshots to
    /// exactly the graph a from-scratch rebuild of its edge set produces.
    #[test]
    fn delta_graph_matches_rebuild((n, edges) in arb_edges(),
                                   stream in proptest::collection::vec((0u8..2, 0u32..40, 0u32..40), 0..60),
                                   threshold in 1usize..12) {
        use prsim_graph::delta::DeltaGraph;
        use std::collections::BTreeSet;

        // Simple-graph base, as the dynamic engine uses.
        let mut b = GraphBuilder::new();
        b.ensure_nodes(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let base = b.build();

        let mut live: BTreeSet<(u32, u32)> = base.edges().collect();
        let mut delta = DeltaGraph::with_threshold(base, threshold);
        let mut max_n = delta.node_count();
        for &(op, u, v) in &stream {
            let changed = if op == 0 {
                let want = u != v && !live.contains(&(u, v));
                let got = delta.insert_edge(u, v);
                prop_assert_eq!(got, want, "insert ({}, {})", u, v);
                if got {
                    live.insert((u, v));
                    max_n = max_n.max(u as usize + 1).max(v as usize + 1);
                }
                got
            } else {
                let want = live.contains(&(u, v));
                let got = delta.delete_edge(u, v);
                prop_assert_eq!(got, want, "delete ({}, {})", u, v);
                if got {
                    live.remove(&(u, v));
                }
                got
            };
            let _ = changed;
            prop_assert_eq!(delta.edge_count(), live.len());
        }

        let snap = delta.snapshot();
        prop_assert!(snap.is_out_sorted_by_in_degree());
        prop_assert_eq!(snap.node_count(), max_n);
        let mut got: Vec<_> = snap.edges().collect();
        got.sort_unstable();
        let want: Vec<_> = live.iter().copied().collect();
        prop_assert_eq!(got, want);
        // Counting-sort invariant on every out list.
        for u in snap.nodes() {
            let degs: Vec<usize> = snap
                .out_neighbors(u)
                .iter()
                .map(|&v| snap.in_degree(v))
                .collect();
            prop_assert!(degs.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
