//! Counting-sort of out-adjacency lists by target in-degree.
//!
//! Paper Algorithm 1, lines 1–4: construct a tuple `(x, y, d_in(y))` per
//! edge, counting-sort the tuples by ascending `d_in(y)` (in-degrees are
//! integers in `[0, n]`, so this is `O(n + m)`), then append each `y` to
//! `x`'s out list in sorted order.
//!
//! Both backward-walk algorithms (paper Algorithms 2 and 3) rely on this
//! ordering: they scan a node's out-neighbors and stop at the first target
//! whose in-degree exceeds a random threshold, touching only the prefix
//! that can actually receive mass.

use crate::csr::{DiGraph, NodeId};

/// Reorders every out-adjacency list of `g` by ascending in-degree of the
/// target node, in `O(n + m)` time, and marks the graph as sorted.
///
/// Ties are broken by the stable counting sort, so the result is
/// deterministic. The in-adjacency is untouched.
///
/// ```
/// use prsim_graph::{DiGraph, ordering::sort_out_by_in_degree};
///
/// // 0 -> {1, 2}; node 1 has in-degree 2, node 2 has in-degree 1.
/// let mut g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (3, 1)]);
/// sort_out_by_in_degree(&mut g);
/// assert_eq!(g.out_neighbors(0), &[2, 1]); // ascending d_in
/// assert!(g.is_out_sorted_by_in_degree());
/// ```
pub fn sort_out_by_in_degree(g: &mut DiGraph) {
    let n = g.node_count();
    let in_degree: Vec<usize> = (0..n as NodeId).map(|v| g.in_degree(v)).collect();

    // Counting sort of all edges (x, y) keyed by in_degree[y]. Rather than
    // materializing (x, y, d) tuples we sort edge indices, then scatter the
    // sorted edges back into per-node out lists; the scatter preserves the
    // sorted key order within each node because we scan sorted edges in
    // order and each node's slots are filled left to right (stable).
    let (offsets, targets) = g.out_adjacency_mut();

    // Gather edges as (source, target) in CSR order.
    let m = targets.len();
    let mut sources = vec![0 as NodeId; m];
    for u in 0..n {
        sources[offsets[u]..offsets[u + 1]].fill(u as NodeId);
    }

    // Histogram over keys 0..=max_key.
    let max_key = in_degree.iter().copied().max().unwrap_or(0);
    let mut count = vec![0usize; max_key + 2];
    for &y in targets.iter() {
        count[in_degree[y as usize] + 1] += 1;
    }
    for k in 1..count.len() {
        count[k] += count[k - 1];
    }

    // Stable scatter into key order.
    let mut sorted_src = vec![0 as NodeId; m];
    let mut sorted_tgt = vec![0 as NodeId; m];
    for i in 0..m {
        let y = targets[i];
        let slot = count[in_degree[y as usize]];
        count[in_degree[y as usize]] += 1;
        sorted_src[slot] = sources[i];
        sorted_tgt[slot] = y;
    }

    // Scatter back into per-node lists (stable ⇒ each list ends up in
    // ascending key order).
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    for i in 0..m {
        let x = sorted_src[i] as usize;
        targets[cursor[x]] = sorted_tgt[i];
        cursor[x] += 1;
    }

    g.set_out_sorted_by_in_degree(true);
}

/// Number of out-neighbors of `x` whose in-degree is `<= bound`.
///
/// Requires the graph to be sorted with [`sort_out_by_in_degree`]; the
/// sorted prefix is located with a binary search (`O(log d_out(x))`).
///
/// # Panics
///
/// Panics in debug builds if the graph is not sorted.
#[inline]
pub fn prefix_len_by_in_degree(g: &DiGraph, x: NodeId, bound: f64) -> usize {
    debug_assert!(
        g.is_out_sorted_by_in_degree(),
        "prefix_len_by_in_degree requires sort_out_by_in_degree"
    );
    let neigh = g.out_neighbors(x);
    neigh.partition_point(|&y| (g.in_degree(y) as f64) <= bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_each_list_by_target_in_degree() {
        // in-degrees: 0:0, 1:3, 2:1, 3:2
        let mut g =
            DiGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (2, 1), (3, 1), (1, 3), (1, 2)]);
        // avoid surprising the test: node 2 gets in-edges from 0 and 1 -> d_in(2)=2
        // recompute expectations directly below instead of by hand.
        sort_out_by_in_degree(&mut g);
        for u in g.nodes() {
            let ds: Vec<usize> = g.out_neighbors(u).iter().map(|&y| g.in_degree(y)).collect();
            assert!(
                ds.windows(2).all(|w| w[0] <= w[1]),
                "node {u} not sorted: {ds:?}"
            );
        }
        assert!(g.is_out_sorted_by_in_degree());
    }

    #[test]
    fn preserves_edge_multiset() {
        let edges = vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (2, 1),
            (3, 1),
            (1, 3),
            (1, 2),
            (3, 0),
        ];
        let g0 = DiGraph::from_edges(4, &edges);
        let mut g = g0.clone();
        sort_out_by_in_degree(&mut g);
        let mut before: Vec<_> = g0.edges().collect();
        let mut after: Vec<_> = g.edges().collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        // In-adjacency untouched.
        for u in g.nodes() {
            assert_eq!(g.in_neighbors(u), g0.in_neighbors(u));
        }
    }

    #[test]
    fn prefix_len_counts_small_in_degree_targets() {
        let mut g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 3), (2, 3), (4, 2)]);
        sort_out_by_in_degree(&mut g);
        // in-degrees: 1 -> 1, 2 -> 2, 3 -> 3
        assert_eq!(prefix_len_by_in_degree(&g, 0, 0.5), 0);
        assert_eq!(prefix_len_by_in_degree(&g, 0, 1.0), 1);
        assert_eq!(prefix_len_by_in_degree(&g, 0, 2.5), 2);
        assert_eq!(prefix_len_by_in_degree(&g, 0, 100.0), 3);
    }

    #[test]
    fn empty_and_singleton_lists() {
        let mut g = DiGraph::from_edges(3, &[(0, 1)]);
        sort_out_by_in_degree(&mut g);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert!(g.out_neighbors(1).is_empty());
        assert_eq!(prefix_len_by_in_degree(&g, 1, 10.0), 0);
    }

    #[test]
    fn works_on_empty_graph() {
        let mut g = DiGraph::from_edges(0, &[]);
        sort_out_by_in_degree(&mut g);
        assert!(g.is_out_sorted_by_in_degree());
    }
}
