//! Software-prefetch helpers for scatter/gather loops.
//!
//! The PRSim hot loops that are not bandwidth-bound are *latency*-bound:
//! each iteration probes one random slot of a large array (a dense
//! accumulator, a CSR offset table), and the hardware prefetcher cannot
//! predict the next address. When the index stream itself is sequential
//! — a postings run, a sorted touched list — the fix is to issue the
//! random probe a fixed distance ahead, so by the time the demand load
//! executes the line is in flight or resident.
//!
//! The helper is safe to call with any index: out-of-range lookahead
//! (the tail of every prefetch-ahead loop) is a no-op, and prefetch
//! itself never faults. On non-x86_64 targets it compiles to nothing.

/// Hints the CPU to pull `slice[i]`'s cache line toward L1. No-op when
/// `i` is out of range (lookahead tails) or off x86_64. Purely a
/// scheduling hint: no fault, no observable effect on results.
#[inline]
#[allow(unsafe_code)] // non-faulting scheduling hint; see lib.rs
pub fn prefetch_read<T>(slice: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(r) = slice.get(i) {
        // SAFETY: `r` is a live reference; prefetch never faults and
        // performs no access visible to the memory model.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                r as *const T as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, i);
}

/// [`prefetch_read`] with write intent (`ET0`): the line is requested
/// in exclusive state, so a read-modify-write that follows skips the
/// ownership upgrade. Same contract otherwise: out-of-range is a no-op,
/// never faults, no observable effect on results.
#[inline]
#[allow(unsafe_code)] // non-faulting scheduling hint; see lib.rs
pub fn prefetch_write<T>(slice: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(r) = slice.get(i) {
        // SAFETY: `r` is a live reference; prefetch never faults and
        // performs no access visible to the memory model.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                r as *const T as *const i8,
                core::arch::x86_64::_MM_HINT_ET0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, i);
}
