//! Whole-graph structural statistics.
//!
//! Beyond per-orientation degree summaries ([`crate::degrees`]), the
//! experiment reports want a handful of global numbers: density,
//! reciprocity (fraction of edges whose reverse also exists — 1.0 for the
//! symmetric "undirected" datasets), dangling-node counts in each
//! orientation, and a full degree histogram.

use std::collections::HashSet;

use crate::csr::{DiGraph, NodeId};
use crate::degrees::{degree_sequence, DegreeKind};

/// Global structural summary of a directed graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count `n`.
    pub nodes: usize,
    /// Edge count `m`.
    pub edges: usize,
    /// `m / (n(n-1))` — fraction of possible directed edges present.
    pub density: f64,
    /// Fraction of edges `(u,v)` with `(v,u)` also present (1.0 means the
    /// graph is symmetric / effectively undirected).
    pub reciprocity: f64,
    /// Nodes with no in-neighbors (√c-walks die here).
    pub sources: usize,
    /// Nodes with no out-neighbors (backward searches stop here).
    pub sinks: usize,
    /// Nodes with neither in- nor out-edges.
    pub isolated: usize,
}

/// Computes the global summary in `O(n + m log d)`.
pub fn graph_stats(g: &DiGraph) -> GraphStats {
    let n = g.node_count();
    let m = g.edge_count();
    let density = if n >= 2 {
        m as f64 / (n as f64 * (n as f64 - 1.0))
    } else {
        0.0
    };

    let mut reciprocated = 0usize;
    if m > 0 {
        let edge_set: HashSet<(NodeId, NodeId)> = g.edges().collect();
        reciprocated = edge_set
            .iter()
            .filter(|&&(u, v)| edge_set.contains(&(v, u)))
            .count();
    }

    let mut sources = 0usize;
    let mut sinks = 0usize;
    let mut isolated = 0usize;
    for v in g.nodes() {
        let no_in = g.in_degree(v) == 0;
        let no_out = g.out_degree(v) == 0;
        sources += usize::from(no_in && !no_out);
        sinks += usize::from(no_out && !no_in);
        isolated += usize::from(no_in && no_out);
    }

    GraphStats {
        nodes: n,
        edges: m,
        density,
        reciprocity: if m == 0 {
            0.0
        } else {
            reciprocated as f64 / m as f64
        },
        sources,
        sinks,
        isolated,
    }
}

/// Histogram of degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &DiGraph, kind: DegreeKind) -> Vec<usize> {
    let seq = degree_sequence(g, kind);
    let max = seq.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in seq {
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_graph_has_reciprocity_one() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let s = graph_stats(&g);
        assert_eq!(s.reciprocity, 1.0);
        assert_eq!(s.sources, 0);
        assert_eq!(s.sinks, 0);
    }

    #[test]
    fn dag_has_zero_reciprocity_and_counts_endpoints() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let s = graph_stats(&g);
        assert_eq!(s.reciprocity, 0.0);
        assert_eq!(s.sources, 1); // node 0
        assert_eq!(s.sinks, 1); // node 3
        assert_eq!(s.isolated, 0);
        assert!((s.density - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_nodes_counted() {
        let g = DiGraph::from_edges(4, &[(0, 1)]);
        let s = graph_stats(&g);
        assert_eq!(s.isolated, 2); // nodes 2, 3
        assert_eq!(s.sources, 1); // node 0
        assert_eq!(s.sinks, 1); // node 1
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.reciprocity, 0.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (3, 2)]);
        let h = degree_histogram(&g, DegreeKind::In);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[3], 1); // node 2 has in-degree 3
        assert_eq!(h[0], 3); // nodes 0, 3 and 4
    }

    #[test]
    fn partial_reciprocity() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let s = graph_stats(&g);
        assert!((s.reciprocity - 2.0 / 3.0).abs() < 1e-12);
    }
}
