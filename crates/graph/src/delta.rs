//! Mutable edge-delta overlay over an immutable CSR base graph.
//!
//! [`DiGraph`] is deliberately immutable: every consumer of the PRSim
//! suite reads raw CSR slices. Dynamic workloads instead mutate a
//! [`DeltaGraph`] — a base CSR plus two small sorted overlays (pending
//! inserts and pending deletes). A mutation costs `O(d_out(u) + log k)`
//! for an overlay of `k` edges — the `d_out(u)` term is the base
//! membership scan (out-lists are in-degree-sorted, so id lookups cannot
//! binary-search) and dominates on high-degree sources. Materializing a
//! query-ready snapshot is a **linear merge** of the base adjacency with
//! the overlay (`O(n + m + k)`), far cheaper than the `O(m log m)` sort
//! a [`crate::GraphBuilder`] rebuild pays. Once the overlay exceeds `compact_threshold`, the next snapshot
//! is promoted to become the new base and the overlay resets, which keeps
//! both overlay memory and merge cost bounded.
//!
//! Semantics are the simple-graph semantics of the SimRank literature
//! (and of `GraphBuilder`'s defaults): no self loops, no parallel edges.
//! Inserting an existing edge or deleting an absent one is a no-op that
//! reports `false`.

use std::collections::BTreeSet;

use crate::csr::{DiGraph, NodeId};
use crate::ordering::sort_out_by_in_degree;

/// One edge mutation of a dynamic graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeUpdate {
    /// Insert directed edge `u → v`.
    Insert(NodeId, NodeId),
    /// Delete directed edge `u → v`.
    Delete(NodeId, NodeId),
}

impl EdgeUpdate {
    /// The `(source, target)` pair the update touches.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
        }
    }

    /// Whether this is an insertion.
    #[inline]
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeUpdate::Insert(_, _))
    }
}

impl std::fmt::Display for EdgeUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EdgeUpdate::Insert(u, v) => write!(f, "+ {u} {v}"),
            EdgeUpdate::Delete(u, v) => write!(f, "- {u} {v}"),
        }
    }
}

/// Default overlay size at which [`DeltaGraph`] compacts into the base.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 1024;

/// A directed graph under edge insertions/deletions: immutable CSR base
/// plus a bounded overlay of pending mutations.
#[derive(Clone, Debug)]
pub struct DeltaGraph {
    base: DiGraph,
    /// Live edges not present in the base, sorted by `(u, v)`.
    inserts: BTreeSet<(NodeId, NodeId)>,
    /// Base edges marked dead, sorted by `(u, v)`.
    deletes: BTreeSet<(NodeId, NodeId)>,
    /// Node universe (grows with inserted endpoints; never shrinks).
    n: usize,
    /// Overlay size that triggers compaction on the next snapshot.
    compact_threshold: usize,
    /// Compactions performed (observability).
    compactions: usize,
}

impl DeltaGraph {
    /// Wraps a base graph with an empty overlay and the
    /// [`DEFAULT_COMPACT_THRESHOLD`].
    pub fn new(base: DiGraph) -> Self {
        Self::with_threshold(base, DEFAULT_COMPACT_THRESHOLD)
    }

    /// Wraps a base graph with an explicit compaction threshold
    /// (clamped to at least 1).
    pub fn with_threshold(base: DiGraph, compact_threshold: usize) -> Self {
        let n = base.node_count();
        DeltaGraph {
            base,
            inserts: BTreeSet::new(),
            deletes: BTreeSet::new(),
            n,
            compact_threshold: compact_threshold.max(1),
            compactions: 0,
        }
    }

    /// Number of nodes (grows automatically with inserted endpoints).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of live edges (base − deletes + inserts).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.base.edge_count() - self.deletes.len() + self.inserts.len()
    }

    /// Pending overlay size (inserts + deletes not yet compacted).
    #[inline]
    pub fn overlay_len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Compactions performed so far.
    #[inline]
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Whether edge `u → v` is currently live.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        if self.inserts.contains(&(u, v)) {
            return true;
        }
        if self.deletes.contains(&(u, v)) {
            return false;
        }
        (u as usize) < self.base.node_count() && self.base.out_neighbors(u).contains(&v)
    }

    /// Inserts edge `u → v`. Returns `false` (no-op) when the edge is
    /// already live or is a self loop.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || self.contains_edge(u, v) {
            return false;
        }
        // Re-inserting a deleted base edge cancels the delete instead of
        // growing the insert overlay.
        if !self.deletes.remove(&(u, v)) {
            self.inserts.insert((u, v));
        }
        self.n = self.n.max(u as usize + 1).max(v as usize + 1);
        true
    }

    /// Deletes edge `u → v`. Returns `false` (no-op) when the edge is not
    /// currently live.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.inserts.remove(&(u, v)) {
            return true;
        }
        if self.deletes.contains(&(u, v)) {
            return false;
        }
        if (u as usize) < self.base.node_count() && self.base.out_neighbors(u).contains(&v) {
            self.deletes.insert((u, v));
            true
        } else {
            false
        }
    }

    /// Applies one [`EdgeUpdate`]; returns whether it changed the graph.
    pub fn apply(&mut self, update: EdgeUpdate) -> bool {
        match update {
            EdgeUpdate::Insert(u, v) => self.insert_edge(u, v),
            EdgeUpdate::Delete(u, v) => self.delete_edge(u, v),
        }
    }

    /// Iterator over all live edges: surviving base edges, then the
    /// insert overlay (callers rebuild sets/CSR, so order is free).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.base
            .edges()
            .filter(move |e| !self.deletes.contains(e))
            .chain(self.inserts.iter().copied())
    }

    /// Materializes the current edge set as a query-ready [`DiGraph`]
    /// whose out-lists are counting-sorted by target in-degree. When the
    /// overlay has reached the compaction threshold, the snapshot also
    /// becomes the new base and the overlay resets.
    pub fn snapshot(&mut self) -> DiGraph {
        let snap = self.merge();
        if self.overlay_len() >= self.compact_threshold {
            self.base = snap.clone();
            self.inserts.clear();
            self.deletes.clear();
            self.compactions += 1;
        }
        snap
    }

    /// Forces compaction now, regardless of the threshold.
    pub fn compact(&mut self) -> &DiGraph {
        if self.overlay_len() > 0 || self.base.node_count() < self.n {
            self.base = self.merge();
            self.inserts.clear();
            self.deletes.clear();
            self.compactions += 1;
        }
        &self.base
    }

    /// Linear merge of base CSR and overlay into a sorted [`DiGraph`].
    fn merge(&self) -> DiGraph {
        let n = self.n;
        let base_n = self.base.node_count();

        // Overlay views sorted by source (inserts/deletes already are) and
        // by target (for the in-adjacency merge).
        let ins_by_src: Vec<(NodeId, NodeId)> = self.inserts.iter().copied().collect();
        let del_by_src: Vec<(NodeId, NodeId)> = self.deletes.iter().copied().collect();
        let mut ins_by_dst = ins_by_src.clone();
        ins_by_dst.sort_unstable_by_key(|&(u, v)| (v, u));
        let mut del_by_dst = del_by_src.clone();
        del_by_dst.sort_unstable_by_key(|&(u, v)| (v, u));

        let m = self.edge_count();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets: Vec<NodeId> = Vec::with_capacity(m);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_sources: Vec<NodeId> = Vec::with_capacity(m);

        // Out-adjacency: per source u, base list minus deletes plus inserts.
        let mut ins_i = 0usize;
        let mut del_i = 0usize;
        out_offsets.push(0);
        let mut removal: Vec<NodeId> = Vec::new();
        for u in 0..n as NodeId {
            // Targets deleted from u (consume the sorted run for u).
            removal.clear();
            while del_i < del_by_src.len() && del_by_src[del_i].0 == u {
                removal.push(del_by_src[del_i].1);
                del_i += 1;
            }
            if (u as usize) < base_n {
                if removal.is_empty() {
                    out_targets.extend_from_slice(self.base.out_neighbors(u));
                } else {
                    for &v in self.base.out_neighbors(u) {
                        // Remove exactly one occurrence per delete (the
                        // base is a simple graph, so one suffices).
                        if let Some(pos) = removal.iter().position(|&d| d == v) {
                            removal.swap_remove(pos);
                        } else {
                            out_targets.push(v);
                        }
                    }
                }
            }
            while ins_i < ins_by_src.len() && ins_by_src[ins_i].0 == u {
                out_targets.push(ins_by_src[ins_i].1);
                ins_i += 1;
            }
            out_offsets.push(out_targets.len());
        }

        // In-adjacency: per target v, base list minus deletes plus inserts.
        let mut ins_j = 0usize;
        let mut del_j = 0usize;
        in_offsets.push(0);
        for v in 0..n as NodeId {
            removal.clear();
            while del_j < del_by_dst.len() && del_by_dst[del_j].1 == v {
                removal.push(del_by_dst[del_j].0);
                del_j += 1;
            }
            if (v as usize) < base_n {
                if removal.is_empty() {
                    in_sources.extend_from_slice(self.base.in_neighbors(v));
                } else {
                    for &u in self.base.in_neighbors(v) {
                        if let Some(pos) = removal.iter().position(|&d| d == u) {
                            removal.swap_remove(pos);
                        } else {
                            in_sources.push(u);
                        }
                    }
                }
            }
            while ins_j < ins_by_dst.len() && ins_by_dst[ins_j].1 == v {
                in_sources.push(ins_by_dst[ins_j].0);
                ins_j += 1;
            }
            in_offsets.push(in_sources.len());
        }

        debug_assert_eq!(out_targets.len(), m);
        debug_assert_eq!(in_sources.len(), m);

        let mut g =
            DiGraph::from_raw_parts(out_offsets, out_targets, in_offsets, in_sources, false);
        sort_out_by_in_degree(&mut g);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Reference: rebuild the expected graph through GraphBuilder.
    fn rebuilt(n: usize, edges: &[(NodeId, NodeId)]) -> DiGraph {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        let mut g = b.build();
        sort_out_by_in_degree(&mut g);
        g
    }

    fn assert_same_edges(a: &DiGraph, b: &DiGraph) {
        assert_eq!(a.node_count(), b.node_count());
        let mut ea: Vec<_> = a.edges().collect();
        let mut eb: Vec<_> = b.edges().collect();
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }

    #[test]
    fn insert_delete_and_snapshot_match_rebuild() {
        let base = rebuilt(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut d = DeltaGraph::new(base);
        assert!(d.insert_edge(0, 3));
        assert!(d.delete_edge(1, 2));
        assert!(!d.insert_edge(0, 3)); // duplicate
        assert!(!d.delete_edge(1, 2)); // already gone
        assert!(!d.insert_edge(2, 2)); // self loop
        assert_eq!(d.edge_count(), 5);
        assert!(d.contains_edge(0, 3));
        assert!(!d.contains_edge(1, 2));

        let snap = d.snapshot();
        assert!(snap.is_out_sorted_by_in_degree());
        assert_same_edges(
            &snap,
            &rebuilt(5, &[(0, 1), (2, 3), (3, 4), (4, 0), (0, 3)]),
        );
    }

    #[test]
    fn snapshot_matches_builder_rebuild_edge_set() {
        // Same final edge multiset and valid counting-sort order (tie
        // order inside equal in-degree runs may differ from a from-scratch
        // build; the engine only requires the in-degree ordering).
        let base = rebuilt(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let mut d = DeltaGraph::new(base);
        d.insert_edge(0, 4);
        d.insert_edge(2, 5);
        d.delete_edge(1, 2);
        let want = rebuilt(6, &[(0, 1), (2, 0), (3, 4), (4, 5), (5, 3), (0, 4), (2, 5)]);
        let snap = d.snapshot();
        assert_same_edges(&snap, &want);
        for u in snap.nodes() {
            let degs: Vec<usize> = snap
                .out_neighbors(u)
                .iter()
                .map(|&v| snap.in_degree(v))
                .collect();
            assert!(degs.windows(2).all(|w| w[0] <= w[1]), "node {u} not sorted");
        }
    }

    #[test]
    fn reinsert_of_deleted_base_edge_cancels() {
        let base = rebuilt(3, &[(0, 1), (1, 2)]);
        let mut d = DeltaGraph::new(base.clone());
        assert!(d.delete_edge(0, 1));
        assert!(d.insert_edge(0, 1));
        assert_eq!(d.overlay_len(), 0, "delete+reinsert must cancel");
        assert_eq!(d.snapshot(), base);
    }

    #[test]
    fn node_universe_grows_with_inserts() {
        let base = rebuilt(3, &[(0, 1), (1, 2)]);
        let mut d = DeltaGraph::new(base);
        assert!(d.insert_edge(2, 9));
        assert_eq!(d.node_count(), 10);
        let snap = d.snapshot();
        assert_eq!(snap.node_count(), 10);
        assert_eq!(snap.in_neighbors(9), &[2]);
        assert!(snap.out_neighbors(9).is_empty());
    }

    #[test]
    fn threshold_triggers_compaction() {
        let base = rebuilt(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut d = DeltaGraph::with_threshold(base, 2);
        d.insert_edge(3, 0);
        assert_eq!(d.compactions(), 0);
        let _ = d.snapshot(); // overlay 1 < 2: no compaction
        assert_eq!(d.compactions(), 0);
        d.insert_edge(0, 2);
        let _ = d.snapshot(); // overlay 2 >= 2: compacts
        assert_eq!(d.compactions(), 1);
        assert_eq!(d.overlay_len(), 0);
        assert_eq!(d.edge_count(), 5);
        // Deleting a formerly-overlay edge now hits the base path.
        assert!(d.delete_edge(3, 0));
        assert_eq!(d.edge_count(), 4);
    }

    #[test]
    fn force_compact_folds_overlay() {
        let base = rebuilt(3, &[(0, 1)]);
        let mut d = DeltaGraph::new(base);
        d.insert_edge(1, 2);
        d.compact();
        assert_eq!(d.overlay_len(), 0);
        assert_eq!(d.compactions(), 1);
        assert_eq!(d.edge_count(), 2);
        // Idempotent when clean.
        d.compact();
        assert_eq!(d.compactions(), 1);
    }

    #[test]
    fn edges_iterator_reflects_overlay() {
        let base = rebuilt(3, &[(0, 1), (1, 2)]);
        let mut d = DeltaGraph::new(base);
        d.delete_edge(0, 1);
        d.insert_edge(2, 0);
        let mut edges: Vec<_> = d.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(1, 2), (2, 0)]);
    }

    #[test]
    fn update_display_round_trips_format() {
        assert_eq!(EdgeUpdate::Insert(3, 7).to_string(), "+ 3 7");
        assert_eq!(EdgeUpdate::Delete(0, 1).to_string(), "- 0 1");
        assert_eq!(EdgeUpdate::Insert(3, 7).endpoints(), (3, 7));
        assert!(EdgeUpdate::Insert(0, 1).is_insert());
        assert!(!EdgeUpdate::Delete(0, 1).is_insert());
    }
}
