//! Basic traversals: BFS and weakly-connected components.
//!
//! These are support utilities for the generators (connectivity checks) and
//! for tests; none of the SimRank algorithms need more than adjacency
//! access.

use std::collections::VecDeque;

use crate::csr::{DiGraph, NodeId};

/// Direction in which a traversal follows edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges `u → v`.
    Forward,
    /// Follow in-edges (i.e. walk the transpose).
    Backward,
    /// Treat edges as undirected.
    Both,
}

/// Breadth-first search from `source`; returns `dist[v]` as `Some(hops)`
/// for reachable nodes and `None` otherwise.
pub fn bfs(g: &DiGraph, source: NodeId, dir: Direction) -> Vec<Option<u32>> {
    let n = g.node_count();
    let mut dist = vec![None; n];
    if (source as usize) >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source as usize] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize].expect("queued nodes have distances");
        let push = |v: NodeId, dist: &mut Vec<Option<u32>>, queue: &mut VecDeque<NodeId>| {
            if dist[v as usize].is_none() {
                dist[v as usize] = Some(d + 1);
                queue.push_back(v);
            }
        };
        if matches!(dir, Direction::Forward | Direction::Both) {
            for &v in g.out_neighbors(u) {
                push(v, &mut dist, &mut queue);
            }
        }
        if matches!(dir, Direction::Backward | Direction::Both) {
            for &v in g.in_neighbors(u) {
                push(v, &mut dist, &mut queue);
            }
        }
    }
    dist
}

/// Labels every node with a weakly-connected-component id in `0..k`,
/// returning `(labels, k)`. Components are numbered by first-seen node.
pub fn weakly_connected_components(g: &DiGraph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    for s in 0..n as NodeId {
        if label[s as usize] != u32::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        label[s as usize] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// Number of nodes reachable from `source` (inclusive) following `dir`.
pub fn reachable_count(g: &DiGraph, source: NodeId, dir: Direction) -> usize {
    bfs(g, source, dir).iter().filter(|d| d.is_some()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_path() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = bfs(&g, 0, Direction::Forward);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        let back = bfs(&g, 0, Direction::Backward);
        assert_eq!(back, vec![Some(0), None, None, None]);
        let both = bfs(&g, 3, Direction::Both);
        assert_eq!(both, vec![Some(3), Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn components_counts() {
        // Two components: {0,1,2} (directed chain) and {3,4}.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let (labels, k) = weakly_connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn isolated_nodes_are_singleton_components() {
        let g = DiGraph::from_edges(3, &[]);
        let (_, k) = weakly_connected_components(&g);
        assert_eq!(k, 3);
    }

    #[test]
    fn reachable_counts() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2)]);
        assert_eq!(reachable_count(&g, 0, Direction::Forward), 3);
        assert_eq!(reachable_count(&g, 2, Direction::Backward), 3);
        assert_eq!(reachable_count(&g, 3, Direction::Both), 1);
    }
}
