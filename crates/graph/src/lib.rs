//! # prsim-graph
//!
//! Directed-graph substrate for the PRSim SimRank suite.
//!
//! The crate provides exactly the graph machinery the PRSim paper
//! (SIGMOD 2019) relies on:
//!
//! * [`DiGraph`] — an immutable compressed-sparse-row (CSR) directed graph
//!   storing **both** out- and in-adjacency, since √c-walks traverse
//!   in-edges while backward searches traverse out-edges.
//! * [`GraphBuilder`] — incremental edge-list construction with optional
//!   deduplication and self-loop removal.
//! * [`DeltaGraph`] — an edge insert/delete overlay over a CSR base with
//!   threshold-driven compaction, the substrate of the dynamic PRSim
//!   engine (paper §3.5).
//! * [`ordering`] — the counting-sort pass of the paper's Algorithm 1
//!   (lines 1–4) that orders every out-adjacency list by ascending
//!   in-degree of the target, which the Variance Bounded Backward Walk
//!   depends on for its prefix scans.
//! * [`degrees`] — degree sequences, complementary cumulative distribution
//!   functions and power-law exponent estimation used to reproduce Figure 1
//!   and Conjecture 1.
//! * [`io`] — whitespace edge-list text format and a compact binary format.
//! * [`traversal`] — BFS and weakly-connected components, used by the
//!   generators and tests.
//!
//! ## Quick example
//!
//! ```
//! use prsim_graph::{DiGraph, GraphBuilder};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g: DiGraph = b.build();
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.edge_count(), 3);
//! assert_eq!(g.out_neighbors(0), &[1]);
//! assert_eq!(g.in_neighbors(1), &[0]);
//! ```

// Deny (not forbid): the only unsafe in the crate is the pair of
// `_mm_prefetch` scheduling hints in `csr` — non-faulting by
// architecture, no aliasing, no observable effect on results — each
// carrying its own `#[allow(unsafe_code)]` and SAFETY comment. Anything
// else must justify itself the same way.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod degrees;
pub mod delta;
pub mod io;
pub mod mem;
pub mod ordering;
pub mod stats;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{DiGraph, NodeId};
pub use degrees::{ccdf, DegreeKind, DegreeStats};
pub use delta::{DeltaGraph, EdgeUpdate};
pub use stats::{degree_histogram, graph_stats, GraphStats};
pub use subgraph::{induced_subgraph, largest_wcc, Subgraph};

/// Errors produced while constructing, reading or writing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A node id in the input exceeds the supported maximum (`u32::MAX - 1`).
    NodeIdOverflow {
        /// 1-based line number of the offending line.
        line: usize,
        /// The token that overflowed, verbatim.
        token: String,
    },
    /// An IO error while reading or writing a graph file.
    Io(std::io::Error),
    /// A malformed line in an edge-list file.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A binary graph file had a bad magic number or truncated payload.
    Corrupt(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeIdOverflow { line, token } => {
                write!(
                    f,
                    "parse error at line {line}: node id {token:?} exceeds the supported maximum (u32::MAX - 1)"
                )
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Corrupt(msg) => write!(f, "corrupt graph file: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
