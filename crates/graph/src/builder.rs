//! Incremental construction of [`DiGraph`] from edge streams.

use crate::csr::{DiGraph, NodeId};

/// Collects edges and produces a [`DiGraph`].
///
/// The builder grows the node universe automatically: adding edge `(u, v)`
/// extends `n` to `max(u, v) + 1`. Construction options control whether
/// self loops and parallel (duplicate) edges survive into the final graph —
/// the SimRank literature conventionally works on simple graphs, so both
/// are dropped by default.
///
/// ```
/// use prsim_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1);
/// b.add_edge(0, 1); // duplicate: dropped by default
/// b.add_edge(2, 2); // self loop: dropped by default
/// let g = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId)>,
    n: usize,
    keep_self_loops: bool,
    keep_parallel_edges: bool,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// Creates an empty builder that drops self loops and parallel edges.
    pub fn new() -> Self {
        GraphBuilder {
            edges: Vec::new(),
            n: 0,
            keep_self_loops: false,
            keep_parallel_edges: false,
        }
    }

    /// Creates a builder with capacity for `edges` edges.
    pub fn with_capacity(edges: usize) -> Self {
        let mut b = Self::new();
        b.edges.reserve(edges);
        b
    }

    /// Keep self loops `(u, u)` in the final graph.
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Keep parallel (duplicate) edges in the final graph.
    pub fn keep_parallel_edges(mut self, keep: bool) -> Self {
        self.keep_parallel_edges = keep;
        self
    }

    /// Adds a directed edge `u → v`, growing the node universe as needed.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.n = self.n.max(u as usize + 1).max(v as usize + 1);
        self.edges.push((u, v));
    }

    /// Adds both directions `u → v` and `v → u` (undirected edge).
    ///
    /// The paper treats undirected datasets (DBLP-Author) as symmetric
    /// directed graphs, which is what this models.
    #[inline]
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        if u != v {
            self.add_edge(v, u);
        }
    }

    /// Ensures the node universe contains `0..n` even without edges.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Number of edges currently buffered (before dedup).
    pub fn buffered_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into a CSR graph.
    pub fn build(mut self) -> DiGraph {
        if !self.keep_self_loops {
            self.edges.retain(|&(u, v)| u != v);
        }
        if !self.keep_parallel_edges {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        DiGraph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_node_universe() {
        let mut b = GraphBuilder::new();
        b.add_edge(7, 3);
        let g = b.build();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn default_drops_self_loops_and_duplicates() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn opt_in_keeps_self_loops_and_duplicates() {
        let mut b = GraphBuilder::new()
            .keep_self_loops(true)
            .keep_parallel_edges(true);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn undirected_adds_both_directions_once_for_loops() {
        let mut b = GraphBuilder::new().keep_self_loops(true);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(2, 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 3); // 0->1, 1->0, 2->2
        assert_eq!(g.in_neighbors(0), &[1]);
    }

    #[test]
    fn ensure_nodes_creates_isolated_nodes() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_nodes(10);
        let g = b.build();
        assert_eq!(g.node_count(), 10);
        assert!(g.out_neighbors(9).is_empty());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
