//! Immutable compressed-sparse-row directed graph.
//!
//! [`DiGraph`] keeps both orientations of every edge:
//!
//! * the **out**-adjacency (`u → {v : (u,v) ∈ E}`) is what the backward
//!   search (paper Algorithm 1) and the backward walks (Algorithms 2–3)
//!   traverse;
//! * the **in**-adjacency (`u → {v : (v,u) ∈ E}`) is what √c-walks follow,
//!   one uniformly random in-neighbor per step.
//!
//! Node ids are dense `u32` values in `0..n`. The structure is immutable
//! after construction except for [`ordering::sort_out_by_in_degree`]
//! (re-permutes each out list in place), which the PRSim query phase
//! requires.
//!
//! [`ordering::sort_out_by_in_degree`]: crate::ordering::sort_out_by_in_degree

/// Dense node identifier. The suite supports up to `u32::MAX - 1` nodes,
/// enough for every dataset in the paper (UK-Union has 1.3e8 nodes).
pub type NodeId = u32;

/// An immutable directed graph in CSR form with both adjacency orientations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    /// `out_offsets[u]..out_offsets[u+1]` indexes `out_targets` for node `u`.
    out_offsets: Vec<usize>,
    /// Concatenated out-neighbor lists.
    out_targets: Vec<NodeId>,
    /// `in_offsets[u]..in_offsets[u+1]` indexes `in_sources` for node `u`.
    in_offsets: Vec<usize>,
    /// Concatenated in-neighbor lists.
    in_sources: Vec<NodeId>,
    /// Flat per-node in-degree cache (`in_offsets[u+1] - in_offsets[u]`),
    /// kept so the backward-walk inner loops read one `u32` instead of two
    /// `usize` offsets per neighbor probe.
    in_degrees: Vec<u32>,
    /// `out_target_in_degs[i] = in_degrees[out_targets[i]]` — the targets'
    /// in-degrees *inline with the out-adjacency*, so the backward scans
    /// (which walk an out list until a degree threshold is exceeded) read
    /// one sequential stream instead of one random `in_degrees` probe per
    /// neighbor. Present iff `out_sorted_by_in_degree` (built by
    /// `ordering::sort_out_by_in_degree`, which every backward consumer
    /// requires anyway); empty on unsorted graphs.
    out_target_in_degs: Vec<u32>,
    /// Whether every out list is sorted by ascending in-degree of the target.
    out_sorted_by_in_degree: bool,
}

/// Per-node list lengths implied by a CSR offset array.
fn degrees_from_offsets(offsets: &[usize]) -> Vec<u32> {
    offsets
        .windows(2)
        .map(|w| {
            u32::try_from(w[1] - w[0]).expect("per-node degree must fit in u32 (NodeId width)")
        })
        .collect()
}

impl DiGraph {
    /// Builds a graph from an edge list over nodes `0..n`.
    ///
    /// Edges are `(source, target)` pairs; parallel edges and self loops are
    /// kept verbatim (use [`crate::GraphBuilder`] for deduplication).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut out_degree = vec![0usize; n];
        let mut in_degree = vec![0usize; n];
        for &(u, v) in edges {
            assert!((u as usize) < n, "edge source {u} out of range (n = {n})");
            assert!((v as usize) < n, "edge target {v} out of range (n = {n})");
            out_degree[u as usize] += 1;
            in_degree[v as usize] += 1;
        }

        let out_offsets = prefix_sum(&out_degree);
        let in_offsets = prefix_sum(&in_degree);

        let mut out_targets = vec![0 as NodeId; edges.len()];
        let mut in_sources = vec![0 as NodeId; edges.len()];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for &(u, v) in edges {
            out_targets[out_cursor[u as usize]] = v;
            out_cursor[u as usize] += 1;
            in_sources[in_cursor[v as usize]] = u;
            in_cursor[v as usize] += 1;
        }

        let in_degrees = degrees_from_offsets(&in_offsets);
        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            in_degrees,
            out_target_in_degs: Vec::new(),
            out_sorted_by_in_degree: false,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges `m` (parallel edges counted separately).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Average degree `m / n` (0.0 on the empty graph).
    #[inline]
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.node_count() as f64
        }
    }

    /// Out-neighbors of `u` (targets of edges leaving `u`).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_offsets[u as usize]..self.out_offsets[u as usize + 1]]
    }

    /// In-neighbors of `u` (sources of edges entering `u`).
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.in_sources[self.in_offsets[u as usize]..self.in_offsets[u as usize + 1]]
    }

    /// Out-neighbors of `u` paired with their in-degrees as parallel
    /// slices — the backward-scan fast path: the degree stream is read
    /// sequentially instead of probing `in_degrees[y]` per neighbor.
    ///
    /// # Panics
    ///
    /// Panics (on non-empty out lists) unless the graph is out-sorted by
    /// in-degree ([`crate::ordering::sort_out_by_in_degree`]), which is
    /// when the inline degree stream is materialized.
    #[inline]
    pub fn out_neighbors_with_in_degrees(&self, u: NodeId) -> (&[NodeId], &[u32]) {
        let (s, e) = (
            self.out_offsets[u as usize],
            self.out_offsets[u as usize + 1],
        );
        (&self.out_targets[s..e], &self.out_target_in_degs[s..e])
    }

    /// Hints the CPU to pull `u`'s out-offset cache line toward L1. A
    /// pure scheduling hint: no fault, no observable effect on results.
    /// Backward walks issue this for every node pushed into the next
    /// frontier, so the offset probe at the next level hits a warm line
    /// instead of serializing a dependent miss per level.
    #[inline]
    #[allow(unsafe_code)] // non-faulting scheduling hint; see lib.rs
    pub fn prefetch_out_offsets(&self, u: NodeId) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `u < n` is the caller contract everywhere in this type;
        // prefetch of any address is non-faulting regardless.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = self.out_offsets.as_ptr().add(u as usize);
            _mm_prefetch(p as *const i8, _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = u;
    }

    /// Hints the CPU to pull the head of `u`'s out-adjacency (targets and
    /// the parallel in-degree stream) toward L1. Assumes the offset line
    /// is already close (see [`Self::prefetch_out_offsets`]); reading it
    /// here is what turns the two-level CSR dependency into one overlapped
    /// level. Covers the first cache line of each array — the in-degree
    /// sorted scans rarely read past the first dozen neighbors.
    #[inline]
    #[allow(unsafe_code)] // non-faulting scheduling hint; see lib.rs
    pub fn prefetch_out_lists(&self, u: NodeId) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: offsets are `<= m`, and one-past-end pointers are valid
        // to form; prefetch never faults.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let s = *self.out_offsets.get_unchecked(u as usize);
            _mm_prefetch(self.out_targets.as_ptr().add(s) as *const i8, _MM_HINT_T0);
            _mm_prefetch(
                self.out_target_in_degs.as_ptr().add(s) as *const i8,
                _MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = u;
    }

    /// Hints the CPU to pull `u`'s in-offset cache line toward L1.
    /// Same contract as [`Self::prefetch_out_offsets`], for the
    /// in-adjacency that √c-walks traverse.
    #[inline]
    #[allow(unsafe_code)] // non-faulting scheduling hint; see lib.rs
    pub fn prefetch_in_offsets(&self, u: NodeId) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `u < n` is the caller contract everywhere in this type;
        // prefetch of any address is non-faulting regardless.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = self.in_offsets.as_ptr().add(u as usize);
            _mm_prefetch(p as *const i8, _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = u;
    }

    /// Hints the CPU to pull the head of `u`'s in-adjacency toward L1.
    /// Same contract as [`Self::prefetch_out_lists`]: assumes the offset
    /// line is already close, covers the first cache line of the source
    /// list — one uniform draw from it is the whole per-step read.
    #[inline]
    #[allow(unsafe_code)] // non-faulting scheduling hint; see lib.rs
    pub fn prefetch_in_lists(&self, u: NodeId) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: offsets are `<= m`, and one-past-end pointers are valid
        // to form; prefetch never faults.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let s = *self.in_offsets.get_unchecked(u as usize);
            _mm_prefetch(self.in_sources.as_ptr().add(s) as *const i8, _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = u;
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_degrees[u as usize] as usize
    }

    /// The flat in-degree array (`in_degrees()[u] == in_degree(u)`),
    /// cached at construction so hot loops avoid the offset subtraction.
    #[inline]
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degrees
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Iterator over all edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Whether [`crate::ordering::sort_out_by_in_degree`] has run on this
    /// graph, i.e. whether every out list is ordered by ascending in-degree
    /// of the target (a precondition of the backward walks).
    #[inline]
    pub fn is_out_sorted_by_in_degree(&self) -> bool {
        self.out_sorted_by_in_degree
    }

    /// Returns the transposed graph (every edge reversed).
    ///
    /// The reverse PageRank of `w` in `G` equals the PageRank of `w` in
    /// `G.transpose()`; the transpose is mostly used in tests since
    /// [`DiGraph`] already stores both orientations.
    pub fn transpose(&self) -> DiGraph {
        DiGraph {
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
            in_degrees: degrees_from_offsets(&self.out_offsets),
            out_target_in_degs: Vec::new(),
            out_sorted_by_in_degree: false,
        }
    }

    /// Approximate resident memory of the CSR arrays in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.in_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<NodeId>()
            + self.in_sources.len() * std::mem::size_of::<NodeId>()
            + self.in_degrees.len() * std::mem::size_of::<u32>()
            + self.out_target_in_degs.len() * std::mem::size_of::<u32>()
    }

    /// Mutable out-adjacency access for the counting sort; the inline
    /// degree stream is invalidated (the sort rebuilds it via
    /// [`DiGraph::set_out_sorted_by_in_degree`]).
    pub(crate) fn out_adjacency_mut(&mut self) -> (&[usize], &mut [NodeId]) {
        self.out_target_in_degs = Vec::new();
        self.out_sorted_by_in_degree = false;
        (&self.out_offsets, &mut self.out_targets)
    }

    pub(crate) fn set_out_sorted_by_in_degree(&mut self, flag: bool) {
        self.out_sorted_by_in_degree = flag;
        self.out_target_in_degs = if flag {
            self.out_targets
                .iter()
                .map(|&y| self.in_degrees[y as usize])
                .collect()
        } else {
            Vec::new()
        };
    }

    pub(crate) fn raw_parts(&self) -> (&[usize], &[NodeId], &[usize], &[NodeId], bool) {
        (
            &self.out_offsets,
            &self.out_targets,
            &self.in_offsets,
            &self.in_sources,
            self.out_sorted_by_in_degree,
        )
    }

    pub(crate) fn from_raw_parts(
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<usize>,
        in_sources: Vec<NodeId>,
        out_sorted_by_in_degree: bool,
    ) -> Self {
        let in_degrees = degrees_from_offsets(&in_offsets);
        let mut g = DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            in_degrees,
            out_target_in_degs: Vec::new(),
            out_sorted_by_in_degree: false,
        };
        if out_sorted_by_in_degree {
            g.set_out_sorted_by_in_degree(true);
        }
        g
    }
}

fn prefix_sum(degrees: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(degrees.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &d in degrees {
        acc += d;
        offsets.push(acc);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DiGraph {
        DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = DiGraph::from_edges(5, &[]);
        assert_eq!(g.node_count(), 5);
        for u in 0..5 {
            assert!(g.out_neighbors(u).is_empty());
            assert!(g.in_neighbors(u).is_empty());
        }
    }

    #[test]
    fn triangle_adjacency() {
        let g = triangle();
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[2]);
        assert_eq!(g.out_neighbors(2), &[0]);
        assert_eq!(g.in_neighbors(0), &[2]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.in_neighbors(2), &[1]);
    }

    #[test]
    fn degrees_match_adjacency() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)]);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.in_degree(3), 3);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
        for u in g.nodes() {
            assert_eq!(g.out_degree(u), g.out_neighbors(u).len());
            assert_eq!(g.in_degree(u), g.in_neighbors(u).len());
        }
    }

    #[test]
    fn parallel_edges_and_self_loops_kept() {
        let g = DiGraph::from_edges(2, &[(0, 1), (0, 1), (1, 1)]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
        assert_eq!(g.out_neighbors(1), &[1]);
        assert_eq!(g.in_neighbors(1), &[0, 0, 1]);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 1)];
        let g = DiGraph::from_edges(3, &edges);
        let mut got: Vec<_> = g.edges().collect();
        let mut want = edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (3, 1)]);
        let t = g.transpose();
        assert_eq!(t.node_count(), 4);
        let mut got: Vec<_> = t.edges().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 0), (1, 3), (2, 1)]);
        // Double transpose restores the original edge multiset.
        let tt = t.transpose();
        let mut orig: Vec<_> = g.edges().collect();
        let mut back: Vec<_> = tt.edges().collect();
        orig.sort_unstable();
        back.sort_unstable();
        assert_eq!(orig, back);
    }

    #[test]
    fn avg_degree() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = DiGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn memory_bytes_positive() {
        let g = triangle();
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn in_degree_cache_matches_adjacency() {
        let g = DiGraph::from_edges(5, &[(0, 1), (2, 1), (3, 1), (1, 1), (0, 4)]);
        assert_eq!(g.in_degrees().len(), 5);
        for u in g.nodes() {
            assert_eq!(g.in_degrees()[u as usize] as usize, g.in_neighbors(u).len());
            assert_eq!(g.in_degree(u), g.in_neighbors(u).len());
        }
        // Survives transpose (where in-degrees become the old out-degrees).
        let t = g.transpose();
        for u in t.nodes() {
            assert_eq!(t.in_degrees()[u as usize] as usize, g.out_degree(u));
        }
    }
}
