//! Degree distributions and power-law exponent estimation.
//!
//! The paper's hardness analysis (Theorem 3.12, Conjecture 1) is driven by
//! the *cumulative* power-law exponent γ of the out-degree distribution:
//! `P_o(k) ~ k^{-γ}` where `P_o(k)` is the fraction of nodes with
//! out-degree at least `k`. This module computes the complementary
//! cumulative distribution (Figure 1) and two standard estimators of γ:
//!
//! * a log–log least-squares fit of the CCDF (what eyeballing Figure 1
//!   corresponds to), and
//! * the Hill maximum-likelihood estimator of the tail exponent, which for
//!   a density exponent α gives the cumulative exponent γ = α − 1.

use crate::csr::{DiGraph, NodeId};

/// Which degree orientation a statistic refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegreeKind {
    /// Out-degrees `d_out(v)`; the paper's γ.
    Out,
    /// In-degrees `d_in(v)`; the paper's γ'.
    In,
}

/// Summary statistics of one degree orientation of a graph.
#[derive(Clone, Debug)]
pub struct DegreeStats {
    /// Which orientation was measured.
    pub kind: DegreeKind,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`m / n`).
    pub mean: f64,
    /// Number of nodes with degree zero.
    pub zeros: usize,
}

/// Returns the degree sequence for the requested orientation.
pub fn degree_sequence(g: &DiGraph, kind: DegreeKind) -> Vec<usize> {
    (0..g.node_count() as NodeId)
        .map(|v| match kind {
            DegreeKind::Out => g.out_degree(v),
            DegreeKind::In => g.in_degree(v),
        })
        .collect()
}

/// Computes summary statistics of the degree distribution.
pub fn degree_stats(g: &DiGraph, kind: DegreeKind) -> DegreeStats {
    let seq = degree_sequence(g, kind);
    let n = seq.len().max(1);
    DegreeStats {
        kind,
        min: seq.iter().copied().min().unwrap_or(0),
        max: seq.iter().copied().max().unwrap_or(0),
        mean: seq.iter().sum::<usize>() as f64 / n as f64,
        zeros: seq.iter().filter(|&&d| d == 0).count(),
    }
}

/// Complementary cumulative degree distribution.
///
/// Returns `(k, count_of_nodes_with_degree >= k)` for every distinct degree
/// `k >= 1` present in the graph, ascending in `k`. This is the quantity
/// plotted (as fractions) in the paper's Figure 1.
pub fn ccdf(degrees: &[usize]) -> Vec<(usize, usize)> {
    let max = degrees.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return Vec::new();
    }
    let mut hist = vec![0usize; max + 1];
    for &d in degrees {
        hist[d] += 1;
    }
    let mut out = Vec::new();
    let mut at_least = 0usize;
    // Walk degrees descending, accumulate, then reverse.
    let mut rev = Vec::new();
    for k in (1..=max).rev() {
        at_least += hist[k];
        if hist[k] > 0 || k == 1 || k == max {
            rev.push((k, at_least));
        }
    }
    out.extend(rev.into_iter().rev());
    out
}

/// Estimates the cumulative power-law exponent γ by ordinary least squares
/// on the log–log CCDF, using only degrees `k >= k_min`.
///
/// Returns `None` when fewer than two distinct degrees survive the cut.
pub fn powerlaw_exponent_ccdf_fit(degrees: &[usize], k_min: usize) -> Option<f64> {
    let n = degrees.len();
    if n == 0 {
        return None;
    }
    let points: Vec<(f64, f64)> = ccdf(degrees)
        .into_iter()
        .filter(|&(k, c)| k >= k_min.max(1) && c > 0)
        .map(|(k, c)| ((k as f64).ln(), (c as f64 / n as f64).ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let len = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = len * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (len * sxy - sx * sy) / denom;
    Some(-slope)
}

/// Hill maximum-likelihood estimator of the *cumulative* tail exponent γ.
///
/// The Hill estimator targets the density exponent α of
/// `p(k) ~ k^{-α}`; for a pure power law the cumulative exponent is
/// `γ = α − 1`, which is what we return. Only degrees `>= k_min` enter the
/// estimate, and the Clauset–Shalizi–Newman continuity correction
/// (`k_min − ½` in the denominator) is applied because degrees are
/// discrete. Returns `None` if no degree passes the cut.
pub fn powerlaw_exponent_hill(degrees: &[usize], k_min: usize) -> Option<f64> {
    let k_min = k_min.max(1) as f64;
    let shift = (k_min - 0.5).max(0.5);
    let logs: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d as f64 >= k_min)
        .map(|&d| (d as f64 / shift).ln())
        .collect();
    if logs.is_empty() {
        return None;
    }
    let mean_log: f64 = logs.iter().sum::<f64>() / logs.len() as f64;
    if mean_log <= 0.0 {
        return None;
    }
    let alpha = 1.0 + 1.0 / mean_log;
    Some(alpha - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccdf_of_uniform_degrees() {
        // degrees [2,2,2]: P(k>=1)=3, P(k>=2)=3.
        let c = ccdf(&[2, 2, 2]);
        assert_eq!(c.first(), Some(&(1, 3)));
        assert_eq!(c.last(), Some(&(2, 3)));
    }

    #[test]
    fn ccdf_empty_and_zero() {
        assert!(ccdf(&[]).is_empty());
        assert!(ccdf(&[0, 0]).is_empty());
    }

    #[test]
    fn ccdf_monotone_nonincreasing() {
        let degs = vec![1, 1, 1, 2, 3, 3, 7, 10, 10, 50];
        let c = ccdf(&degs);
        assert!(c.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 >= w[1].1));
        // P(k >= 1) counts all nonzero-degree nodes.
        assert_eq!(c[0], (1, 10));
    }

    #[test]
    fn exponent_fit_recovers_synthetic_power_law() {
        // Build a degree multiset following P(deg >= k) = k^{-2} exactly:
        // put floor(n/k^2) - floor(n/(k+1)^2) nodes at degree k.
        let n = 100_000usize;
        let gamma = 2.0f64;
        let mut degrees = Vec::new();
        let mut k = 1usize;
        loop {
            let at_k = (n as f64 / (k as f64).powf(gamma)).floor() as usize;
            let at_k1 = (n as f64 / ((k + 1) as f64).powf(gamma)).floor() as usize;
            let cnt = at_k.saturating_sub(at_k1);
            if at_k == 0 {
                break;
            }
            degrees.extend(std::iter::repeat_n(k, cnt));
            k += 1;
            if k > 2_000 {
                break;
            }
        }
        let est = powerlaw_exponent_ccdf_fit(&degrees, 1).unwrap();
        assert!(
            (est - gamma).abs() < 0.3,
            "ccdf fit estimate {est} too far from {gamma}"
        );
        let hill = powerlaw_exponent_hill(&degrees, 10).unwrap();
        assert!(
            (hill - gamma).abs() < 0.3,
            "hill estimate {hill} too far from {gamma}"
        );
    }

    #[test]
    fn exponent_estimators_handle_degenerate_input() {
        assert!(powerlaw_exponent_ccdf_fit(&[], 1).is_none());
        // Constant degrees: flat CCDF, slope 0 (not a power law, but defined).
        let flat = powerlaw_exponent_ccdf_fit(&[3, 3, 3], 1).unwrap();
        assert!(flat.abs() < 1e-9);
        assert!(powerlaw_exponent_hill(&[], 1).is_none());
    }

    #[test]
    fn degree_stats_both_kinds() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (3, 2)]);
        let out = degree_stats(&g, DegreeKind::Out);
        assert_eq!(out.max, 2);
        assert_eq!(out.zeros, 1); // node 2
        assert!((out.mean - 1.0).abs() < 1e-12);
        let inn = degree_stats(&g, DegreeKind::In);
        assert_eq!(inn.max, 3); // node 2
        assert_eq!(inn.zeros, 2); // nodes 0, 3
    }

    #[test]
    fn degree_sequence_matches_graph() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
        assert_eq!(degree_sequence(&g, DegreeKind::Out), vec![2, 0, 1]);
        assert_eq!(degree_sequence(&g, DegreeKind::In), vec![0, 2, 1]);
    }
}
