//! Graph file formats.
//!
//! Three formats are supported:
//!
//! * **Edge-list text** — one `source target` pair per line, whitespace
//!   separated; `#`- and `%`-prefixed lines are comments. This matches the
//!   SNAP / LAW dataset formats referenced by the paper (Table 3 sources).
//! * **Compact binary** — a little-endian dump of the CSR arrays with a
//!   magic header, for fast reload of generated benchmark graphs.
//! * **Update-stream text** — one `+ source target` (insert) or
//!   `- source target` (delete) line per edge mutation, with the same
//!   comment rules; the replay input of the dynamic engine and of
//!   `prsim update --stream`.
//!
//! Every parse failure names the offending line and token.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::csr::{DiGraph, NodeId};
use crate::delta::EdgeUpdate;
use crate::GraphBuilder;
use crate::GraphError;

/// Magic bytes identifying the binary graph format, version 1.
const MAGIC: &[u8; 8] = b"PRSIMG1\0";

/// Reads an edge-list text stream into a graph.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Node ids
/// must fit in `u32`. Self loops and duplicate edges are dropped, matching
/// the preprocessing applied to the paper's datasets.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<DiGraph, GraphError> {
    let mut b = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u = parse_node(it.next(), t, lineno + 1, "source")?;
        let v = parse_node(it.next(), t, lineno + 1, "target")?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Parses one node-id token. Every failure variant carries the 1-based
/// line number and the offending token (for a missing token, the whole
/// line it was missing from).
fn parse_node(
    tok: Option<&str>,
    line_text: &str,
    line: usize,
    role: &str,
) -> Result<NodeId, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {role} in line {line_text:?}"),
    })?;
    let raw: u64 = tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {role} node id {tok:?}"),
    })?;
    if raw >= u32::MAX as u64 {
        return Err(GraphError::NodeIdOverflow {
            line,
            token: tok.to_string(),
        });
    }
    Ok(raw as NodeId)
}

/// Reads an update-stream text file: one `+ u v` (insert) or `- u v`
/// (delete) per line; `#`/`%` comments and blank lines are skipped.
pub fn read_update_list<R: BufRead>(reader: R) -> Result<Vec<EdgeUpdate>, GraphError> {
    let mut updates = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let line_no = lineno + 1;
        let mut it = t.split_whitespace();
        let op = it.next().expect("non-empty trimmed line has a token");
        let u = parse_node(it.next(), t, line_no, "source")?;
        let v = parse_node(it.next(), t, line_no, "target")?;
        updates.push(match op {
            "+" | "i" | "insert" => EdgeUpdate::Insert(u, v),
            "-" | "d" | "delete" => EdgeUpdate::Delete(u, v),
            other => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("invalid update op {other:?} (want + or -)"),
                })
            }
        });
    }
    Ok(updates)
}

/// Reads an update-stream text file from `path` (see [`read_update_list`]).
pub fn read_update_list_file<P: AsRef<Path>>(path: P) -> Result<Vec<EdgeUpdate>, GraphError> {
    read_update_list(BufReader::new(File::open(path)?))
}

/// Writes an update stream as text, one `+/- u v` line per update.
pub fn write_update_list<W: Write>(updates: &[EdgeUpdate], mut w: W) -> Result<(), GraphError> {
    for up in updates {
        writeln!(w, "{up}")?;
    }
    Ok(())
}

/// Writes an update stream to `path` (see [`write_update_list`]).
pub fn write_update_list_file<P: AsRef<Path>>(
    updates: &[EdgeUpdate],
    path: P,
) -> Result<(), GraphError> {
    write_update_list(updates, BufWriter::new(File::create(path)?))
}

/// Reads an edge-list text file (see [`read_edge_list`]).
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<DiGraph, GraphError> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Writes the graph as edge-list text, one `source target` line per edge.
pub fn write_edge_list<W: Write>(g: &DiGraph, mut w: W) -> Result<(), GraphError> {
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Writes the graph as edge-list text to `path`.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &DiGraph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, BufWriter::new(File::create(path)?))
}

/// Serializes the graph into the compact binary format.
pub fn to_binary(g: &DiGraph) -> Bytes {
    let (out_offsets, out_targets, in_offsets, in_sources, sorted) = g.raw_parts();
    let n = out_offsets.len() - 1;
    let m = out_targets.len();
    let mut buf = BytesMut::with_capacity(24 + 8 * (2 * n + 2) + 4 * 2 * m);
    buf.put_slice(MAGIC);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    buf.put_u8(u8::from(sorted));
    for &o in out_offsets {
        buf.put_u64_le(o as u64);
    }
    for &t in out_targets {
        buf.put_u32_le(t);
    }
    for &o in in_offsets {
        buf.put_u64_le(o as u64);
    }
    for &s in in_sources {
        buf.put_u32_le(s);
    }
    buf.freeze()
}

/// Deserializes a graph from the compact binary format.
pub fn from_binary(mut data: &[u8]) -> Result<DiGraph, GraphError> {
    if data.len() < MAGIC.len() + 17 {
        return Err(GraphError::Corrupt("header truncated".into()));
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    let sorted = data.get_u8() != 0;

    // Checked: a corrupted header can carry n/m near u64::MAX, and the
    // size computation must reject it rather than overflow or allocate.
    let need = n
        .checked_add(1)
        .and_then(|x| x.checked_mul(16))
        .and_then(|x| m.checked_mul(8).and_then(|y| x.checked_add(y)))
        .ok_or_else(|| GraphError::Corrupt("header sizes overflow".into()))?;
    if data.remaining() < need {
        return Err(GraphError::Corrupt(format!(
            "payload truncated: need {need} bytes, have {}",
            data.remaining()
        )));
    }

    let read_offsets = |data: &mut &[u8]| -> Result<Vec<usize>, GraphError> {
        let mut v = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            v.push(data.get_u64_le() as usize);
        }
        if v.first() != Some(&0) || v.last() != Some(&m) {
            return Err(GraphError::Corrupt("offset array endpoints invalid".into()));
        }
        if v.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Corrupt("offset array not monotone".into()));
        }
        Ok(v)
    };
    let read_nodes = |data: &mut &[u8]| -> Result<Vec<NodeId>, GraphError> {
        let mut v = Vec::with_capacity(m);
        for _ in 0..m {
            let id = data.get_u32_le();
            if id as usize >= n {
                return Err(GraphError::Corrupt(format!("node id {id} out of range")));
            }
            v.push(id);
        }
        Ok(v)
    };

    let out_offsets = read_offsets(&mut data)?;
    let out_targets = read_nodes(&mut data)?;
    let in_offsets = read_offsets(&mut data)?;
    let in_sources = read_nodes(&mut data)?;

    Ok(DiGraph::from_raw_parts(
        out_offsets,
        out_targets,
        in_offsets,
        in_sources,
        sorted,
    ))
}

/// Writes the binary format to `path`.
pub fn write_binary_file<P: AsRef<Path>>(g: &DiGraph, path: P) -> Result<(), GraphError> {
    let mut f = BufWriter::new(File::create(path)?);
    f.write_all(&to_binary(g))?;
    Ok(())
}

/// Reads the binary format from `path`.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<DiGraph, GraphError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    from_binary(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::sort_out_by_in_degree;

    fn sample() -> DiGraph {
        // Built via sorted edge list so text round-trips (which re-sort
        // edges through GraphBuilder) compare equal structurally.
        DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(BufReader::new(&buf[..])).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_skips_comments_and_blanks() {
        let text = "# comment\n% other comment\n\n0 1\n 1 2 \n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage_naming_token_and_line() {
        // Garbage target token: message carries the token verbatim.
        let err = read_edge_list(BufReader::new("0 1\n0 x\n".as_bytes())).unwrap_err();
        match &err {
            GraphError::Parse { line, message } => {
                assert_eq!(*line, 2);
                assert!(message.contains("\"x\""), "token missing from {message:?}");
                assert!(message.contains("target"), "role missing from {message:?}");
            }
            other => panic!("want Parse, got {other:?}"),
        }
        assert!(err.to_string().contains("line 2"));

        // Missing target: message carries the offending line text.
        let err = read_edge_list(BufReader::new("7\n".as_bytes())).unwrap_err();
        match &err {
            GraphError::Parse { line, message } => {
                assert_eq!(*line, 1);
                assert!(message.contains("missing target"), "{message:?}");
                assert!(
                    message.contains("\"7\""),
                    "line text missing from {message:?}"
                );
            }
            other => panic!("want Parse, got {other:?}"),
        }

        // Garbage source token (negative number is not a node id).
        let err = read_edge_list(BufReader::new("-3 1\n".as_bytes())).unwrap_err();
        match &err {
            GraphError::Parse { line, message } => {
                assert_eq!(*line, 1);
                assert!(message.contains("\"-3\""), "{message:?}");
                assert!(message.contains("source"), "{message:?}");
            }
            other => panic!("want Parse, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_rejects_huge_ids_naming_token_and_line() {
        let big = u64::from(u32::MAX);
        let text = format!("0 1\n\n0 {big}\n");
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        match &err {
            GraphError::NodeIdOverflow { line, token } => {
                assert_eq!(*line, 3);
                assert_eq!(token, &big.to_string());
            }
            other => panic!("want NodeIdOverflow, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains(&big.to_string()), "{msg}");
        // Values beyond u64 also fail with line + token (parse, not panic).
        let err =
            read_edge_list(BufReader::new("99999999999999999999999 0\n".as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn update_list_round_trip_and_aliases() {
        use crate::delta::EdgeUpdate::{Delete, Insert};
        let updates = vec![Insert(0, 1), Delete(1, 2), Insert(5, 3)];
        let mut buf = Vec::new();
        write_update_list(&updates, &mut buf).unwrap();
        let back = read_update_list(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, updates);
        // Comments, blanks and the word/letter op aliases.
        let text = "# stream\n+ 0 1\n\ni 2 3\ninsert 4 5\n- 0 1\nd 2 3\ndelete 4 5\n% end\n";
        let ups = read_update_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(
            ups,
            vec![
                Insert(0, 1),
                Insert(2, 3),
                Insert(4, 5),
                Delete(0, 1),
                Delete(2, 3),
                Delete(4, 5),
            ]
        );
    }

    #[test]
    fn update_list_rejects_malformed_lines() {
        for (text, want_line, needle) in [
            ("+ 0\n", 1, "missing target"),
            ("* 0 1\n", 1, "invalid update op"),
            ("+ 0 1\n- x 2\n", 2, "\"x\""),
            (&format!("+ 0 {}\n", u64::from(u32::MAX)), 1, ""),
        ] {
            let err = read_update_list(BufReader::new(text.as_bytes())).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("line {want_line}")),
                "{text:?}: {msg}"
            );
            assert!(msg.contains(needle), "{text:?}: {msg}");
        }
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let bytes = to_binary(&g);
        let g2 = from_binary(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_round_trip_preserves_sort_flag() {
        let mut g = sample();
        sort_out_by_in_degree(&mut g);
        let g2 = from_binary(&to_binary(&g)).unwrap();
        assert!(g2.is_out_sorted_by_in_degree());
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let g = sample();
        let mut bytes = to_binary(&g).to_vec();
        bytes[0] = b'X';
        assert!(matches!(from_binary(&bytes), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let bytes = to_binary(&g);
        for cut in [4usize, 20, bytes.len() - 3] {
            assert!(
                from_binary(&bytes[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
    }

    #[test]
    fn binary_rejects_out_of_range_node() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let mut bytes = to_binary(&g).to_vec();
        // Patch the single out-target (directly after header + 3 offsets).
        let pos = 8 + 8 + 8 + 1 + 8 * 3;
        bytes[pos..pos + 4].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(from_binary(&bytes), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn file_round_trips() {
        let dir = std::env::temp_dir().join("prsim_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();

        let txt = dir.join("g.txt");
        write_edge_list_file(&g, &txt).unwrap();
        assert_eq!(read_edge_list_file(&txt).unwrap(), g);

        let bin = dir.join("g.bin");
        write_binary_file(&g, &bin).unwrap();
        assert_eq!(read_binary_file(&bin).unwrap(), g);
    }
}
