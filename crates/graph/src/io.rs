//! Graph file formats.
//!
//! Two formats are supported:
//!
//! * **Edge-list text** — one `source target` pair per line, whitespace
//!   separated; `#`- and `%`-prefixed lines are comments. This matches the
//!   SNAP / LAW dataset formats referenced by the paper (Table 3 sources).
//! * **Compact binary** — a little-endian dump of the CSR arrays with a
//!   magic header, for fast reload of generated benchmark graphs.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::csr::{DiGraph, NodeId};
use crate::GraphBuilder;
use crate::GraphError;

/// Magic bytes identifying the binary graph format, version 1.
const MAGIC: &[u8; 8] = b"PRSIMG1\0";

/// Reads an edge-list text stream into a graph.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Node ids
/// must fit in `u32`. Self loops and duplicate edges are dropped, matching
/// the preprocessing applied to the paper's datasets.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<DiGraph, GraphError> {
    let mut b = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u = parse_node(it.next(), lineno + 1, "missing source")?;
        let v = parse_node(it.next(), lineno + 1, "missing target")?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

fn parse_node(tok: Option<&str>, line: usize, what: &str) -> Result<NodeId, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: what.to_string(),
    })?;
    let raw: u64 = tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid node id {tok:?}"),
    })?;
    if raw >= u32::MAX as u64 {
        return Err(GraphError::NodeIdOverflow(raw));
    }
    Ok(raw as NodeId)
}

/// Reads an edge-list text file (see [`read_edge_list`]).
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<DiGraph, GraphError> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Writes the graph as edge-list text, one `source target` line per edge.
pub fn write_edge_list<W: Write>(g: &DiGraph, mut w: W) -> Result<(), GraphError> {
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Writes the graph as edge-list text to `path`.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &DiGraph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, BufWriter::new(File::create(path)?))
}

/// Serializes the graph into the compact binary format.
pub fn to_binary(g: &DiGraph) -> Bytes {
    let (out_offsets, out_targets, in_offsets, in_sources, sorted) = g.raw_parts();
    let n = out_offsets.len() - 1;
    let m = out_targets.len();
    let mut buf = BytesMut::with_capacity(24 + 8 * (2 * n + 2) + 4 * 2 * m);
    buf.put_slice(MAGIC);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    buf.put_u8(u8::from(sorted));
    for &o in out_offsets {
        buf.put_u64_le(o as u64);
    }
    for &t in out_targets {
        buf.put_u32_le(t);
    }
    for &o in in_offsets {
        buf.put_u64_le(o as u64);
    }
    for &s in in_sources {
        buf.put_u32_le(s);
    }
    buf.freeze()
}

/// Deserializes a graph from the compact binary format.
pub fn from_binary(mut data: &[u8]) -> Result<DiGraph, GraphError> {
    if data.len() < MAGIC.len() + 17 {
        return Err(GraphError::Corrupt("header truncated".into()));
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    let sorted = data.get_u8() != 0;

    let need = 8 * (2 * (n + 1)) + 4 * (2 * m);
    if data.remaining() < need {
        return Err(GraphError::Corrupt(format!(
            "payload truncated: need {need} bytes, have {}",
            data.remaining()
        )));
    }

    let read_offsets = |data: &mut &[u8]| -> Result<Vec<usize>, GraphError> {
        let mut v = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            v.push(data.get_u64_le() as usize);
        }
        if v.first() != Some(&0) || v.last() != Some(&m) {
            return Err(GraphError::Corrupt("offset array endpoints invalid".into()));
        }
        if v.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Corrupt("offset array not monotone".into()));
        }
        Ok(v)
    };
    let read_nodes = |data: &mut &[u8]| -> Result<Vec<NodeId>, GraphError> {
        let mut v = Vec::with_capacity(m);
        for _ in 0..m {
            let id = data.get_u32_le();
            if id as usize >= n {
                return Err(GraphError::Corrupt(format!("node id {id} out of range")));
            }
            v.push(id);
        }
        Ok(v)
    };

    let out_offsets = read_offsets(&mut data)?;
    let out_targets = read_nodes(&mut data)?;
    let in_offsets = read_offsets(&mut data)?;
    let in_sources = read_nodes(&mut data)?;

    Ok(DiGraph::from_raw_parts(
        out_offsets,
        out_targets,
        in_offsets,
        in_sources,
        sorted,
    ))
}

/// Writes the binary format to `path`.
pub fn write_binary_file<P: AsRef<Path>>(g: &DiGraph, path: P) -> Result<(), GraphError> {
    let mut f = BufWriter::new(File::create(path)?);
    f.write_all(&to_binary(g))?;
    Ok(())
}

/// Reads the binary format from `path`.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<DiGraph, GraphError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    from_binary(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::sort_out_by_in_degree;

    fn sample() -> DiGraph {
        // Built via sorted edge list so text round-trips (which re-sort
        // edges through GraphBuilder) compare equal structurally.
        DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(BufReader::new(&buf[..])).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_skips_comments_and_blanks() {
        let text = "# comment\n% other comment\n\n0 1\n 1 2 \n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let text = "0 x\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let text = "7\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn edge_list_rejects_huge_ids() {
        let text = format!("0 {}\n", u64::from(u32::MAX));
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::NodeIdOverflow(_)));
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let bytes = to_binary(&g);
        let g2 = from_binary(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_round_trip_preserves_sort_flag() {
        let mut g = sample();
        sort_out_by_in_degree(&mut g);
        let g2 = from_binary(&to_binary(&g)).unwrap();
        assert!(g2.is_out_sorted_by_in_degree());
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let g = sample();
        let mut bytes = to_binary(&g).to_vec();
        bytes[0] = b'X';
        assert!(matches!(from_binary(&bytes), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let bytes = to_binary(&g);
        for cut in [4usize, 20, bytes.len() - 3] {
            assert!(
                from_binary(&bytes[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
    }

    #[test]
    fn binary_rejects_out_of_range_node() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let mut bytes = to_binary(&g).to_vec();
        // Patch the single out-target (directly after header + 3 offsets).
        let pos = 8 + 8 + 8 + 1 + 8 * 3;
        bytes[pos..pos + 4].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(from_binary(&bytes), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn file_round_trips() {
        let dir = std::env::temp_dir().join("prsim_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();

        let txt = dir.join("g.txt");
        write_edge_list_file(&g, &txt).unwrap();
        assert_eq!(read_edge_list_file(&txt).unwrap(), g);

        let bin = dir.join("g.bin");
        write_binary_file(&g, &bin).unwrap();
        assert_eq!(read_binary_file(&bin).unwrap(), g);
    }
}
