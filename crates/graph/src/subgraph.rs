//! Subgraph extraction utilities.
//!
//! Dataset preprocessing in the SimRank literature routinely restricts a
//! crawl to its largest weakly-connected component and renumbers node ids
//! densely; these helpers provide that with explicit id mappings.

use crate::csr::{DiGraph, NodeId};
use crate::traversal::weakly_connected_components;

/// A subgraph together with the mapping back to the original node ids.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The extracted graph over dense ids `0..k`.
    pub graph: DiGraph,
    /// `original_id[new] = old` for every new node id.
    pub original_id: Vec<NodeId>,
}

impl Subgraph {
    /// Maps an original node id into the subgraph, if present.
    pub fn to_new(&self, old: NodeId) -> Option<NodeId> {
        // original_id is sorted (construction preserves id order), so a
        // binary search suffices.
        self.original_id
            .binary_search(&old)
            .ok()
            .map(|i| i as NodeId)
    }
}

/// Extracts the subgraph induced by `keep` (any iterable of original node
/// ids; duplicates ignored). Edges with both endpoints in `keep` survive,
/// renumbered densely in ascending original-id order.
pub fn induced_subgraph(g: &DiGraph, keep: impl IntoIterator<Item = NodeId>) -> Subgraph {
    let mut ids: Vec<NodeId> = keep.into_iter().collect();
    ids.sort_unstable();
    ids.dedup();
    ids.retain(|&v| (v as usize) < g.node_count());

    let mut new_id = vec![u32::MAX; g.node_count()];
    for (new, &old) in ids.iter().enumerate() {
        new_id[old as usize] = new as u32;
    }

    let mut edges = Vec::new();
    for &old in &ids {
        let from = new_id[old as usize];
        for &t in g.out_neighbors(old) {
            let to = new_id[t as usize];
            if to != u32::MAX {
                edges.push((from, to));
            }
        }
    }
    Subgraph {
        graph: DiGraph::from_edges(ids.len(), &edges),
        original_id: ids,
    }
}

/// Extracts the largest weakly-connected component (ties broken by the
/// smallest contained node id).
pub fn largest_wcc(g: &DiGraph) -> Subgraph {
    let (labels, k) = weakly_connected_components(g);
    if k == 0 {
        return Subgraph {
            graph: DiGraph::from_edges(0, &[]),
            original_id: Vec::new(),
        };
    }
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .expect("k > 0");
    let keep = labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == best)
        .map(|(v, _)| v as NodeId);
    induced_subgraph(g, keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let sub = induced_subgraph(&g, [1u32, 2, 3]);
        assert_eq!(sub.graph.node_count(), 3);
        let mut edges: Vec<_> = sub.graph.edges().collect();
        edges.sort_unstable();
        // old 1->2, 2->3 become new 0->1, 1->2.
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
        assert_eq!(sub.original_id, vec![1, 2, 3]);
        assert_eq!(sub.to_new(2), Some(1));
        assert_eq!(sub.to_new(0), None);
    }

    #[test]
    fn induced_ignores_duplicates_and_out_of_range() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        let sub = induced_subgraph(&g, [1u32, 1, 0, 99]);
        assert_eq!(sub.graph.node_count(), 2);
        assert_eq!(sub.graph.edge_count(), 1);
    }

    #[test]
    fn largest_wcc_picks_biggest() {
        // Component A: 0-1-2 (3 nodes), component B: 3-4 (2 nodes).
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let sub = largest_wcc(&g);
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.original_id, vec![0, 1, 2]);
    }

    #[test]
    fn largest_wcc_of_empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        let sub = largest_wcc(&g);
        assert_eq!(sub.graph.node_count(), 0);
    }

    #[test]
    fn wcc_of_connected_graph_is_identity() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sub = largest_wcc(&g);
        assert_eq!(sub.graph.node_count(), 4);
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = sub.graph.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
