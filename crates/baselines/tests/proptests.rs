//! Property tests shared across every baseline algorithm: output ranges,
//! self-similarity, cross-component zeros and seed-determinism.

use proptest::prelude::*;
use prsim_baselines::{
    MonteCarlo, MonteCarloConfig, ProbeSim, ProbeSimConfig, Reads, ReadsConfig,
    SingleSourceSimRank, Sling, SlingConfig, TopSim, TopSimConfig, Tsf, TsfConfig,
};
use prsim_graph::DiGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (4usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..80).prop_map(move |edges| {
            let mut es: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            es.sort_unstable();
            es.dedup();
            DiGraph::from_edges(n, &es)
        })
    })
}

/// Builds every baseline with cheap parameters.
fn all_algorithms(g: Arc<DiGraph>, seed: u64) -> Vec<Box<dyn SingleSourceSimRank>> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        Box::new(MonteCarlo::new(
            Arc::clone(&g),
            MonteCarloConfig {
                nr: 60,
                ..Default::default()
            },
        )),
        Box::new(ProbeSim::new(
            Arc::clone(&g),
            ProbeSimConfig {
                eps_a: 0.3,
                c_mult: 2.0,
                ..Default::default()
            },
        )),
        Box::new(Sling::build(
            Arc::clone(&g),
            SlingConfig {
                eps_a: 0.1,
                eta_samples: 60,
                ..Default::default()
            },
            &mut rng,
        )),
        Box::new(Tsf::build(
            Arc::clone(&g),
            TsfConfig {
                rg: 12,
                rq: 3,
                ..Default::default()
            },
            &mut rng,
        )),
        Box::new(Reads::build(
            Arc::clone(&g),
            ReadsConfig {
                c: 0.6,
                r: 40,
                t: 6,
            },
            &mut rng,
        )),
        Box::new(TopSim::new(
            Arc::clone(&g),
            TopSimConfig {
                depth: 3,
                degree_threshold: 50,
                ..Default::default()
            },
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn outputs_well_formed(g in arb_graph(), seed in 0u64..50) {
        let n = g.node_count();
        let g = Arc::new(g);
        let u = (seed as usize % n) as u32;
        for algo in all_algorithms(Arc::clone(&g), seed) {
            let mut rng = StdRng::seed_from_u64(seed + 1);
            let scores = algo.single_source(u, &mut rng);
            prop_assert_eq!(scores.get(u), 1.0, "{} self-score", algo.name());
            for (v, s) in scores.iter() {
                prop_assert!(
                    s.is_finite() && s >= 0.0,
                    "{}: ŝ({u},{v}) = {s}", algo.name()
                );
                // Sampling noise can overshoot 1 slightly; TSF's multiple
                // meetings can push a bit higher.
                prop_assert!(s <= 1.6, "{}: ŝ({u},{v}) = {s}", algo.name());
            }
        }
    }

    #[test]
    fn deterministic_per_seed(g in arb_graph(), seed in 0u64..30) {
        let n = g.node_count();
        let g = Arc::new(g);
        let u = (seed as usize % n) as u32;
        for algo in all_algorithms(Arc::clone(&g), seed) {
            let a = algo.single_source(u, &mut StdRng::seed_from_u64(7));
            let b = algo.single_source(u, &mut StdRng::seed_from_u64(7));
            prop_assert_eq!(
                a.max_abs_diff(&b), 0.0,
                "{} not deterministic for fixed seed", algo.name()
            );
        }
    }

    #[test]
    fn no_similarity_across_components(seed in 0u64..20) {
        // Two disjoint triangles: any score from {0,1,2} into {3,4,5}
        // must be exactly zero for every algorithm.
        let g = Arc::new(prsim_gen::toys::two_triangles());
        for algo in all_algorithms(Arc::clone(&g), seed) {
            let mut rng = StdRng::seed_from_u64(seed);
            let scores = algo.single_source(0, &mut rng);
            for v in 3..6u32 {
                prop_assert_eq!(
                    scores.get(v), 0.0,
                    "{} leaked similarity across components", algo.name()
                );
            }
        }
    }
}
