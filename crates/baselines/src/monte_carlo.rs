//! Classic Monte Carlo SimRank (Fogaras & Rácz) — the paper's baseline
//! sampler and the suite's large-graph ground-truth oracle.
//!
//! `s(u,v)` equals the probability that √c-walks from `u` and `v` meet
//! (same node, same step, both alive). The single-pair estimator pairs
//! `n_r` independent walks from each endpoint; the single-source query
//! runs the pair estimator against every node, costing
//! `O(n·log(n/δ)/ε²)` — the bound PRSim improves on.

use prsim_core::scores::SimRankScores;
use prsim_core::walk::{sample_walk, sample_walks_meet, walks_meet, Walk};
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

use crate::SingleSourceSimRank;

/// Monte Carlo configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloConfig {
    /// SimRank decay factor `c`.
    pub c: f64,
    /// Walk pairs per node pair.
    pub nr: usize,
    /// Walk length cap.
    pub max_len: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            c: 0.6,
            nr: 1_000,
            max_len: 64,
        }
    }
}

/// The Monte Carlo single-source algorithm.
#[derive(Clone, Debug)]
pub struct MonteCarlo {
    graph: Arc<DiGraph>,
    config: MonteCarloConfig,
}

impl MonteCarlo {
    /// Creates the sampler over `graph`.
    pub fn new(graph: Arc<DiGraph>, config: MonteCarloConfig) -> Self {
        assert!(config.c > 0.0 && config.c < 1.0);
        assert!(config.nr > 0);
        MonteCarlo { graph, config }
    }

    /// Unbiased single-pair estimate of `s(u, v)` from `nr` walk pairs.
    pub fn single_pair<R: Rng + ?Sized>(&self, u: NodeId, v: NodeId, rng: &mut R) -> f64 {
        single_pair_simrank(
            &self.graph,
            self.config.c,
            u,
            v,
            self.config.nr,
            self.config.max_len,
            rng,
        )
    }
}

/// Standalone single-pair Monte Carlo estimate of `s(u,v)` with `nr` walk
/// pairs — the ground-truth routine (paper §5.1 uses it with `nr` large
/// enough for error `1e-5` at 99.999% confidence). Runs the two walks in
/// lockstep via [`sample_walks_meet`], so no path is ever materialized.
pub fn single_pair_simrank<R: Rng + ?Sized>(
    g: &DiGraph,
    c: f64,
    u: NodeId,
    v: NodeId,
    nr: usize,
    max_len: usize,
    rng: &mut R,
) -> f64 {
    if u == v {
        return 1.0;
    }
    let sqrt_c = c.sqrt();
    let mut meets = 0usize;
    for _ in 0..nr {
        if sample_walks_meet(g, sqrt_c, u, v, max_len, rng) {
            meets += 1;
        }
    }
    meets as f64 / nr as f64
}

impl SingleSourceSimRank for MonteCarlo {
    fn name(&self) -> &'static str {
        "MC"
    }

    /// Single-source query: `nr` walks from `u`, then `nr` walks from
    /// every other node, pairing the k-th walks — the classic
    /// `O(n·nr)`-time algorithm.
    fn single_source(&self, u: NodeId, rng: &mut StdRng) -> SimRankScores {
        let g = &*self.graph;
        let n = g.node_count();
        let sqrt_c = self.config.c.sqrt();
        let walks_u: Vec<Walk> = (0..self.config.nr)
            .map(|_| sample_walk(g, sqrt_c, u, self.config.max_len, rng))
            .collect();

        let mut map = HashMap::new();
        for v in 0..n as NodeId {
            if v == u {
                continue;
            }
            let mut meets = 0usize;
            for wu in &walks_u {
                let wv = sample_walk(g, sqrt_c, v, self.config.max_len, rng);
                if walks_meet(wu, &wv, 1) {
                    meets += 1;
                }
            }
            if meets > 0 {
                map.insert(v, meets as f64 / self.config.nr as f64);
            }
        }
        SimRankScores::from_map(u, n, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::power_method;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFEED)
    }

    #[test]
    fn pair_estimate_matches_exact_on_star_out() {
        let g = Arc::new(prsim_gen::toys::star_out(6));
        let mc = MonteCarlo::new(
            g,
            MonteCarloConfig {
                nr: 50_000,
                ..Default::default()
            },
        );
        let mut r = rng();
        let est = mc.single_pair(1, 2, &mut r);
        assert!((est - 0.6).abs() < 0.02, "s(1,2) = {est}, want 0.6");
        assert_eq!(mc.single_pair(3, 3, &mut r), 1.0);
    }

    #[test]
    fn single_source_matches_power_method() {
        let g = Arc::new(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(50, 4.0, 2.0, 6),
        ));
        let exact = power_method(&g, 0.6, 1e-10, 100);
        let mc = MonteCarlo::new(
            Arc::clone(&g),
            MonteCarloConfig {
                nr: 20_000,
                ..Default::default()
            },
        );
        let mut r = rng();
        let scores = mc.single_source(3, &mut r);
        for v in 0..50u32 {
            let err = (scores.get(v) - exact.get(3, v)).abs();
            assert!(
                err < 0.02,
                "v={v}: mc {} vs exact {}",
                scores.get(v),
                exact.get(3, v)
            );
        }
    }

    #[test]
    fn zero_similarity_across_components() {
        let g = Arc::new(prsim_gen::toys::two_triangles());
        let mc = MonteCarlo::new(
            g,
            MonteCarloConfig {
                nr: 5_000,
                ..Default::default()
            },
        );
        let mut r = rng();
        let scores = mc.single_source(0, &mut r);
        for v in 3..6 {
            assert_eq!(scores.get(v), 0.0);
        }
    }

    #[test]
    fn trait_object_usable() {
        let g = Arc::new(prsim_gen::toys::cycle(4));
        let mc: Box<dyn SingleSourceSimRank> = Box::new(MonteCarlo::new(
            g,
            MonteCarloConfig {
                nr: 100,
                ..Default::default()
            },
        ));
        assert_eq!(mc.name(), "MC");
        assert_eq!(mc.index_size_bytes(), 0);
        let s = mc.single_source(1, &mut rng());
        assert_eq!(s.get(1), 1.0);
    }
}
