//! ProbeSim (Liu et al., PVLDB 2017) — the state-of-the-art *index-free*
//! single-source algorithm.
//!
//! Per sample: draw one √c-walk `W(u) = (v₀=u, v₁, …)`; for every step
//! `ℓ ≥ 1` run a **Probe** from `w = v_ℓ`, a deterministic forward
//! expansion computing, for every node `v`, the probability that a
//! √c-walk from `v` sits at `w` at step `ℓ` — while excluding, at the
//! probe layer that corresponds to walk step `ℓ−i`, the node `v_{ℓ-i}`
//! itself (first-meeting correction: a walk that already coincided with
//! `W(u)` earlier must not be counted again). Summing probe outputs over
//! `ℓ` gives an unbiased estimator of `s(u, ·)`; averaging `n_r` samples
//! drives the error below ε.
//!
//! The probe from a high-reverse-PageRank node touches `Θ(n·π(w))`
//! entries via full out-neighbor scans — the cost PRSim's VBBW prefix
//! scans beat (paper §4, Figure 7a).

use prsim_core::scores::SimRankScores;
use prsim_core::walk::{sample_walk, Terminal};
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::Arc;

use crate::SingleSourceSimRank;

/// ProbeSim configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProbeSimConfig {
    /// SimRank decay factor `c`.
    pub c: f64,
    /// Absolute error parameter ε_a; the sample count is `⌈c_mult/ε_a²⌉`.
    pub eps_a: f64,
    /// Multiplier in the sample count (the paper's constant is
    /// `O(log(n/δ))`; the released code uses a small constant).
    pub c_mult: f64,
    /// Walk length cap.
    pub max_len: usize,
}

impl Default for ProbeSimConfig {
    fn default() -> Self {
        ProbeSimConfig {
            c: 0.6,
            eps_a: 0.1,
            c_mult: 3.0,
            max_len: 64,
        }
    }
}

/// The ProbeSim algorithm (no index).
#[derive(Clone, Debug)]
pub struct ProbeSim {
    graph: Arc<DiGraph>,
    config: ProbeSimConfig,
    nr: usize,
}

impl ProbeSim {
    /// Creates a ProbeSim instance over `graph`.
    pub fn new(graph: Arc<DiGraph>, config: ProbeSimConfig) -> Self {
        assert!(config.c > 0.0 && config.c < 1.0);
        assert!(config.eps_a > 0.0);
        let nr = ((config.c_mult / (config.eps_a * config.eps_a)).ceil() as usize).max(1);
        ProbeSim { graph, config, nr }
    }

    /// Resolved sample count.
    pub fn sample_count(&self) -> usize {
        self.nr
    }

    /// The Probe procedure: forward-expands from `w` for `steps` layers,
    /// excluding `walk[steps − 1 − i]`-style aligned nodes, and returns
    /// the layer-`steps` scores. `walk[j]` is the √c-walk's node at step
    /// `j` with `walk[steps] == w`.
    fn probe(&self, walk: &[NodeId], steps: usize) -> HashMap<NodeId, f64> {
        let g = &*self.graph;
        let sqrt_c = self.config.c.sqrt();
        let w = walk[steps];
        let mut cur: HashMap<NodeId, f64> = HashMap::new();
        cur.insert(w, 1.0);
        for i in 0..steps {
            // Probe layer i+1 corresponds to walk step `steps - (i+1)`.
            let excluded = walk[steps - (i + 1)];
            let mut next: HashMap<NodeId, f64> = HashMap::new();
            // Sorted iteration: bitwise-deterministic float accumulation.
            let mut frontier: Vec<(NodeId, f64)> = cur.iter().map(|(&x, &s)| (x, s)).collect();
            frontier.sort_unstable_by_key(|&(x, _)| x);
            for &(x, score) in &frontier {
                for &y in g.out_neighbors(x) {
                    if y == excluded {
                        continue;
                    }
                    *next.entry(y).or_insert(0.0) += sqrt_c * score / g.in_degree(y) as f64;
                }
            }
            cur = next;
            if cur.is_empty() {
                break;
            }
        }
        cur
    }
}

impl SingleSourceSimRank for ProbeSim {
    fn name(&self) -> &'static str {
        "ProbeSim"
    }

    fn single_source(&self, u: NodeId, rng: &mut StdRng) -> SimRankScores {
        let g = &*self.graph;
        let n = g.node_count();
        let sqrt_c = self.config.c.sqrt();
        let mut acc: HashMap<NodeId, f64> = HashMap::new();
        for _ in 0..self.nr {
            let walk = sample_walk(g, sqrt_c, u, self.config.max_len, rng);
            // Probe every visited step ℓ >= 1. Steps beyond the terminal
            // are not visited; for a Died terminal the last path entry was
            // still visited alive.
            let last_alive = match walk.terminal {
                Terminal::At { level, .. } => level as usize,
                Terminal::Died => walk.path.len() - 1,
            };
            for l in 1..=last_alive {
                for (v, score) in self.probe(&walk.path, l) {
                    if v != u {
                        *acc.entry(v).or_insert(0.0) += score;
                    }
                }
            }
        }
        let map: HashMap<NodeId, f64> = acc
            .into_iter()
            .map(|(v, s)| (v, s / self.nr as f64))
            .filter(|&(_, s)| s > 0.0)
            .collect();
        SimRankScores::from_map(u, n, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::power_method;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x9B0B)
    }

    fn probesim(g: prsim_graph::DiGraph, eps: f64) -> ProbeSim {
        ProbeSim::new(
            Arc::new(g),
            ProbeSimConfig {
                eps_a: eps,
                c_mult: 5.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn sample_count_scales_inverse_quadratically() {
        let a = probesim(prsim_gen::toys::cycle(4), 0.1);
        let b = probesim(prsim_gen::toys::cycle(4), 0.05);
        assert_eq!(a.sample_count() * 4, b.sample_count());
    }

    #[test]
    fn star_out_query_close_to_c() {
        let p = probesim(prsim_gen::toys::star_out(6), 0.03);
        let mut r = rng();
        let scores = p.single_source(1, &mut r);
        for v in 2..6u32 {
            assert!(
                (scores.get(v) - 0.6).abs() < 0.05,
                "s(1,{v}) = {}",
                scores.get(v)
            );
        }
    }

    #[test]
    fn matches_power_method_on_small_graph() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(40, 4.0, 2.0, 14));
        let exact = power_method(&g, 0.6, 1e-10, 100);
        let p = probesim(g, 0.03);
        let mut r = rng();
        for u in [0u32, 9] {
            let scores = p.single_source(u, &mut r);
            for v in 0..40u32 {
                let err = (scores.get(v) - exact.get(u, v)).abs();
                assert!(
                    err < 0.08,
                    "u={u} v={v}: probesim {} vs exact {}",
                    scores.get(v),
                    exact.get(u, v)
                );
            }
        }
    }

    #[test]
    fn zero_across_components_and_self_one() {
        let p = probesim(prsim_gen::toys::two_triangles(), 0.1);
        let mut r = rng();
        let scores = p.single_source(0, &mut r);
        assert_eq!(scores.get(0), 1.0);
        for v in 3..6 {
            assert_eq!(scores.get(v), 0.0);
        }
    }

    #[test]
    fn index_free() {
        let p = probesim(prsim_gen::toys::cycle(3), 0.5);
        assert_eq!(p.index_size_bytes(), 0);
    }
}
