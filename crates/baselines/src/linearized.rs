//! The *linearized* SimRank variant `S = c·AᵀSA + (1−c)·I` (paper §4,
//! Eq. 15) — the recurrence a line of prior work [13, 14, 18, 21, 38, 39,
//! 41] solves because it avoids the element-wise maximum of Eq. 14.
//!
//! As the paper notes (citing Kusumoto et al.), the fixed point of this
//! recurrence is **not** SimRank: it differs whenever walk pairs can meet
//! more than once. The implementation exists so the suite can quantify
//! that gap (see the tests and the `linearized_gap` example of use in
//! EXPERIMENTS.md).

use prsim_graph::{DiGraph, NodeId};

/// Dense fixed point of the linearized recurrence.
#[derive(Clone, Debug)]
pub struct LinearizedResult {
    n: usize,
    s: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
}

impl LinearizedResult {
    /// `s_lin(u, v)`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.s[u as usize * self.n + v as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// Iterates `S ← c·AᵀSA + (1−c)·I` to tolerance `tol` (geometric
/// convergence at rate `c`). `O(n²)` memory — small graphs only.
pub fn linearized_simrank(g: &DiGraph, c: f64, tol: f64, max_iter: usize) -> LinearizedResult {
    assert!(c > 0.0 && c < 1.0);
    let n = g.node_count();
    let mut s = vec![0.0f64; n * n];
    for a in 0..n {
        s[a * n + a] = 1.0;
    }
    let mut m = vec![0.0f64; n * n];
    let mut next = vec![0.0f64; n * n];
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        for x in 0..n {
            let row = &s[x * n..(x + 1) * n];
            let mrow = &mut m[x * n..(x + 1) * n];
            for (b, slot) in mrow.iter_mut().enumerate() {
                let ins = g.in_neighbors(b as NodeId);
                *slot = if ins.is_empty() {
                    0.0
                } else {
                    ins.iter().map(|&y| row[y as usize]).sum::<f64>() / ins.len() as f64
                };
            }
        }
        let mut delta = 0.0f64;
        for a in 0..n {
            let ins_a = g.in_neighbors(a as NodeId);
            for b in 0..n {
                let idx = a * n + b;
                let mut val = if ins_a.is_empty() {
                    0.0
                } else {
                    c * ins_a.iter().map(|&x| m[x as usize * n + b]).sum::<f64>()
                        / ins_a.len() as f64
                };
                if a == b {
                    val += 1.0 - c;
                }
                delta = delta.max((val - s[idx]).abs());
                next[idx] = val;
            }
        }
        std::mem::swap(&mut s, &mut next);
        if delta < tol {
            break;
        }
    }
    LinearizedResult { n, s, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::power_method;

    const C: f64 = 0.6;

    #[test]
    fn satisfies_its_own_fixed_point() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(30, 4.0, 2.0, 3));
        let res = linearized_simrank(&g, C, 1e-12, 300);
        for a in 0..30u32 {
            for b in 0..30u32 {
                let ia = g.in_neighbors(a);
                let ib = g.in_neighbors(b);
                let mut want = if a == b { 1.0 - C } else { 0.0 };
                if !ia.is_empty() && !ib.is_empty() {
                    let mut acc = 0.0;
                    for &x in ia {
                        for &y in ib {
                            acc += res.get(x, y);
                        }
                    }
                    want += C * acc / (ia.len() * ib.len()) as f64;
                }
                assert!(
                    (res.get(a, b) - want).abs() < 1e-9,
                    "fixed point violated at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn differs_from_true_simrank() {
        // Paper §4 / [18]: the linearized similarities are NOT SimRank.
        // On any graph where walks can revisit (e.g. the bidirectional
        // star), the diagonal of the linearized fixed point drops below 1
        // and off-diagonals drift from Eq. (14)'s solution.
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(40, 5.0, 2.0, 7));
        let lin = linearized_simrank(&g, C, 1e-12, 300);
        let exact = power_method(&g, C, 1e-12, 300);
        let mut max_gap: f64 = 0.0;
        let mut diag_drop = false;
        for a in 0..40u32 {
            if lin.get(a, a) < 1.0 - 1e-6 {
                diag_drop = true;
            }
            for b in 0..40u32 {
                max_gap = max_gap.max((lin.get(a, b) - exact.get(a, b)).abs());
            }
        }
        assert!(diag_drop, "linearized diagonal should fall below 1");
        assert!(
            max_gap > 0.05,
            "linearized and true SimRank should differ measurably, gap = {max_gap}"
        );
    }

    #[test]
    fn closed_form_on_star_out() {
        // Analytic check of the Eq. (15) fixed point on star_out: the hub
        // has no in-neighbors, so s_lin(hub,hub) = 1−c, and each leaf
        // pair satisfies s_lin(i,j) = c·s_lin(hub,hub) = c(1−c). True
        // SimRank gives s(i,j) = c — a concrete instance of [18]'s
        // observation that Eq. (15) computes a different measure.
        let g = prsim_gen::toys::star_out(5);
        let lin = linearized_simrank(&g, C, 1e-12, 300);
        assert!((lin.get(0, 0) - (1.0 - C)).abs() < 1e-9);
        for i in 1..5u32 {
            for j in (i + 1)..5u32 {
                assert!(
                    (lin.get(i, j) - C * (1.0 - C)).abs() < 1e-9,
                    "s_lin({i},{j}) = {}",
                    lin.get(i, j)
                );
            }
        }
        // The gap to true SimRank (= c) is exactly c².
        let exact = power_method(&g, C, 1e-12, 300);
        assert!((exact.get(1, 2) - lin.get(1, 2) - C * C).abs() < 1e-9);
    }
}
