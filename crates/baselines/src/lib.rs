//! # prsim-baselines
//!
//! Every comparison algorithm from the PRSim paper's evaluation (§5),
//! implemented from scratch:
//!
//! | algorithm | paper role | module |
//! |---|---|---|
//! | Monte Carlo | classic sampler; also the ground-truth oracle | [`monte_carlo`] |
//! | Power method | exact all-pairs SimRank (Eq. 14), small graphs | [`power_method()`] |
//! | SLING | state-of-the-art index (Tian & Xiao) | [`sling`] |
//! | ProbeSim | state-of-the-art index-free (Liu et al.) | [`probesim`] |
//! | TSF | one-way-graph index (Shao et al.) | [`tsf`] |
//! | READS | √c-walk forest index (Jiang et al.) | [`reads`] |
//! | TopSim | pruned local expansion (Lee et al.) | [`topsim`] |
//!
//! All single-source algorithms implement [`SingleSourceSimRank`], the
//! trait the evaluation harness sweeps over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linearized;
pub mod monte_carlo;
pub mod power_method;
pub mod probesim;
pub mod reads;
pub mod sling;
pub mod topsim;
pub mod tsf;

pub use linearized::{linearized_simrank, LinearizedResult};
pub use monte_carlo::{MonteCarlo, MonteCarloConfig};
pub use power_method::{power_method, PowerMethodResult};
pub use probesim::{ProbeSim, ProbeSimConfig};
pub use reads::{Reads, ReadsConfig};
pub use sling::{Sling, SlingConfig};
pub use topsim::{TopSim, TopSimConfig};
pub use tsf::{Tsf, TsfConfig};

use prsim_core::SimRankScores;
use prsim_graph::NodeId;
use rand::rngs::StdRng;

/// Common interface of every single-source SimRank algorithm in the suite
/// (PRSim itself gets an adapter in `prsim-eval`).
pub trait SingleSourceSimRank {
    /// Human-readable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Answers a single-source query for `u`.
    fn single_source(&self, u: NodeId, rng: &mut StdRng) -> SimRankScores;

    /// Resident bytes of any precomputed index (0 for index-free methods).
    fn index_size_bytes(&self) -> usize {
        0
    }
}
