//! TopSim (Lee, Lakshmanan & Yu, ICDE 2012) — deterministic pruned local
//! expansion for top-k / single-source similarity search.
//!
//! The implementation follows the TopSim-SM family: expand the reverse
//! random-walk distribution of the query node level by level (keeping the
//! `H` most probable states per level, trimming probabilities below `η`
//! and refusing to expand through nodes with in-degree above `1/h`), then
//! meet each level-`ℓ` state `w` with a forward expansion of depth `ℓ`
//! and accumulate `c^ℓ · P(u⇝w) · P(v⇝w)`.
//!
//! As in the original, first-meeting correction is dropped for speed, so
//! TopSim over-counts repeated meetings — its accuracy plateau in the
//! paper's Figure 2 reproduces here for the same reason. (The paper's
//! experiments omit TopSim on Twitter-scale graphs because this expansion
//! explodes on locally dense graphs.)

use prsim_core::scores::SimRankScores;
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::Arc;

use crate::SingleSourceSimRank;

/// TopSim configuration (`T`, `1/h`, `η`, `H` of the paper's §5.1).
#[derive(Clone, Copy, Debug)]
pub struct TopSimConfig {
    /// SimRank decay factor `c`.
    pub c: f64,
    /// Expansion depth `T`.
    pub depth: usize,
    /// Degree threshold `1/h`: nodes with in-degree above this are not
    /// expanded through (high-degree pruning).
    pub degree_threshold: usize,
    /// Probability trim threshold `η`.
    pub eta_trim: f64,
    /// Maximum states kept per level (`H`).
    pub expand_limit: usize,
}

impl Default for TopSimConfig {
    fn default() -> Self {
        TopSimConfig {
            c: 0.6,
            depth: 3,
            degree_threshold: 100,
            eta_trim: 0.001,
            expand_limit: 100,
        }
    }
}

/// The TopSim algorithm (no index).
#[derive(Clone, Debug)]
pub struct TopSim {
    graph: Arc<DiGraph>,
    config: TopSimConfig,
}

impl TopSim {
    /// Creates a TopSim instance over `graph`.
    pub fn new(graph: Arc<DiGraph>, config: TopSimConfig) -> Self {
        assert!(config.c > 0.0 && config.c < 1.0);
        assert!(config.depth > 0);
        TopSim { graph, config }
    }

    /// Keeps the `limit` largest entries and drops those below `trim`.
    fn prune(dist: &mut HashMap<NodeId, f64>, trim: f64, limit: usize) {
        dist.retain(|_, p| *p >= trim);
        if dist.len() > limit {
            let mut entries: Vec<(NodeId, f64)> = dist.drain().collect();
            entries.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0)) // deterministic tie-break
            });
            entries.truncate(limit);
            dist.extend(entries);
        }
    }

    /// Key-sorted snapshot of a distribution: fixes float-accumulation
    /// order so results are bitwise deterministic.
    fn sorted(dist: &HashMap<NodeId, f64>) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = dist.iter().map(|(&k, &p)| (k, p)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// One reverse step of the (undecayed) walk distribution.
    fn reverse_step(&self, dist: &HashMap<NodeId, f64>) -> HashMap<NodeId, f64> {
        let g = &*self.graph;
        let mut next: HashMap<NodeId, f64> = HashMap::new();
        for &(x, p) in &Self::sorted(dist) {
            let ins = g.in_neighbors(x);
            if ins.is_empty() || ins.len() > self.config.degree_threshold {
                continue; // dangling or high-degree pruned
            }
            let share = p / ins.len() as f64;
            for &z in ins {
                *next.entry(z).or_insert(0.0) += share;
            }
        }
        next
    }

    /// One forward step: mass at `x` flows to each out-neighbor `y`
    /// weighted `1/d_in(y)` (the probability `y`'s walk picks `x`).
    fn forward_step(&self, dist: &HashMap<NodeId, f64>) -> HashMap<NodeId, f64> {
        let g = &*self.graph;
        let mut next: HashMap<NodeId, f64> = HashMap::new();
        for &(x, p) in &Self::sorted(dist) {
            for &y in g.out_neighbors(x) {
                *next.entry(y).or_insert(0.0) += p / g.in_degree(y) as f64;
            }
        }
        next
    }
}

impl SingleSourceSimRank for TopSim {
    fn name(&self) -> &'static str {
        "TopSim"
    }

    fn single_source(&self, u: NodeId, _rng: &mut StdRng) -> SimRankScores {
        let cfg = &self.config;
        let n = self.graph.node_count();
        let mut acc: HashMap<NodeId, f64> = HashMap::new();

        // Reverse distributions D_ℓ of u's walk.
        let mut dist: HashMap<NodeId, f64> = HashMap::new();
        dist.insert(u, 1.0);
        for level in 1..=cfg.depth {
            dist = self.reverse_step(&dist);
            Self::prune(&mut dist, cfg.eta_trim, cfg.expand_limit);
            if dist.is_empty() {
                break;
            }
            // Meet: forward-expand the whole level distribution `level`
            // steps and weight by c^level.
            let mut fwd = dist.clone();
            for _ in 0..level {
                fwd = self.forward_step(&fwd);
                Self::prune(&mut fwd, cfg.eta_trim, cfg.expand_limit * 4);
                if fwd.is_empty() {
                    break;
                }
            }
            let cl = cfg.c.powi(level as i32);
            for (v, p) in fwd {
                if v != u {
                    *acc.entry(v).or_insert(0.0) += cl * p;
                }
            }
        }
        SimRankScores::from_map(u, n, acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::power_method;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x7095)
    }

    fn topsim(g: prsim_graph::DiGraph) -> TopSim {
        TopSim::new(
            Arc::new(g),
            TopSimConfig {
                depth: 4,
                degree_threshold: 1_000,
                eta_trim: 1e-5,
                expand_limit: 10_000,
                ..Default::default()
            },
        )
    }

    #[test]
    fn star_out_exact() {
        let t = topsim(prsim_gen::toys::star_out(6));
        let scores = t.single_source(1, &mut rng());
        for v in 2..6u32 {
            assert!(
                (scores.get(v) - 0.6).abs() < 1e-9,
                "s(1,{v}) = {}",
                scores.get(v)
            );
        }
    }

    #[test]
    fn cycle_zero() {
        let t = topsim(prsim_gen::toys::cycle(6));
        let scores = t.single_source(0, &mut rng());
        // Reverse and forward distributions are deterministic rotations;
        // the only "meeting" mass returns to u itself, which is excluded.
        for v in 1..6u32 {
            assert_eq!(scores.get(v), 0.0);
        }
    }

    #[test]
    fn tracks_power_method_roughly() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(40, 4.0, 2.0, 14));
        let exact = power_method(&g, 0.6, 1e-10, 100);
        let t = topsim(g);
        let scores = t.single_source(2, &mut rng());
        let mut total_err = 0.0;
        for v in 0..40u32 {
            total_err += (scores.get(v) - exact.get(2, v)).abs();
        }
        // TopSim over-counts repeated meetings and truncates at depth T:
        // rough agreement only (matching its accuracy plateau in Fig. 2).
        assert!(
            total_err / 40.0 < 0.15,
            "average error {} too large",
            total_err / 40.0
        );
    }

    #[test]
    fn high_degree_pruning_cuts_work() {
        // With the hub pruned (threshold below the hub degree) star_out
        // can't be expanded at all: all scores are 0.
        let g = prsim_gen::toys::star_out(50);
        let t = TopSim::new(
            Arc::new(g),
            TopSimConfig {
                degree_threshold: 1, // hub in-degree is 0; leaves' is 1...
                depth: 3,
                eta_trim: 1e-9,
                expand_limit: 1000,
                ..Default::default()
            },
        );
        // Leaves' in-degree is 1 <= threshold so expansion still works;
        // verify pruning at least leaves results sane.
        let scores = t.single_source(1, &mut rng());
        for (_, s) in scores.iter() {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn index_free() {
        let t = topsim(prsim_gen::toys::cycle(4));
        assert_eq!(t.index_size_bytes(), 0);
    }
}
