//! Exact all-pairs SimRank via the power method (paper Eq. 14).
//!
//! Iterates `S ← (c·Aᵀ S A) ∨ I` where the `(a,b)` entry of `Aᵀ S A`
//! averages `S` over in-neighbor pairs:
//!
//! ```text
//! S_{k+1}(a,b) = c / (|I(a)|·|I(b)|) · Σ_{x∈I(a)} Σ_{y∈I(b)} S_k(x,y)
//! ```
//!
//! with `S(a,a) = 1` re-imposed each round and `S(a,b) = 0` whenever
//! either node has no in-neighbors. Convergence is geometric with rate
//! `c`, so `iters = ⌈log(tol)/log(c)⌉` reaches any tolerance.
//!
//! This is the `O(n²)`-memory ground-truth oracle used by the test suites
//! and the pooling harness on small graphs; it is *not* a scalable
//! algorithm (which is the paper's point).

use prsim_graph::{DiGraph, NodeId};

/// Dense all-pairs SimRank matrix.
#[derive(Clone, Debug)]
pub struct PowerMethodResult {
    n: usize,
    /// Row-major `n × n` similarity matrix.
    s: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Maximum entry change in the final iteration.
    pub final_delta: f64,
}

impl PowerMethodResult {
    /// `s(u, v)`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.s[u as usize * self.n + v as usize]
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The dense row `s(u, ·)`.
    pub fn row(&self, u: NodeId) -> &[f64] {
        &self.s[u as usize * self.n..(u as usize + 1) * self.n]
    }
}

/// Runs the power method until the max entry change drops below `tol` or
/// `max_iter` iterations elapse.
///
/// # Panics
///
/// Panics if `c` is outside `(0, 1)`.
pub fn power_method(g: &DiGraph, c: f64, tol: f64, max_iter: usize) -> PowerMethodResult {
    assert!(c > 0.0 && c < 1.0, "decay factor must lie in (0,1)");
    let n = g.node_count();
    let mut s = vec![0.0f64; n * n];
    for a in 0..n {
        s[a * n + a] = 1.0;
    }
    if n == 0 {
        return PowerMethodResult {
            n,
            s,
            iterations: 0,
            final_delta: 0.0,
        };
    }

    let mut m = vec![0.0f64; n * n]; // M(x, b) = mean_{y ∈ I(b)} S(x, y)
    let mut next = vec![0.0f64; n * n];
    let mut iterations = 0;
    let mut final_delta = 0.0;

    for _ in 0..max_iter {
        iterations += 1;
        // M = S · A  (column b averages S over I(b)).
        for x in 0..n {
            let row = &s[x * n..(x + 1) * n];
            let mrow = &mut m[x * n..(x + 1) * n];
            for (b, slot) in mrow.iter_mut().enumerate() {
                let ins = g.in_neighbors(b as NodeId);
                *slot = if ins.is_empty() {
                    0.0
                } else {
                    let sum: f64 = ins.iter().map(|&y| row[y as usize]).sum();
                    sum / ins.len() as f64
                };
            }
        }
        // next = c · Aᵀ · M, then ∨ I.
        let mut delta = 0.0f64;
        for a in 0..n {
            let ins_a = g.in_neighbors(a as NodeId);
            for b in 0..n {
                let val = if a == b {
                    1.0
                } else if ins_a.is_empty() {
                    0.0
                } else {
                    let sum: f64 = ins_a.iter().map(|&x| m[x as usize * n + b]).sum();
                    c * sum / ins_a.len() as f64
                };
                let idx = a * n + b;
                delta = delta.max((val - s[idx]).abs());
                next[idx] = val;
            }
        }
        std::mem::swap(&mut s, &mut next);
        final_delta = delta;
        if delta < tol {
            break;
        }
    }

    PowerMethodResult {
        n,
        s,
        iterations,
        final_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 0.6;

    #[test]
    fn identity_on_diagonal_and_symmetry() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(40, 4.0, 2.0, 1));
        let res = power_method(&g, C, 1e-10, 100);
        for u in 0..40u32 {
            assert_eq!(res.get(u, u), 1.0);
            for v in 0..40u32 {
                let a = res.get(u, v);
                let b = res.get(v, u);
                assert!((a - b).abs() < 1e-12, "asymmetry at ({u},{v})");
                assert!((0.0..=1.0).contains(&a));
            }
        }
    }

    #[test]
    fn star_out_leaves_have_similarity_c() {
        // Leaves share the single in-neighbor (the hub):
        // s(i,j) = c·s(0,0) = c.
        let g = prsim_gen::toys::star_out(5);
        let res = power_method(&g, C, 1e-12, 100);
        for i in 1..5u32 {
            for j in 1..5u32 {
                if i != j {
                    assert!(
                        (res.get(i, j) - C).abs() < 1e-10,
                        "s({i},{j}) = {}",
                        res.get(i, j)
                    );
                }
            }
        }
        // Hub has no in-neighbors: similarity 0 to everything else.
        for j in 1..5u32 {
            assert_eq!(res.get(0, j), 0.0);
        }
    }

    #[test]
    fn cycle_has_zero_off_diagonal() {
        // On a directed cycle both walks rotate in lockstep; they never
        // meet, so s(u,v) = 0 for u ≠ v.
        let g = prsim_gen::toys::cycle(6);
        let res = power_method(&g, C, 1e-12, 200);
        for u in 0..6u32 {
            for v in 0..6u32 {
                if u != v {
                    assert!(res.get(u, v).abs() < 1e-9, "s({u},{v}) = {}", res.get(u, v));
                }
            }
        }
    }

    #[test]
    fn jeh_widom_example_values() {
        // Classic example from the original SimRank paper: with c implied
        // by their setup the exact fixed point is known qualitatively —
        // StudentA/StudentB (3,4) are similar through ProfA/ProfB, and
        // ProfA/ProfB (1,2) through Univ. Check the recursion fixed point
        // directly instead of quoting numbers: s must satisfy Eq. (1).
        let g = prsim_gen::toys::jeh_widom_university();
        let res = power_method(&g, C, 1e-13, 300);
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a == b {
                    continue;
                }
                let ia = g.in_neighbors(a);
                let ib = g.in_neighbors(b);
                let want = if ia.is_empty() || ib.is_empty() {
                    0.0
                } else {
                    let mut acc = 0.0;
                    for &x in ia {
                        for &y in ib {
                            acc += res.get(x, y);
                        }
                    }
                    C * acc / (ia.len() * ib.len()) as f64
                };
                assert!(
                    (res.get(a, b) - want).abs() < 1e-9,
                    "fixed point violated at ({a},{b}): {} vs {want}",
                    res.get(a, b)
                );
            }
        }
        // Qualitative: the two professors are similar (both cited by Univ).
        assert!(res.get(1, 2) > 0.3);
    }

    #[test]
    fn converges_geometrically() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(30, 4.0, 2.0, 3));
        let coarse = power_method(&g, C, 1e-3, 100);
        let fine = power_method(&g, C, 1e-12, 100);
        assert!(coarse.iterations < fine.iterations);
        // Coarse matrix within tol·c/(1-c) of fine.
        let mut worst = 0.0f64;
        for u in 0..30u32 {
            for v in 0..30u32 {
                worst = worst.max((coarse.get(u, v) - fine.get(u, v)).abs());
            }
        }
        assert!(worst < 2e-3, "coarse vs fine diff {worst}");
    }

    #[test]
    fn empty_graph() {
        let g = prsim_graph::DiGraph::from_edges(0, &[]);
        let res = power_method(&g, C, 1e-9, 10);
        assert_eq!(res.node_count(), 0);
    }
}
