//! READS (Jiang, Fu & Wong, PVLDB 2017) — randomized index of coupled
//! √c-walks.
//!
//! **Index**: `r` samples; sample `k` draws, for every node `x` and step
//! `i < t`, one shared decision `next_k,i(x)` — terminate (probability
//! `1−√c`) or move to a uniform in-neighbor. Sharing the decision per
//! `(k, i, x)` merges walks the moment they coincide (the tree compression
//! of the READS paper) while keeping walks at *distinct* nodes
//! independent, so the pairwise meeting probability is exactly SimRank.
//!
//! **Query**: follow `u`'s walk in sample `k` to its end `(L, x_L)`; every
//! node `v` whose sample-`k` walk is alive at step `L` at `x_L` has met
//! `u`'s walk (merging makes "ever met" equivalent to "together at `u`'s
//! final step"), found by expanding the per-level preimage lists downward.
//! Each such `v` scores `1/r`.
//!
//! The per-level successor + preimage arrays cost `O(r·t·n)` memory —
//! READS' documented scalability pain (the paper's Figure 4 shows it
//! needing 100 GB where PRSim needs 200 MB).

use prsim_core::scores::SimRankScores;
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

use crate::SingleSourceSimRank;

/// Sentinel: walk terminated (flip) or died (dangling) at this step.
const STOP: u32 = u32::MAX;

/// READS configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReadsConfig {
    /// SimRank decay factor `c`.
    pub c: f64,
    /// Number of walk samples per node (`r`).
    pub r: usize,
    /// Walk depth cap (`t`).
    pub t: usize,
}

impl Default for ReadsConfig {
    fn default() -> Self {
        ReadsConfig {
            c: 0.6,
            r: 100,
            t: 10,
        }
    }
}

/// One sample's coupled-walk tables.
#[derive(Clone, Debug)]
struct Sample {
    /// `next[i·n + x]` = successor of `x` at step `i`, or [`STOP`].
    next: Vec<u32>,
    /// Per-level preimage CSR: `pre_offsets[i][x]..` indexes `pre_list[i]`.
    pre_offsets: Vec<Vec<usize>>,
    pre_list: Vec<Vec<NodeId>>,
}

impl Sample {
    fn generate(g: &DiGraph, sqrt_c: f64, t: usize, rng: &mut StdRng) -> Self {
        let n = g.node_count();
        let mut next = vec![STOP; t * n];
        for i in 0..t {
            for x in 0..n {
                if rng.gen::<f64>() < sqrt_c {
                    let ins = g.in_neighbors(x as NodeId);
                    if !ins.is_empty() {
                        next[i * n + x] = ins[rng.gen_range(0..ins.len())];
                    }
                }
            }
        }
        // Preimage CSR per level.
        let mut pre_offsets = Vec::with_capacity(t);
        let mut pre_list = Vec::with_capacity(t);
        for i in 0..t {
            let level = &next[i * n..(i + 1) * n];
            let mut deg = vec![0usize; n];
            for &tgt in level {
                if tgt != STOP {
                    deg[tgt as usize] += 1;
                }
            }
            let mut offsets = Vec::with_capacity(n + 1);
            let mut acc = 0usize;
            offsets.push(0);
            for &d in &deg {
                acc += d;
                offsets.push(acc);
            }
            let mut cursor = offsets[..n].to_vec();
            let mut list = vec![0 as NodeId; acc];
            for (x, &tgt) in level.iter().enumerate() {
                if tgt != STOP {
                    list[cursor[tgt as usize]] = x as NodeId;
                    cursor[tgt as usize] += 1;
                }
            }
            pre_offsets.push(offsets);
            pre_list.push(list);
        }
        Sample {
            next,
            pre_offsets,
            pre_list,
        }
    }

    /// Nodes `y` with `next_i(y) = x`.
    fn preimage(&self, i: usize, x: NodeId) -> &[NodeId] {
        let o = &self.pre_offsets[i];
        &self.pre_list[i][o[x as usize]..o[x as usize + 1]]
    }
}

/// A built READS index.
#[derive(Clone, Debug)]
pub struct Reads {
    graph: Arc<DiGraph>,
    config: ReadsConfig,
    samples: Vec<Sample>,
    /// Preprocessing wall time in seconds.
    pub preprocess_seconds: f64,
}

impl Reads {
    /// Generates the `r` coupled-walk samples.
    pub fn build(graph: Arc<DiGraph>, config: ReadsConfig, rng: &mut StdRng) -> Self {
        assert!(config.c > 0.0 && config.c < 1.0);
        assert!(config.r > 0 && config.t > 0);
        let start = std::time::Instant::now();
        let sqrt_c = config.c.sqrt();
        let samples = (0..config.r)
            .map(|_| Sample::generate(&graph, sqrt_c, config.t, rng))
            .collect();
        let preprocess_seconds = start.elapsed().as_secs_f64();
        Reads {
            graph,
            config,
            samples,
            preprocess_seconds,
        }
    }
}

impl SingleSourceSimRank for Reads {
    fn name(&self) -> &'static str {
        "READS"
    }

    fn single_source(&self, u: NodeId, _rng: &mut StdRng) -> SimRankScores {
        let n = self.graph.node_count();
        let mut acc: HashMap<NodeId, f64> = HashMap::new();
        let inv_r = 1.0 / self.config.r as f64;
        for sample in &self.samples {
            // Follow u's walk to its final alive step L at node x_L.
            let mut path = vec![u];
            let mut x = u;
            for i in 0..self.config.t {
                let nx = sample.next[i * n + x as usize];
                if nx == STOP {
                    break;
                }
                x = nx;
                path.push(x);
            }
            let last = path.len() - 1;
            if last == 0 {
                continue; // u's walk never moved: no v can meet it at i ≥ 1
            }
            // All v alive at step `last` at node x: expand preimages
            // downward from (last, x) to level 0.
            let mut frontier = vec![x];
            for level in (0..last).rev() {
                let mut next_frontier = Vec::new();
                for &node in &frontier {
                    next_frontier.extend_from_slice(sample.preimage(level, node));
                }
                frontier = next_frontier;
                if frontier.is_empty() {
                    break;
                }
            }
            for &v in &frontier {
                if v != u {
                    *acc.entry(v).or_insert(0.0) += inv_r;
                }
            }
        }
        SimRankScores::from_map(u, n, acc)
    }

    fn index_size_bytes(&self) -> usize {
        self.samples
            .iter()
            .map(|s| {
                s.next.len() * 4
                    + s.pre_offsets
                        .iter()
                        .map(|o| o.len() * std::mem::size_of::<usize>())
                        .sum::<usize>()
                    + s.pre_list.iter().map(|l| l.len() * 4).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::power_method;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x2EAD5)
    }

    fn reads(g: prsim_graph::DiGraph, r: usize, t: usize) -> Reads {
        Reads::build(Arc::new(g), ReadsConfig { c: 0.6, r, t }, &mut rng())
    }

    #[test]
    fn successors_are_in_neighbors() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(50, 4.0, 2.0, 4));
        let idx = reads(g.clone(), 3, 5);
        let n = g.node_count();
        for s in &idx.samples {
            for i in 0..5 {
                for x in 0..n {
                    let nx = s.next[i * n + x];
                    if nx != STOP {
                        assert!(g.in_neighbors(x as u32).contains(&nx));
                        assert!(s.preimage(i, nx).contains(&(x as u32)));
                    }
                }
            }
        }
    }

    #[test]
    fn termination_rate_matches_sqrt_c() {
        let g = prsim_gen::toys::complete(30);
        let idx = reads(g, 20, 8);
        let n = 30;
        let mut stopped = 0usize;
        let mut total = 0usize;
        for s in &idx.samples {
            for &nx in &s.next {
                total += 1;
                if nx == STOP {
                    stopped += 1;
                }
            }
        }
        let _ = n;
        let rate = stopped as f64 / total as f64;
        let want = 1.0 - 0.6f64.sqrt();
        assert!((rate - want).abs() < 0.02, "stop rate {rate}, want {want}");
    }

    #[test]
    fn star_out_close_to_c() {
        let idx = reads(prsim_gen::toys::star_out(6), 3_000, 10);
        let mut r = rng();
        let scores = idx.single_source(1, &mut r);
        for v in 2..6u32 {
            assert!(
                (scores.get(v) - 0.6).abs() < 0.05,
                "s(1,{v}) = {}",
                scores.get(v)
            );
        }
    }

    #[test]
    fn matches_power_method_on_small_graph() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(40, 4.0, 2.0, 14));
        let exact = power_method(&g, 0.6, 1e-10, 100);
        let idx = reads(g, 4_000, 12);
        let mut r = rng();
        let scores = idx.single_source(2, &mut r);
        for v in 0..40u32 {
            let err = (scores.get(v) - exact.get(2, v)).abs();
            assert!(
                err < 0.05,
                "v={v}: reads {} vs exact {}",
                scores.get(v),
                exact.get(2, v)
            );
        }
    }

    #[test]
    fn cycle_zero_similarity() {
        let idx = reads(prsim_gen::toys::cycle(8), 500, 10);
        let mut r = rng();
        let scores = idx.single_source(0, &mut r);
        for v in 1..8u32 {
            assert_eq!(scores.get(v), 0.0);
        }
    }

    #[test]
    fn index_size_scales_with_r_and_t() {
        let small = reads(prsim_gen::toys::cycle(20), 5, 5);
        let big_r = reads(prsim_gen::toys::cycle(20), 20, 5);
        let big_t = reads(prsim_gen::toys::cycle(20), 5, 20);
        assert!(big_r.index_size_bytes() > 3 * small.index_size_bytes());
        assert!(big_t.index_size_bytes() > 3 * small.index_size_bytes());
    }
}
