//! TSF — Two-Stage Framework (Shao et al., PVLDB 2015).
//!
//! **Index**: `R_g` *one-way graphs*; each samples one in-neighbor
//! (or none) per node, so every node's reverse walk through a one-way
//! graph is a deterministic path and the one-way graph is a forest.
//!
//! **Query**: for each one-way graph, `R_q` fresh random reverse walks
//! from `u`; when the fresh walk sits at `x` after `i` steps, every node
//! `v` whose one-way path also sits at `x` after `i` steps (the depth-`i`
//! descendants of `x` in the forest) receives `c^i / (R_g·R_q)`.
//!
//! Per the published algorithm, walks may meet several times and each
//! meeting contributes — TSF *overestimates* SimRank (paper §4), which is
//! visible in the accuracy experiments.

use prsim_core::scores::SimRankScores;
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

use crate::SingleSourceSimRank;

/// Sentinel for "no parent" in a one-way graph.
const NONE: u32 = u32::MAX;

/// TSF configuration.
#[derive(Clone, Copy, Debug)]
pub struct TsfConfig {
    /// SimRank decay factor `c`.
    pub c: f64,
    /// Number of one-way graphs in the index (`R_g`).
    pub rg: usize,
    /// Reuses of each one-way graph per query (`R_q`).
    pub rq: usize,
    /// Walk depth cap `t`.
    pub depth: usize,
}

impl Default for TsfConfig {
    fn default() -> Self {
        TsfConfig {
            c: 0.6,
            rg: 300,
            rq: 40,
            depth: 10,
        }
    }
}

/// One sampled one-way graph stored as parent array + child CSR.
#[derive(Clone, Debug)]
struct OneWayGraph {
    /// `parent[v]` = sampled in-neighbor of `v`, or [`NONE`].
    parent: Vec<u32>,
    /// CSR of the reverse relation for descendant enumeration.
    child_offsets: Vec<usize>,
    child_list: Vec<NodeId>,
}

impl OneWayGraph {
    fn sample(g: &DiGraph, rng: &mut StdRng) -> Self {
        let n = g.node_count();
        let mut parent = vec![NONE; n];
        for (v, slot) in parent.iter_mut().enumerate() {
            let ins = g.in_neighbors(v as NodeId);
            if !ins.is_empty() {
                *slot = ins[rng.gen_range(0..ins.len())];
            }
        }
        // Build child CSR.
        let mut deg = vec![0usize; n];
        for &p in &parent {
            if p != NONE {
                deg[p as usize] += 1;
            }
        }
        let mut child_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        child_offsets.push(0);
        for &d in &deg {
            acc += d;
            child_offsets.push(acc);
        }
        let mut cursor = child_offsets[..n].to_vec();
        let mut child_list = vec![0 as NodeId; acc];
        for (v, &p) in parent.iter().enumerate() {
            if p != NONE {
                child_list[cursor[p as usize]] = v as NodeId;
                cursor[p as usize] += 1;
            }
        }
        OneWayGraph {
            parent,
            child_offsets,
            child_list,
        }
    }

    fn children(&self, x: NodeId) -> &[NodeId] {
        &self.child_list[self.child_offsets[x as usize]..self.child_offsets[x as usize + 1]]
    }

    /// All nodes whose one-way path reaches `x` after exactly `depth`
    /// steps (depth-`depth` descendants of `x` in the forest).
    fn descendants_at_depth(&self, x: NodeId, depth: usize, out: &mut Vec<NodeId>) {
        out.clear();
        let mut frontier = vec![x];
        for _ in 0..depth {
            let mut next = Vec::new();
            for &node in &frontier {
                next.extend_from_slice(self.children(node));
            }
            if next.is_empty() {
                return;
            }
            frontier = next;
        }
        *out = frontier;
    }
}

/// A built TSF index.
#[derive(Clone, Debug)]
pub struct Tsf {
    graph: Arc<DiGraph>,
    config: TsfConfig,
    one_way: Vec<OneWayGraph>,
    /// Preprocessing wall time in seconds.
    pub preprocess_seconds: f64,
}

impl Tsf {
    /// Samples the `R_g` one-way graphs.
    pub fn build(graph: Arc<DiGraph>, config: TsfConfig, rng: &mut StdRng) -> Self {
        assert!(config.c > 0.0 && config.c < 1.0);
        assert!(config.rg > 0 && config.rq > 0 && config.depth > 0);
        let start = std::time::Instant::now();
        let one_way = (0..config.rg)
            .map(|_| OneWayGraph::sample(&graph, rng))
            .collect();
        let preprocess_seconds = start.elapsed().as_secs_f64();
        Tsf {
            graph,
            config,
            one_way,
            preprocess_seconds,
        }
    }
}

impl SingleSourceSimRank for Tsf {
    fn name(&self) -> &'static str {
        "TSF"
    }

    fn single_source(&self, u: NodeId, rng: &mut StdRng) -> SimRankScores {
        let g = &*self.graph;
        let n = g.node_count();
        let weight = 1.0 / (self.config.rg * self.config.rq) as f64;
        let mut acc: HashMap<NodeId, f64> = HashMap::new();
        let mut buf: Vec<NodeId> = Vec::new();
        for ow in &self.one_way {
            for _ in 0..self.config.rq {
                // Fresh reverse walk from u (no decay; c^i applied at meets).
                let mut x = u;
                for i in 1..=self.config.depth {
                    let ins = g.in_neighbors(x);
                    if ins.is_empty() {
                        break;
                    }
                    x = ins[rng.gen_range(0..ins.len())];
                    ow.descendants_at_depth(x, i, &mut buf);
                    let ci = self.config.c.powi(i as i32);
                    for &v in &buf {
                        if v != u {
                            *acc.entry(v).or_insert(0.0) += ci * weight;
                        }
                    }
                }
            }
        }
        SimRankScores::from_map(u, n, acc)
    }

    fn index_size_bytes(&self) -> usize {
        self.one_way
            .iter()
            .map(|ow| {
                ow.parent.len() * 4
                    + ow.child_offsets.len() * std::mem::size_of::<usize>()
                    + ow.child_list.len() * 4
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::power_method;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x75F)
    }

    fn tsf(g: prsim_graph::DiGraph, rg: usize, rq: usize) -> Tsf {
        Tsf::build(
            Arc::new(g),
            TsfConfig {
                rg,
                rq,
                ..Default::default()
            },
            &mut rng(),
        )
    }

    #[test]
    fn one_way_graph_is_forest_sample() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(50, 4.0, 2.0, 4));
        let mut r = rng();
        let ow = OneWayGraph::sample(&g, &mut r);
        for v in 0..50u32 {
            let p = ow.parent[v as usize];
            if p != NONE {
                assert!(
                    g.in_neighbors(v).contains(&p),
                    "parent {p} is not an in-neighbor of {v}"
                );
                assert!(ow.children(p).contains(&v));
            } else {
                assert!(g.in_neighbors(v).is_empty());
            }
        }
    }

    #[test]
    fn descendants_depth_zero_is_self() {
        let g = prsim_gen::toys::star_out(5);
        let mut r = rng();
        let ow = OneWayGraph::sample(&g, &mut r);
        let mut buf = Vec::new();
        ow.descendants_at_depth(0, 0, &mut buf);
        assert_eq!(buf, vec![0]);
        // Depth 1 from the hub: all leaves (each leaf's only in-neighbor
        // is the hub, so every leaf's parent is the hub).
        ow.descendants_at_depth(0, 1, &mut buf);
        let mut got = buf.clone();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn star_out_close_to_c() {
        let t = tsf(prsim_gen::toys::star_out(6), 200, 10);
        let mut r = rng();
        let scores = t.single_source(1, &mut r);
        for v in 2..6u32 {
            assert!(
                (scores.get(v) - 0.6).abs() < 0.05,
                "s(1,{v}) = {}",
                scores.get(v)
            );
        }
    }

    #[test]
    fn overestimates_but_tracks_power_method() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(40, 4.0, 2.0, 14));
        let exact = power_method(&g, 0.6, 1e-10, 100);
        let t = tsf(g, 150, 10);
        let mut r = rng();
        let scores = t.single_source(2, &mut r);
        let mut total_err = 0.0;
        for v in 0..40u32 {
            total_err += (scores.get(v) - exact.get(2, v)).abs();
        }
        // TSF is biased upward (multiple meetings); expect rough
        // agreement, not ε-accuracy.
        assert!(
            total_err / 40.0 < 0.1,
            "average error {} too large",
            total_err / 40.0
        );
    }

    #[test]
    fn index_size_scales_with_rg() {
        let a = tsf(prsim_gen::toys::cycle(20), 10, 2);
        let b = tsf(prsim_gen::toys::cycle(20), 40, 2);
        assert!(b.index_size_bytes() > 3 * a.index_size_bytes());
    }

    #[test]
    fn cycle_has_zero_similarity() {
        let t = tsf(prsim_gen::toys::cycle(8), 50, 5);
        let mut r = rng();
        let scores = t.single_source(0, &mut r);
        for v in 1..8u32 {
            assert_eq!(scores.get(v), 0.0, "cycle walks never meet");
        }
    }
}
