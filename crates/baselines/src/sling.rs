//! SLING (Tian & Xiao, SIGMOD 2016) — the state-of-the-art index the
//! paper compares against and improves upon.
//!
//! SLING precomputes, for every node `w` and level `ℓ`, the hitting
//! probabilities `h_ℓ(v,w)` above the accuracy threshold `ε_a` (via the
//! same backward search PRSim uses), plus a Monte-Carlo estimate of the
//! last-meeting probability `η(w)` for **every** node — the expensive
//! `O(n·log(n/δ)/ε²)` preprocessing step PRSim's joint η·π estimator
//! eliminates. The query evaluates paper Eq. (5) deterministically:
//!
//! ```text
//! s(u,v) = Σ_ℓ Σ_w h_ℓ(u,w)·h_ℓ(v,w)·η(w)
//! ```
//!
//! reading `h_ℓ(u,·)` from per-source forward lists and `h_ℓ(·,w)` from
//! per-target inverted lists.

use prsim_core::backward::backward_search;
use prsim_core::scores::SimRankScores;
use prsim_core::walk::estimate_eta;
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::Arc;

use crate::SingleSourceSimRank;

/// SLING configuration.
#[derive(Clone, Copy, Debug)]
pub struct SlingConfig {
    /// SimRank decay factor `c`.
    pub c: f64,
    /// Absolute accuracy threshold ε_a (controls index density: entries
    /// with `h_ℓ(v,w) ≤ ε_a` are dropped).
    pub eps_a: f64,
    /// Walk pairs used to estimate each `η(w)`.
    pub eta_samples: usize,
    /// Level / walk-length cap.
    pub max_level: usize,
}

impl Default for SlingConfig {
    fn default() -> Self {
        SlingConfig {
            c: 0.6,
            eps_a: 0.05,
            eta_samples: 2_000,
            max_level: 64,
        }
    }
}

/// A built SLING index.
#[derive(Clone, Debug)]
pub struct Sling {
    graph: Arc<DiGraph>,
    config: SlingConfig,
    /// `η(w)` per node.
    eta: Vec<f64>,
    /// Forward lists: `forward[u]` = `(ℓ, w, h_ℓ(u,w))`, entries > ε_a.
    forward: Vec<Vec<(u32, NodeId, f64)>>,
    /// Inverted lists keyed `(w, ℓ)`: `(v, h_ℓ(v,w))`, entries > ε_a.
    inverted: HashMap<(NodeId, u32), Vec<(NodeId, f64)>>,
    /// Preprocessing wall time in seconds (for the Figure 5 harness).
    pub preprocess_seconds: f64,
}

impl Sling {
    /// Builds the SLING index: one backward search per node plus `η`
    /// estimation per node.
    pub fn build(graph: Arc<DiGraph>, config: SlingConfig, rng: &mut StdRng) -> Self {
        assert!(config.c > 0.0 && config.c < 1.0);
        let start = std::time::Instant::now();
        let g = &*graph;
        let n = g.node_count();
        let sqrt_c = config.c.sqrt();
        let alpha = 1.0 - sqrt_c;
        // Backward search tolerance chosen so reserve error ≈ ε_a·α (the
        // stored h = ψ/α then has error ≈ ε_a, mirroring SLING's ε_a).
        let r_max = (config.eps_a * alpha).max(1e-12);

        let mut forward: Vec<Vec<(u32, NodeId, f64)>> = vec![Vec::new(); n];
        let mut inverted: HashMap<(NodeId, u32), Vec<(NodeId, f64)>> = HashMap::new();
        for w in 0..n as NodeId {
            let res = backward_search(g, sqrt_c, w, r_max, config.max_level);
            for (l, level) in res.levels.iter().enumerate() {
                for &(v, psi) in level {
                    let h = psi / alpha;
                    if h > config.eps_a {
                        forward[v as usize].push((l as u32, w, h));
                        inverted.entry((w, l as u32)).or_default().push((v, h));
                    }
                }
            }
        }

        let eta: Vec<f64> = (0..n as NodeId)
            .map(|w| estimate_eta(g, sqrt_c, w, config.eta_samples, config.max_level, rng))
            .collect();

        let preprocess_seconds = start.elapsed().as_secs_f64();
        Sling {
            graph,
            config,
            eta,
            forward,
            inverted,
            preprocess_seconds,
        }
    }

    /// The estimated `η(w)` vector.
    pub fn eta(&self) -> &[f64] {
        &self.eta
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SlingConfig {
        &self.config
    }

    /// Total stored `(entry)` count across forward and inverted lists.
    pub fn entry_count(&self) -> usize {
        let f: usize = self.forward.iter().map(Vec::len).sum();
        let i: usize = self.inverted.values().map(Vec::len).sum();
        f + i
    }
}

impl SingleSourceSimRank for Sling {
    fn name(&self) -> &'static str {
        "SLING"
    }

    fn single_source(&self, u: NodeId, _rng: &mut StdRng) -> SimRankScores {
        let n = self.graph.node_count();
        let mut map: HashMap<NodeId, f64> = HashMap::new();
        for &(l, w, h_u) in &self.forward[u as usize] {
            if let Some(list) = self.inverted.get(&(w, l)) {
                let eta_w = self.eta[w as usize];
                for &(v, h_v) in list {
                    if v != u {
                        *map.entry(v).or_insert(0.0) += h_u * h_v * eta_w;
                    }
                }
            }
        }
        SimRankScores::from_map(u, n, map)
    }

    fn index_size_bytes(&self) -> usize {
        // forward entry: 4 + 4 + 8; inverted entry: 4 + 8; η: 8 per node.
        let f: usize = self.forward.iter().map(|l| l.len() * 16).sum();
        let i: usize = self.inverted.values().map(|l| l.len() * 12 + 16).sum();
        f + i + self.eta.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::power_method;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x51165)
    }

    fn build(graph: prsim_graph::DiGraph, eps_a: f64) -> Sling {
        Sling::build(
            Arc::new(graph),
            SlingConfig {
                eps_a,
                eta_samples: 20_000,
                ..Default::default()
            },
            &mut rng(),
        )
    }

    #[test]
    fn eta_values_in_unit_interval() {
        let s = build(prsim_gen::toys::star_out(5), 0.01);
        for &e in s.eta() {
            assert!((0.0..=1.0).contains(&e));
        }
        // Leaves of star_out have a single in-neighbor (the hub): two
        // walks from a leaf meet iff both survive the first flip: c.
        assert!((s.eta()[1] - (1.0 - 0.6)).abs() < 0.02);
    }

    #[test]
    fn matches_power_method_on_small_graph() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(40, 4.0, 2.0, 14));
        let exact = power_method(&g, 0.6, 1e-10, 100);
        let s = build(g, 0.005);
        let mut r = rng();
        for u in [0u32, 7, 20] {
            let scores = s.single_source(u, &mut r);
            for v in 0..40u32 {
                let err = (scores.get(v) - exact.get(u, v)).abs();
                assert!(
                    err < 0.08,
                    "u={u} v={v}: sling {} vs exact {}",
                    scores.get(v),
                    exact.get(u, v)
                );
            }
        }
    }

    #[test]
    fn star_out_query() {
        let s = build(prsim_gen::toys::star_out(6), 0.005);
        let mut r = rng();
        let scores = s.single_source(1, &mut r);
        for v in 2..6u32 {
            assert!(
                (scores.get(v) - 0.6).abs() < 0.05,
                "s(1,{v}) = {}, want 0.6",
                scores.get(v)
            );
        }
    }

    #[test]
    fn smaller_eps_means_bigger_index() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(80, 5.0, 2.0, 3));
        let coarse = build(g.clone(), 0.1);
        let fine = build(g, 0.005);
        assert!(fine.entry_count() > coarse.entry_count());
        assert!(fine.index_size_bytes() > coarse.index_size_bytes());
    }

    #[test]
    fn preprocess_time_recorded() {
        let s = build(prsim_gen::toys::cycle(10), 0.05);
        assert!(s.preprocess_seconds > 0.0);
    }
}
