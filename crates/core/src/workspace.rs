//! Reusable dense scratch buffers for the query hot path.
//!
//! The dense structures here ([`DenseScratch`], [`StampedFlags`])
//! implement the same **epoch-stamping invariant**: a dense per-node
//! value buffer is paired with per-node generation stamps and a
//! monotonically increasing `epoch` counter. An entry is *live* if and
//! only if its stamp equals the current epoch; everything else is stale
//! garbage from earlier generations and is treated as absent. Starting a
//! new generation ([`DenseScratch::begin`]) therefore costs `O(touched)`
//! — just clearing the touched list and bumping the epoch — instead of
//! `O(n)` for zeroing the whole array, while reads and writes stay
//! `O(1)` with no hashing. When the epoch counter would wrap, the stamps
//! are zeroed once and the counter restarts, so a stale stamp can never
//! collide with a live epoch. (The backward-walk frontiers in
//! [`BackwardWorkspace`] are deliberately *not* dense: they hold a
//! handful of nodes per level, where reused coalesced vectors beat
//! n-sized arrays — see its docs.)
//!
//! The invariant has a corollary the engine relies on for determinism:
//! **a reused scratch behaves bit-identically to a fresh one**. Stale
//! values are unreachable (the stamp check masks them), the touched list
//! is rebuilt from scratch each generation, and accumulation order is
//! decided by the caller — so `Prsim` queries produce the same bits
//! whether a [`QueryWorkspace`] is fresh or has served a thousand
//! queries. `query::tests` and `tests/determinism.rs` assert this.
//!
//! [`QueryWorkspace`] bundles all scratch the single-source query needs:
//! the backward-walk frontiers, the per-round `ŝ_B` accumulator, the
//! final score accumulator, a stamped memo of `index.contains(w)`
//! verdicts, and reusable vectors for terminal observations, the
//! streamed index postings, and the median trick.

use prsim_graph::NodeId;

/// One dense slot: generation stamp + value, interleaved so a probe
/// costs a single cache line instead of one miss in a stamp array plus
/// one in a value array.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    stamp: u32,
    value: f64,
}

/// A dense epoch-stamped `NodeId -> f64` accumulator map.
///
/// Semantically a `HashMap<NodeId, f64>` restricted to keys `< n`, but
/// with `O(1)` unhashed access, `O(touched)` clearing and allocation-free
/// reuse across generations. See the module docs for the stamping
/// invariant.
#[derive(Clone, Debug, Default)]
pub struct DenseScratch {
    slots: Vec<Slot>,
    touched: Vec<NodeId>,
    /// Scratch for the radix sort in [`Self::sort_touched`].
    sort_buf: Vec<NodeId>,
    epoch: u32,
}

impl DenseScratch {
    /// Creates an empty scratch; buffers grow on first [`Self::begin`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new generation over `n` nodes: all entries become absent.
    /// `O(touched)` unless the buffers must grow (first use or larger
    /// graph) or the epoch counter wraps.
    pub fn begin(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, Slot::default());
        }
        if self.epoch == u32::MAX {
            self.slots.iter_mut().for_each(|s| s.stamp = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }

    /// Adds `delta` to the entry for `v`, creating it when absent.
    #[inline]
    pub fn add(&mut self, v: NodeId, delta: f64) {
        let slot = &mut self.slots[v as usize];
        if slot.stamp == self.epoch {
            slot.value += delta;
        } else {
            slot.stamp = self.epoch;
            slot.value = delta;
            self.touched.push(v);
        }
    }

    /// Folds one postings slice into the accumulator: `self[v] += scale·x`
    /// for parallel `nodes`/`values` arrays (the index gather loop, kept
    /// here so the scan stays monomorphic over the value width).
    #[inline]
    pub fn add_scaled(&mut self, nodes: &[NodeId], values: &[f64], scale: f64) {
        for (&v, &x) in nodes.iter().zip(values) {
            self.add(v, scale * x);
        }
    }

    /// [`DenseScratch::add_scaled`] over f32 values (quantized reserve
    /// arenas), widening each value before the multiply.
    #[inline]
    pub fn add_scaled_f32(&mut self, nodes: &[NodeId], values: &[f32], scale: f64) {
        for (&v, &x) in nodes.iter().zip(values) {
            self.add(v, scale * f64::from(x));
        }
    }

    /// Branchless sibling of [`Self::add_scaled`]: the fused query
    /// plan's postings fold. Instead of the stamp *branch* per entry,
    /// each lane runs straight-line code — an arithmetic select over the
    /// stamp comparison (`base = stale ? 0.0 : value`, a cmov/blend),
    /// unconditional value+stamp stores, and a branch-free conditional
    /// append to the touched list (`touched[len] = v; len += fresh`) —
    /// processed in a manual 8-lane unroll over the SoA run (`u32`
    /// nodes + reserves) so the multiplies pipeline without `std::simd`.
    /// The accumulated values and the touched list are **bit-identical**
    /// to a loop of [`Self::add`] calls: only control flow differs.
    /// (The prefetch hints this pairs with on the query path are
    /// `#[cfg(target_arch)]`-gated in `prsim_graph`; this scatter is
    /// portable straight-line Rust.)
    pub fn scatter_scaled(&mut self, nodes: &[NodeId], values: &[f64], scale: f64) {
        self.scatter_scaled_impl(nodes, values, scale, |x| x);
    }

    /// [`DenseScratch::scatter_scaled`] over f32 values (quantized
    /// reserve arenas), widening each value before the multiply.
    pub fn scatter_scaled_f32(&mut self, nodes: &[NodeId], values: &[f32], scale: f64) {
        self.scatter_scaled_impl(nodes, values, scale, f64::from);
    }

    #[inline]
    fn scatter_scaled_impl<T: Copy>(
        &mut self,
        nodes: &[NodeId],
        values: &[T],
        scale: f64,
        widen: impl Fn(T) -> f64 + Copy,
    ) {
        assert_eq!(nodes.len(), values.len(), "SoA run slices must parallel");
        let epoch = self.epoch;
        // Over-extend the touched list once, write every lane's id
        // unconditionally, advance the cursor only on fresh slots, and
        // truncate back. The zero-fill is one memset over the run; the
        // per-lane append is a predictable in-bounds store, no branch on
        // `fresh`.
        let old_len = self.touched.len();
        self.touched.resize(old_len + nodes.len(), 0);
        let mut len = old_len;
        let slots = &mut self.slots;
        let touched = &mut self.touched;
        #[inline(always)]
        fn lane<T: Copy>(
            slots: &mut [Slot],
            touched: &mut [NodeId],
            epoch: u32,
            len: &mut usize,
            (v, x): (NodeId, T),
            scale: f64,
            widen: impl Fn(T) -> f64,
        ) {
            let slot = &mut slots[v as usize];
            let fresh = slot.stamp != epoch;
            // Arithmetic select (no branch): a stale slot contributes 0.
            let base = if fresh { 0.0 } else { slot.value };
            slot.value = base + scale * widen(x);
            slot.stamp = epoch;
            // Branch-free append: always write, conditionally advance.
            touched[*len] = v;
            *len += fresh as usize;
        }
        // Slot probes are random against a dense array the hardware
        // prefetcher cannot predict, but the whole probe set is known up
        // front: sweep the run once issuing write-intent prefetches at
        // full rate (the probes are independent, so they overlap up to
        // the machine's miss parallelism), then run the read-modify-write
        // sweep over lines that are resident or already in flight. A
        // postings run (~hundreds of entries) fits L1 comfortably.
        for &v in nodes.iter() {
            prsim_graph::mem::prefetch_write(&*slots, v as usize);
        }
        let nodes_rem = nodes.chunks_exact(8).remainder();
        let values_rem = values.chunks_exact(8).remainder();
        for (nc, vc) in nodes.chunks_exact(8).zip(values.chunks_exact(8)) {
            // Manual 8-lane unroll: the fixed-trip inner loop unrolls
            // fully, so the eight scaled multiplies issue back to back.
            for k in 0..8 {
                lane(
                    slots,
                    touched,
                    epoch,
                    &mut len,
                    (nc[k], vc[k]),
                    scale,
                    widen,
                );
            }
        }
        for (&v, &x) in nodes_rem.iter().zip(values_rem) {
            lane(slots, touched, epoch, &mut len, (v, x), scale, widen);
        }
        self.touched.truncate(len);
    }

    /// Current value for `v` (0.0 when absent).
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        match self.slots.get(v as usize) {
            Some(slot) if slot.stamp == self.epoch => slot.value,
            _ => 0.0,
        }
    }

    /// Number of live entries in this generation.
    #[inline]
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// True when no entry is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// The nodes touched this generation, in insertion order (or sorted
    /// order after [`Self::sort_touched`]).
    #[inline]
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// Sorts the touched list by node id — used to fix the frontier
    /// iteration order (and hence RNG consumption) deterministically, and
    /// to hand sorted entries to [`crate::SimRankScores`]. LSD radix sort
    /// above a small cutoff (node ids cluster far below `u32::MAX`, so
    /// 2–3 byte passes beat comparison sorting), `sort_unstable` below.
    pub fn sort_touched(&mut self) {
        radix_sort_ids(&mut self.touched, &mut self.sort_buf);
    }

    /// Iterates live `(v, value)` pairs in touched-list order. The slot
    /// gather is random (touched order is id order, slots are dense), so
    /// each probe is issued a fixed distance ahead of its demand read.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        const PF_AHEAD: usize = 16;
        self.touched.iter().enumerate().map(move |(i, &v)| {
            if let Some(&ahead) = self.touched.get(i + PF_AHEAD) {
                prsim_graph::mem::prefetch_read(&self.slots, ahead as usize);
            }
            (v, self.slots[v as usize].value)
        })
    }

    /// Sorts the touched list and emits the live `(v, value)` entries
    /// into `out` in ascending id order — `sort_touched` plus the
    /// [`Self::iter`] gather, fused: the *final* radix pass scatters
    /// finished pairs straight into `out`, gathering each slot value as
    /// its id streams by (with the probe prefetched a fixed distance
    /// ahead), so the ids make one fewer trip through memory and the
    /// gather rides the pass that was already running. `out` is cleared
    /// first and reserved one entry beyond the live count (the caller's
    /// diagonal upsert); the touched list is left in unspecified order —
    /// this is the accumulator's terminal drain for the query.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(NodeId, f64)>) {
        const CUTOFF: usize = 96;
        const BITS: u32 = 11;
        const BUCKETS: usize = 1 << BITS;
        const PF_AHEAD: usize = 16;
        let len = self.touched.len();
        out.clear();
        out.reserve(len + 1);
        if len == 0 {
            return;
        }
        if len <= CUTOFF {
            self.touched.sort_unstable();
            out.extend(
                self.touched
                    .iter()
                    .map(|&v| (v, self.slots[v as usize].value)),
            );
            return;
        }
        let max = *self.touched.iter().max().expect("len > 0");
        let mut passes = 0u32;
        {
            let mut shift = 0u32;
            while shift < 32 && (max >> shift) > 0 {
                passes += 1;
                shift += BITS;
            }
        }
        // All but the last digit pass move ids alone (the usual LSD
        // ping-pong between `touched` and `sort_buf`).
        self.sort_buf.clear();
        self.sort_buf.resize(len, 0);
        let mut shift = 0u32;
        for _ in 1..passes {
            let mut counts = [0usize; BUCKETS + 1];
            for &x in self.touched.iter() {
                counts[((x >> shift) as usize & (BUCKETS - 1)) + 1] += 1;
            }
            for i in 1..=BUCKETS {
                counts[i] += counts[i - 1];
            }
            for &x in self.touched.iter() {
                let d = (x >> shift) as usize & (BUCKETS - 1);
                self.sort_buf[counts[d]] = x;
                counts[d] += 1;
            }
            std::mem::swap(&mut self.touched, &mut self.sort_buf);
            shift += BITS;
        }
        // Final pass: scatter `(id, value)` pairs into place.
        let mut counts = [0usize; BUCKETS + 1];
        for &x in self.touched.iter() {
            counts[((x >> shift) as usize & (BUCKETS - 1)) + 1] += 1;
        }
        for i in 1..=BUCKETS {
            counts[i] += counts[i - 1];
        }
        out.resize(len, (0, 0.0));
        for (i, &x) in self.touched.iter().enumerate() {
            if let Some(&ahead) = self.touched.get(i + PF_AHEAD) {
                prsim_graph::mem::prefetch_read(&self.slots, ahead as usize);
            }
            let d = (x >> shift) as usize & (BUCKETS - 1);
            out[counts[d]] = (x, self.slots[x as usize].value);
            counts[d] += 1;
        }
    }

    #[cfg(test)]
    fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// LSD radix sort of node ids in 11-bit digits, using `tmp` as the
/// ping-pong buffer. Stable (irrelevant for ids, but cheap) and
/// `O(passes · len)` with `passes = ⌈significant bits / 11⌉` of the
/// maximum id — two passes for any graph under 4M nodes.
fn radix_sort_ids(data: &mut Vec<NodeId>, tmp: &mut Vec<NodeId>) {
    const CUTOFF: usize = 96;
    const BITS: u32 = 11;
    const BUCKETS: usize = 1 << BITS;
    if data.len() <= CUTOFF {
        data.sort_unstable();
        return;
    }
    let max = *data.iter().max().expect("len > cutoff");
    tmp.clear();
    tmp.resize(data.len(), 0);
    let mut shift = 0u32;
    // `shift < 32` guards the u32 shift itself: ids >= 2^22 need a third
    // pass whose *termination check* would otherwise shift by 33.
    while shift < 32 && (max >> shift) > 0 {
        let mut counts = [0usize; BUCKETS + 1];
        for &x in data.iter() {
            counts[((x >> shift) as usize & (BUCKETS - 1)) + 1] += 1;
        }
        for i in 1..=BUCKETS {
            counts[i] += counts[i - 1];
        }
        for &x in data.iter() {
            let d = (x >> shift) as usize & (BUCKETS - 1);
            tmp[counts[d]] = x;
            counts[d] += 1;
        }
        std::mem::swap(data, tmp);
        shift += BITS;
    }
}

/// LSD radix sort of `(node, value)` pairs by node id in 11-bit digits,
/// using `tmp` as the ping-pong buffer — the pair-payload sibling of
/// [`radix_sort_ids`]. **Stable**: pairs with equal node ids keep their
/// input (append) order, which is what makes downstream coalescing sum
/// duplicates chronologically and hence deterministically.
pub(crate) fn radix_sort_pairs(data: &mut Vec<(NodeId, f64)>, tmp: &mut Vec<(NodeId, f64)>) {
    const CUTOFF: usize = 96;
    const BITS: u32 = 11;
    const BUCKETS: usize = 1 << BITS;
    if data.len() <= CUTOFF {
        // Insertion-style stability at small sizes: sort_by_key is stable.
        data.sort_by_key(|&(v, _)| v);
        return;
    }
    let max = data.iter().map(|&(v, _)| v).max().expect("len > cutoff");
    tmp.clear();
    tmp.resize(data.len(), (0, 0.0));
    let mut shift = 0u32;
    while shift < 32 && (max >> shift) > 0 {
        let mut counts = [0usize; BUCKETS + 1];
        for &(v, _) in data.iter() {
            counts[((v >> shift) as usize & (BUCKETS - 1)) + 1] += 1;
        }
        for i in 1..=BUCKETS {
            counts[i] += counts[i - 1];
        }
        for &pair in data.iter() {
            let d = (pair.0 >> shift) as usize & (BUCKETS - 1);
            tmp[counts[d]] = pair;
            counts[d] += 1;
        }
        std::mem::swap(data, tmp);
        shift += BITS;
    }
}

/// A dense epoch-stamped memo of per-node boolean verdicts (used to cache
/// `index.contains(w)` across the samples of one query). Stamp and flag
/// share one word per node — `slot >> 1` is the stamp, `slot & 1` the
/// verdict — so a probe is a single load.
#[derive(Clone, Debug, Default)]
pub struct StampedFlags {
    slots: Vec<u32>,
    epoch: u32,
}

impl StampedFlags {
    const MAX_EPOCH: u32 = u32::MAX >> 1;

    /// Starts a new generation over `n` nodes: all memos become absent.
    pub fn begin(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, 0);
        }
        if self.epoch == Self::MAX_EPOCH {
            self.slots.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Hints the CPU to pull `v`'s memo line toward L1 ahead of its
    /// [`Self::get_or_insert_with`] probe (draw-free, result-free).
    #[inline]
    pub fn prefetch(&self, v: NodeId) {
        prsim_graph::mem::prefetch_write(&self.slots, v as usize);
    }

    /// Returns the memoized verdict for `v`, computing it with `f` on the
    /// first lookup of this generation.
    #[inline]
    pub fn get_or_insert_with<F: FnOnce() -> bool>(&mut self, v: NodeId, f: F) -> bool {
        let slot = &mut self.slots[v as usize];
        if *slot >> 1 != self.epoch {
            *slot = (self.epoch << 1) | f() as u32;
        }
        *slot & 1 == 1
    }
}

/// Scratch for one backward walk: the current and next level frontiers.
///
/// Backward-walk frontiers hold a handful of nodes per level (the
/// expected total cost is `O(n·π(w))`, a few neighbor visits for a
/// typical non-hub `w`), so they are represented as reused *coalesced
/// sorted vectors* rather than n-sized dense arrays: appends and the
/// per-level sort-and-merge stay L1-resident, where an n-sized scratch
/// would pay a cache miss per probe. `cur` is always sorted by node id
/// with unique keys — that fixes the RNG-consumption order — and
/// coalescing sums duplicate appends left-to-right (chronologically),
/// which keeps the float accumulation order, and therefore every
/// estimate, bit-identical to a dense per-node accumulator.
#[derive(Clone, Debug, Default)]
pub struct BackwardWorkspace {
    /// Current frontier: sorted by node id, unique.
    pub(crate) cur: Vec<(NodeId, f64)>,
    /// Next-level append log; coalesced into `cur` at each level end.
    pub(crate) next: Vec<(NodeId, f64)>,
}

impl BackwardWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorts the append log and merges duplicate node ids (summing their
    /// deltas in append order), leaving the result in `cur`.
    pub(crate) fn coalesce_next_into_cur(&mut self) {
        // Stable sort: equal ids keep append (chronological) order.
        // Typical backward-walk frontiers hold a handful of entries, where
        // `sort_by_key`'s merge-sort buffer allocation dwarfs the sort
        // itself — insertion sort (also stable) is allocation-free and
        // faster until well past the frontier sizes walks produce.
        if self.next.len() <= 32 {
            for i in 1..self.next.len() {
                let mut j = i;
                while j > 0 && self.next[j - 1].0 > self.next[j].0 {
                    self.next.swap(j - 1, j);
                    j -= 1;
                }
            }
        } else {
            self.next.sort_by_key(|&(v, _)| v);
        }
        self.cur.clear();
        for &(v, delta) in &self.next {
            match self.cur.last_mut() {
                Some(last) if last.0 == v => last.1 += delta,
                _ => self.cur.push((v, delta)),
            }
        }
        self.next.clear();
    }
}

/// All scratch state one thread needs to answer single-source queries
/// without per-query allocation.
///
/// Create once (per thread), pass to the `*_with_workspace` query
/// variants, reuse forever. Results are bit-identical to using a fresh
/// workspace per query (see the module docs), so reuse is purely a
/// performance decision.
#[derive(Clone, Debug, Default)]
pub struct QueryWorkspace {
    /// Backward-walk frontiers (Algorithms 2/3).
    pub(crate) backward: BackwardWorkspace,
    /// Per-round `ŝ_B` accumulator (Algorithm 4 line 13).
    pub(crate) round: DenseScratch,
    /// Final score accumulator (`ŝ_I + ŝ_B` assembly).
    pub(crate) acc: DenseScratch,
    /// Memoized `index.contains(w)` verdicts for this query.
    pub(crate) hub_memo: StampedFlags,
    /// Raw `(w, ℓ)` terminal observations; sorted + run-length counted
    /// into `η̂π` at the end of the sampling phase.
    pub(crate) terminals: Vec<(NodeId, u32)>,
    /// One round's terminal draws (interleaved sampling output).
    pub(crate) term_buf: Vec<(NodeId, u32)>,
    /// Pair-walk start nodes for the η rejection test.
    pub(crate) pair_buf: Vec<(NodeId, NodeId)>,
    /// Pair-meeting verdicts aligned with `pair_buf`.
    pub(crate) met_buf: Vec<bool>,
    /// Flattened `(v, ŝ_B^i(v))` entries across rounds (median trick).
    pub(crate) round_entries: Vec<(NodeId, f64)>,
    /// Per-node value buffer for the median computation.
    pub(crate) median_buf: Vec<f64>,
    /// Scaled index postings of the accepted hub terminals, gathered
    /// sequentially and then radix-sorted + coalesced by node — the
    /// scatter-free `ŝ_I` path.
    pub(crate) ix_buf: Vec<(NodeId, f64)>,
    /// Ping-pong buffer for the radix sort of `ix_buf`.
    pub(crate) ix_tmp: Vec<(NodeId, f64)>,
    /// Scaled backward-walk estimates, streamed flat and radix-coalesced
    /// by node — the scatter-free `ŝ_B` path on large graphs (the `ŝ_I`
    /// strategy applied to the backward fold).
    pub(crate) bw_buf: Vec<(NodeId, f64)>,
    /// Frontier + radix scratch of the sorted-wavefront walk kernels.
    pub(crate) wave: crate::walk::WaveScratch,
    /// Per-query consumption cursors over the terminal-sample cache.
    pub(crate) cache_cursors: crate::walkcache::CacheCursors,
    /// Positions (into `term_buf`) of terminals whose η test runs live.
    pub(crate) pair_idx: Vec<u32>,
    /// Verdicts of the live pair batch, aligned with `pair_buf`.
    pub(crate) pair_met: Vec<bool>,
    /// One round's resolved `(w, ℓ, met)` samples — the walk phase's
    /// unified output across the interleaved and wavefront kernels.
    pub(crate) sample_buf: Vec<(NodeId, u32, bool)>,
    /// Decode buffers for postings served out of a paged arena's buffer
    /// pool ([`crate::PrsimIndex::postings_in`]); unused (and unsized)
    /// while the arena is resident.
    pub(crate) pages: crate::paging::PostingsScratch,
}

impl QueryWorkspace {
    /// Creates an empty workspace; buffers grow to the graph size on the
    /// first query.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_until_added_and_cleared_by_begin() {
        let mut s = DenseScratch::new();
        s.begin(4);
        assert_eq!(s.get(2), 0.0);
        assert!(s.is_empty());
        s.add(2, 1.5);
        s.add(2, 0.5);
        s.add(0, 1.0);
        assert_eq!(s.get(2), 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.touched(), &[2, 0]);
        s.sort_touched();
        assert_eq!(s.touched(), &[0, 2]);

        s.begin(4);
        assert_eq!(s.get(2), 0.0, "stale value must be masked by the stamp");
        assert!(s.is_empty());
        s.add(2, 7.0);
        assert_eq!(s.get(2), 7.0, "stale value must not leak into a new add");
    }

    #[test]
    fn add_scaled_matches_scalar_adds() {
        let nodes = [4u32, 1, 4, 0];
        let wide = [0.5f64, 2.0, 1.5, 3.0];
        let narrow: Vec<f32> = wide.iter().map(|&x| x as f32).collect();
        let mut a = DenseScratch::new();
        a.begin(8);
        a.add_scaled(&nodes, &wide, 2.0);
        let mut b = DenseScratch::new();
        b.begin(8);
        for (&v, &x) in nodes.iter().zip(&wide) {
            b.add(v, 2.0 * x);
        }
        for v in 0..8 {
            assert_eq!(a.get(v), b.get(v));
        }
        let mut c = DenseScratch::new();
        c.begin(8);
        c.add_scaled_f32(&nodes, &narrow, 2.0);
        for v in 0..8 {
            assert_eq!(c.get(v), b.get(v), "f32 values widen exactly here");
        }
    }

    #[test]
    fn scatter_scaled_is_bit_identical_to_scalar_adds() {
        // The branchless unrolled scatter must produce the exact bits of
        // the naive add loop — same per-slot addition order — including
        // duplicate ids inside one batch (lane N must see lane N−1's
        // write) and re-touches across batches.
        let nodes: Vec<NodeId> = (0..57u32)
            .map(|i| (i.wrapping_mul(2654435761)) % 40)
            .collect();
        let wide: Vec<f64> = (0..57).map(|i| 0.125 * (i as f64) - 3.0).collect();
        let narrow: Vec<f32> = wide.iter().map(|&x| x as f32).collect();
        let mut a = DenseScratch::new();
        let mut b = DenseScratch::new();
        a.begin(64);
        b.begin(64);
        a.scatter_scaled(&nodes, &wide, 1.75);
        for (&v, &x) in nodes.iter().zip(&wide) {
            b.add(v, 1.75 * x);
        }
        // Second batch overlapping the first: stamps are already set.
        a.scatter_scaled(&nodes[..16], &wide[..16], -0.5);
        for (&v, &x) in nodes[..16].iter().zip(&wide[..16]) {
            b.add(v, -0.5 * x);
        }
        assert_eq!(a.len(), b.len(), "touched dedup must match");
        for v in 0..64 {
            assert!(a.get(v).to_bits() == b.get(v).to_bits(), "slot {v}");
        }
        let mut c = DenseScratch::new();
        c.begin(64);
        c.scatter_scaled_f32(&nodes, &narrow, 1.75);
        let mut d = DenseScratch::new();
        d.begin(64);
        for (&v, &x) in nodes.iter().zip(&narrow) {
            d.add(v, 1.75 * f64::from(x));
        }
        for v in 0..64 {
            assert!(c.get(v).to_bits() == d.get(v).to_bits(), "f32 slot {v}");
        }
    }

    #[test]
    fn drain_sorted_matches_sort_then_gather() {
        // Small (insertion-sorted), medium and large (multi-pass radix
        // with the fused gather in the last pass) touched sets.
        for len in [5usize, 90, 97, 700, 6000] {
            let mut a = DenseScratch::new();
            let mut b = DenseScratch::new();
            let n = 1 << 23; // ids above 2^22 exercise the shift bound
            a.begin(n);
            b.begin(n);
            for i in 0..len {
                let v = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 41) as NodeId;
                let x = i as f64 * 0.25 - 1.0;
                a.add(v, x);
                b.add(v, x);
            }
            let mut fused = Vec::new();
            a.drain_sorted_into(&mut fused);
            b.sort_touched();
            let plain: Vec<(NodeId, f64)> = b.iter().collect();
            assert_eq!(fused, plain, "len {len}");
            // The drain consumes the touched list but leaves the scratch
            // reusable: the next begin must start clean.
            a.begin(8);
            assert!(a.is_empty());
            a.add(3, 1.0);
            assert_eq!(a.get(3), 1.0);
        }
    }

    #[test]
    fn grows_to_larger_graphs() {
        let mut s = DenseScratch::new();
        s.begin(2);
        s.add(1, 1.0);
        s.begin(10);
        assert_eq!(s.get(9), 0.0);
        s.add(9, 3.0);
        assert_eq!(s.get(9), 3.0);
        assert_eq!(s.get(1), 0.0);
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut s = DenseScratch::new();
        s.begin(3);
        s.add(1, 42.0);
        // Force the counter to the wrap point; the stale stamp at node 1
        // (u32::MAX after the next begin would collide) must be cleared.
        s.force_epoch(u32::MAX);
        s.begin(3);
        assert_eq!(s.get(1), 0.0, "wrapped epoch must not resurrect entries");
        s.add(2, 1.0);
        assert_eq!(s.get(2), 1.0);
    }

    #[test]
    fn iter_yields_touched_pairs() {
        let mut s = DenseScratch::new();
        s.begin(5);
        s.add(3, 0.25);
        s.add(1, 0.75);
        s.sort_touched();
        let pairs: Vec<(NodeId, f64)> = s.iter().collect();
        assert_eq!(pairs, vec![(1, 0.75), (3, 0.25)]);
    }

    #[test]
    fn radix_sort_matches_std_sort() {
        // Deterministic pseudo-random ids spanning several byte digits,
        // above and below the radix cutoff.
        for len in [3usize, 95, 96, 97, 1000, 6000] {
            let mut data: Vec<NodeId> = (0..len)
                .map(|i| {
                    let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    // Full u32 range: exercises all three digit passes and
                    // the shift-bound guard (ids >= 2^22).
                    (x >> 13) as NodeId
                })
                .collect();
            let mut want = data.clone();
            want.sort_unstable();
            let mut tmp = Vec::new();
            radix_sort_ids(&mut data, &mut tmp);
            assert_eq!(data, want, "len {len}");
        }
        let mut empty: Vec<NodeId> = Vec::new();
        radix_sort_ids(&mut empty, &mut Vec::new());
        assert!(empty.is_empty());
        // All-zero ids: the while loop never runs, already sorted.
        let mut zeros = vec![0 as NodeId; 200];
        radix_sort_ids(&mut zeros, &mut Vec::new());
        assert_eq!(zeros, vec![0; 200]);
    }

    #[test]
    fn stamped_flags_memoize_per_generation() {
        let mut f = StampedFlags::default();
        f.begin(3);
        let mut calls = 0;
        assert!(f.get_or_insert_with(1, || {
            calls += 1;
            true
        }));
        assert!(f.get_or_insert_with(1, || {
            calls += 1;
            false // must not be called, let alone believed
        }));
        assert_eq!(calls, 1);
        f.begin(3);
        assert!(!f.get_or_insert_with(1, || false), "new generation re-asks");
    }
}
