//! Configuration of the PRSim engine.

use crate::index::ReservePrecision;
use crate::PrsimError;

/// How many hub nodes `j₀` to index (paper §3.3).
///
/// Hubs are the nodes with the largest reverse PageRank; the index stores
/// the full level-wise backward-search result for each hub, so `j₀` trades
/// index size and preprocessing time against query time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HubCount {
    /// `j₀ = ⌈√n⌉` — the setting used throughout the paper's experiments.
    SqrtN,
    /// An explicit hub count (clamped to `n`). `Fixed(0)` makes PRSim
    /// index-free.
    Fixed(usize),
    /// `j₀ = n·(ε·d̄)^{γ/(γ−1)}` for the given γ — the theoretical setting
    /// of Theorem 3.12 that bounds the index by `O(m)`.
    TheoremBound {
        /// Cumulative out-degree power-law exponent γ of the graph.
        gamma: f64,
    },
}

impl HubCount {
    /// Resolves the policy to a concrete `j₀ ≤ n`.
    pub fn resolve(&self, n: usize, avg_degree: f64, eps: f64) -> usize {
        match *self {
            HubCount::SqrtN => (n as f64).sqrt().ceil() as usize,
            HubCount::Fixed(j0) => j0.min(n),
            HubCount::TheoremBound { gamma } => {
                if gamma <= 1.0 {
                    return 0;
                }
                let x = (eps * avg_degree).min(1.0);
                let j0 = n as f64 * x.powf(gamma / (gamma - 1.0));
                (j0.ceil() as usize).min(n)
            }
        }
    }
}

/// Execution strategy of the single-source query back half (per-terminal
/// backward walks + `ŝ_I`/`ŝ_B` aggregation).
///
/// Both plans draw **the same RNG stream** — the walk phase, the
/// per-terminal VBBW coins and the tail draws are consumed in the same
/// order — so their estimates agree to float-reassociation accuracy
/// (the fused plan folds each backward walk's final level and the
/// postings runs directly into the dense accumulator instead of
/// materializing sorted intermediates, which reorders *additions of the
/// same addends* but nothing else). `tests/dynamic_differential.rs`
/// pins the two plans together at `1e-9` across update streams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueryPlan {
    /// Fused while the postings arena is memory-resident (always, until
    /// the out-of-core buffer manager lands), reference otherwise.
    #[default]
    Auto,
    /// Force the fused plan: per-terminal VBBW folded straight into the
    /// query accumulator, branchless scatter over the postings runs, no
    /// intermediate sorted buffers.
    Fused,
    /// Force the phase-separated pipeline (materialized backward
    /// estimates, streamed postings, radix sort + coalesce + merge) —
    /// the reference implementation the fused plan is differenced
    /// against.
    Reference,
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QueryPlan::Auto => "auto",
            QueryPlan::Fused => "fused",
            QueryPlan::Reference => "reference",
        })
    }
}

/// Full PRSim configuration: decay factor, accuracy target and index policy.
#[derive(Clone, Debug)]
pub struct PrsimConfig {
    /// SimRank decay factor `c ∈ (0,1)`; the paper (and most of the
    /// literature) uses 0.6.
    pub c: f64,
    /// Additive error target ε.
    pub eps: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Hub-count policy for the index.
    pub hubs: HubCount,
    /// Hard cap on walk length / backward-search depth. Survival beyond
    /// level L has probability `c^{L/2}`; the default 64 truncates below
    /// 1e-7 of the mass for c = 0.6.
    pub max_level: usize,
    /// Query-phase sampling parameters.
    pub query: QueryParams,
    /// Number of threads used to build the index (hubs are independent).
    pub build_threads: usize,
    /// Storage width of index reserves. [`ReservePrecision::F32`] shrinks
    /// the postings arena by a third (8 instead of 12 bytes per entry);
    /// the per-entry quantization error (relative ≤ 2⁻²⁴) is charged
    /// against the `eps` budget, so [`PrsimConfig::validate`] rejects the
    /// combination with an `eps` small enough for that charge to matter.
    pub reserve_precision: ReservePrecision,
    /// Number of top-reverse-PageRank nodes whose √c-walk terminal
    /// distributions (and η-pair verdicts) are **pre-sampled** into the
    /// walk-engine cache ([`crate::walkcache::WalkCache`]); `0` disables
    /// the cache entirely. Queries consume the pre-drawn samples through
    /// without-replacement cursors with a per-query random rotation, so
    /// every single answer remains an honest Monte-Carlo estimate —
    /// what the cache trades away is *independence between answers*
    /// (repeated queries share pool samples; see the `walkcache` module
    /// docs for the correlation caveat). CLI: `--walk-cache N` /
    /// `--no-walk-cache`. Validated against
    /// [`PrsimConfig::MAX_WALK_CACHE_BUDGET`].
    pub walk_cache_budget: usize,
    /// Query back-half execution plan (see [`QueryPlan`]). `Auto`
    /// resolves per engine via [`crate::Prsim::query_plan`].
    pub plan: QueryPlan,
}

impl Default for PrsimConfig {
    fn default() -> Self {
        PrsimConfig {
            c: 0.6,
            eps: 0.05,
            delta: 1e-4,
            hubs: HubCount::SqrtN,
            max_level: 64,
            query: QueryParams::Practical { c_mult: 3.0 },
            build_threads: 4,
            reserve_precision: ReservePrecision::F64,
            walk_cache_budget: 256,
            plan: QueryPlan::Auto,
        }
    }
}

/// Sample-count policy for the query phase (Algorithm 4).
///
/// The paper sets `d_r = c₁/ε²` with `c₁ = 12/(1−√c)²` and
/// `f_r = 3·log(n/δ)` rounds for the median trick. Those constants are
/// chosen to make the Chernoff/Chebyshev proofs go through verbatim and
/// are far larger than needed in practice; the authors' released code also
/// scales them down. `Practical` reproduces that: `d_r = c_mult/ε²`,
/// `f_r = 1` (recorded per experiment in EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryParams {
    /// Paper constants: `d_r = 12/((1−√c)²ε²)`, `f_r = 3·log(n/δ)`.
    Paper,
    /// Practical constants: `d_r = c_mult/ε²`, `f_r = 1`.
    Practical {
        /// Multiplier in `d_r = c_mult / ε²`.
        c_mult: f64,
    },
    /// Fully explicit sample counts.
    Explicit {
        /// Samples per round.
        dr: usize,
        /// Median-trick rounds.
        fr: usize,
    },
}

impl QueryParams {
    /// Resolves the policy into `(d_r, f_r)` for the given graph size and
    /// accuracy targets.
    pub fn resolve(&self, n: usize, c: f64, eps: f64, delta: f64) -> (usize, usize) {
        match *self {
            QueryParams::Paper => {
                let c1 = 12.0 / (1.0 - c.sqrt()).powi(2);
                let dr = (c1 / (eps * eps)).ceil() as usize;
                let fr = (3.0 * ((n.max(2) as f64) / delta).ln()).ceil() as usize;
                (dr.max(1), fr.max(1))
            }
            QueryParams::Practical { c_mult } => {
                let dr = (c_mult / (eps * eps)).ceil() as usize;
                (dr.max(1), 1)
            }
            QueryParams::Explicit { dr, fr } => (dr.max(1), fr.max(1)),
        }
    }
}

/// Tuning knobs of the incremental dynamic engine
/// ([`crate::DynamicPrsim`] in `Incremental` mode).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynamicParams {
    /// Overlay size (pending inserts + deletes) at which the
    /// [`prsim_graph::DeltaGraph`] folds the overlay into its CSR base.
    pub compact_threshold: usize,
    /// Accumulated L1 reverse-PageRank drift that triggers a full rebuild
    /// (hub re-selection). Drift affects only *query efficiency* — hub
    /// reserve lists are kept exact by repair regardless — so this trades
    /// hub-set optimality against rebuild frequency.
    pub drift_budget: f64,
    /// Residual tolerance of the warm-start PageRank refinement.
    pub pr_tol: f64,
    /// Iteration cap of one refinement (safety net; with warm starts the
    /// contraction reaches `pr_tol` in far fewer).
    pub pr_max_iter: usize,
}

impl Default for DynamicParams {
    fn default() -> Self {
        DynamicParams {
            compact_threshold: 1024,
            drift_budget: 0.05,
            // π only ranks hub candidates; 1e-8 L1 residual is orders of
            // magnitude below any ranking-relevant gap while halving the
            // per-update refinement iterations vs a 1e-9 target.
            pr_tol: 1e-8,
            pr_max_iter: 128,
        }
    }
}

impl DynamicParams {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), PrsimError> {
        if self.compact_threshold == 0 {
            return Err(PrsimError::InvalidConfig(
                "compact_threshold must be at least 1".into(),
            ));
        }
        if !(self.drift_budget > 0.0 && self.drift_budget.is_finite()) {
            return Err(PrsimError::InvalidConfig(format!(
                "drift_budget must be positive and finite, got {}",
                self.drift_budget
            )));
        }
        if !(self.pr_tol > 0.0 && self.pr_tol.is_finite()) {
            return Err(PrsimError::InvalidConfig(format!(
                "pr_tol must be positive and finite, got {}",
                self.pr_tol
            )));
        }
        if self.pr_max_iter == 0 {
            return Err(PrsimError::InvalidConfig(
                "pr_max_iter must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Rejects [`ReservePrecision::F32`] when the quantization error cannot
/// hide inside the `eps` budget. Each stored reserve carries relative
/// rounding error ≤ 2⁻²⁴, and the index part of a score sums to at most
/// `1/α²` of raw reserve mass (`α = 1−√c`), so the worst-case score
/// perturbation is `2⁻²⁴/α²` — a bound that *grows with `c`*. Requiring
/// a 16x margin below `eps` keeps the charge negligible at any decay.
/// Shared by [`PrsimConfig::validate`] and the index-loading path
/// (`Prsim::from_parts`), so a deserialized f32 index cannot bypass it.
pub(crate) fn validate_reserve_precision(
    precision: ReservePrecision,
    eps: f64,
    c: f64,
) -> Result<(), PrsimError> {
    if precision == ReservePrecision::F64 {
        return Ok(());
    }
    let alpha = 1.0 - c.sqrt();
    let quantization = (0.5f64).powi(24) / (alpha * alpha);
    if eps < 16.0 * quantization {
        return Err(PrsimError::InvalidConfig(format!(
            "f32 reserves need eps >= {:.2e} at c = {c} (score perturbation bound \
             2^-24/(1-sqrt(c))^2 = {:.2e} must stay 16x below eps), got eps = {eps}",
            16.0 * quantization,
            quantization
        )));
    }
    Ok(())
}

impl PrsimConfig {
    /// Ceiling on [`PrsimConfig::walk_cache_budget`]: beyond ~4M cached
    /// nodes the pool arena and invalidation masks dwarf the index
    /// itself, so larger values are almost certainly a units mistake.
    pub const MAX_WALK_CACHE_BUDGET: usize = 1 << 22;

    /// √c, the per-step survival probability of the reverse walks.
    #[inline]
    pub fn sqrt_c(&self) -> f64 {
        self.c.sqrt()
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), PrsimError> {
        if !(self.c > 0.0 && self.c < 1.0) {
            return Err(PrsimError::InvalidConfig(format!(
                "decay factor c must lie in (0,1), got {}",
                self.c
            )));
        }
        if !(self.eps > 0.0 && self.eps <= 1.0) {
            return Err(PrsimError::InvalidConfig(format!(
                "error target eps must lie in (0,1], got {}",
                self.eps
            )));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(PrsimError::InvalidConfig(format!(
                "failure probability delta must lie in (0,1), got {}",
                self.delta
            )));
        }
        if self.max_level == 0 {
            return Err(PrsimError::InvalidConfig(
                "max_level must be at least 1".into(),
            ));
        }
        if self.build_threads == 0 {
            return Err(PrsimError::InvalidConfig(
                "build_threads must be at least 1".into(),
            ));
        }
        if self.walk_cache_budget > Self::MAX_WALK_CACHE_BUDGET {
            return Err(PrsimError::InvalidConfig(format!(
                "walk_cache_budget {} exceeds the ceiling {} (use 0 to disable the cache)",
                self.walk_cache_budget,
                Self::MAX_WALK_CACHE_BUDGET
            )));
        }
        validate_reserve_precision(self.reserve_precision, self.eps, self.c)?;
        Ok(())
    }

    /// The residue threshold `r_max = (1−√c)²·ε / 12` of Algorithm 1.
    #[inline]
    pub fn r_max(&self) -> f64 {
        (1.0 - self.sqrt_c()).powi(2) * self.eps / 12.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        PrsimConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_ranges() {
        for (field, cfg) in [
            (
                "c=0",
                PrsimConfig {
                    c: 0.0,
                    ..Default::default()
                },
            ),
            (
                "c=1",
                PrsimConfig {
                    c: 1.0,
                    ..Default::default()
                },
            ),
            (
                "eps=0",
                PrsimConfig {
                    eps: 0.0,
                    ..Default::default()
                },
            ),
            (
                "delta=0",
                PrsimConfig {
                    delta: 0.0,
                    ..Default::default()
                },
            ),
            (
                "max_level=0",
                PrsimConfig {
                    max_level: 0,
                    ..Default::default()
                },
            ),
            (
                "threads=0",
                PrsimConfig {
                    build_threads: 0,
                    ..Default::default()
                },
            ),
            (
                "walk_cache_budget over ceiling",
                PrsimConfig {
                    walk_cache_budget: PrsimConfig::MAX_WALK_CACHE_BUDGET + 1,
                    ..Default::default()
                },
            ),
        ] {
            assert!(cfg.validate().is_err(), "{field} accepted");
        }
    }

    #[test]
    fn walk_cache_budget_bounds() {
        // 0 (disabled) and the ceiling itself are both valid.
        PrsimConfig {
            walk_cache_budget: 0,
            ..Default::default()
        }
        .validate()
        .unwrap();
        PrsimConfig {
            walk_cache_budget: PrsimConfig::MAX_WALK_CACHE_BUDGET,
            ..Default::default()
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn dynamic_params_validate() {
        DynamicParams::default().validate().unwrap();
        for (field, p) in [
            (
                "threshold=0",
                DynamicParams {
                    compact_threshold: 0,
                    ..Default::default()
                },
            ),
            (
                "budget=0",
                DynamicParams {
                    drift_budget: 0.0,
                    ..Default::default()
                },
            ),
            (
                "tol=0",
                DynamicParams {
                    pr_tol: 0.0,
                    ..Default::default()
                },
            ),
            (
                "iters=0",
                DynamicParams {
                    pr_max_iter: 0,
                    ..Default::default()
                },
            ),
        ] {
            assert!(p.validate().is_err(), "{field} accepted");
        }
    }

    #[test]
    fn f32_reserves_require_room_in_eps() {
        let ok = PrsimConfig {
            reserve_precision: ReservePrecision::F32,
            ..Default::default()
        };
        ok.validate().unwrap();
        let bad = PrsimConfig {
            reserve_precision: ReservePrecision::F32,
            eps: 1e-6,
            ..Default::default()
        };
        assert!(bad.validate().is_err(), "eps below the quantization floor");
        // The same eps is fine at full precision.
        let wide = PrsimConfig {
            eps: 1e-6,
            ..Default::default()
        };
        wide.validate().unwrap();
        // The floor is c-dependent: the 2^-24/(1-sqrt(c))^2 perturbation
        // bound blows up as c -> 1, so an eps that passes at c = 0.6 must
        // be rejected at c = 0.99.
        let large_c = PrsimConfig {
            reserve_precision: ReservePrecision::F32,
            c: 0.99,
            eps: 1e-3,
            ..Default::default()
        };
        assert!(large_c.validate().is_err(), "c = 0.99 amplifies the bound");
        let large_c_wide_eps = PrsimConfig {
            reserve_precision: ReservePrecision::F32,
            c: 0.99,
            eps: 0.5,
            ..Default::default()
        };
        large_c_wide_eps.validate().unwrap();
    }

    #[test]
    fn hub_count_policies() {
        assert_eq!(HubCount::SqrtN.resolve(100, 10.0, 0.1), 10);
        assert_eq!(HubCount::Fixed(5).resolve(100, 10.0, 0.1), 5);
        assert_eq!(HubCount::Fixed(500).resolve(100, 10.0, 0.1), 100);
        // Theorem bound: j0 = n (eps·d̄)^{γ/(γ−1)}; γ=2, eps·d̄=0.5 -> n/4.
        let j0 = HubCount::TheoremBound { gamma: 2.0 }.resolve(1000, 5.0, 0.1);
        assert_eq!(j0, 250);
        // γ <= 1 means index-free.
        assert_eq!(
            HubCount::TheoremBound { gamma: 1.0 }.resolve(1000, 5.0, 0.1),
            0
        );
    }

    #[test]
    fn query_params_resolve() {
        let (dr, fr) = QueryParams::Paper.resolve(1000, 0.6, 0.1, 1e-4);
        let c1 = 12.0 / (1.0f64 - 0.6f64.sqrt()).powi(2);
        assert_eq!(dr, (c1 / 0.01).ceil() as usize);
        assert!(fr >= 3);

        let (dr, fr) = QueryParams::Practical { c_mult: 3.0 }.resolve(1000, 0.6, 0.1, 1e-4);
        assert_eq!(dr, 300);
        assert_eq!(fr, 1);

        let (dr, fr) = QueryParams::Explicit { dr: 7, fr: 0 }.resolve(1000, 0.6, 0.1, 1e-4);
        assert_eq!((dr, fr), (7, 1));
    }

    #[test]
    fn r_max_matches_formula() {
        let cfg = PrsimConfig {
            c: 0.6,
            eps: 0.12,
            ..Default::default()
        };
        let want = (1.0 - 0.6f64.sqrt()).powi(2) * 0.12 / 12.0;
        assert!((cfg.r_max() - want).abs() < 1e-15);
    }
}
