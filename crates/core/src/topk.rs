//! Adaptive top-k single-source queries.
//!
//! The paper evaluates top-k answers by thresholding a full single-source
//! run at a fixed ε. For interactive use a better contract is *adaptive
//! sampling*: start cheap, double the sample budget until the top-k set
//! stabilizes between consecutive rounds, and report how much work was
//! spent. Power-law graphs usually converge after one or two rounds
//! because the top scores separate early; adversarial near-ties are
//! cut off by the budget cap.

use prsim_graph::NodeId;
use rand::Rng;

use crate::query::Prsim;
use crate::scores::SimRankScores;
use crate::PrsimError;

/// Result of an adaptive top-k query.
#[derive(Clone, Debug)]
pub struct TopKResult {
    /// The top-k nodes with their estimates, descending.
    pub entries: Vec<(NodeId, f64)>,
    /// The full score vector from the final (largest) round.
    pub scores: SimRankScores,
    /// Total √c-walk samples spent across all rounds.
    pub samples_used: usize,
    /// Whether two consecutive rounds agreed on the top-k set (false =
    /// budget cap hit first).
    pub converged: bool,
}

/// Tuning knobs for [`Prsim::top_k_adaptive`].
#[derive(Clone, Copy, Debug)]
pub struct TopKParams {
    /// Samples in the first round.
    pub initial_samples: usize,
    /// Multiplier between rounds.
    pub growth: usize,
    /// Hard cap on the *per-round* sample count.
    pub max_samples: usize,
}

impl Default for TopKParams {
    fn default() -> Self {
        TopKParams {
            initial_samples: 500,
            growth: 4,
            max_samples: 128_000,
        }
    }
}

impl Prsim {
    /// Answers a top-k query adaptively: doubles (by `params.growth`) the
    /// per-round sample count until two consecutive rounds return the
    /// same top-k node set, then returns the larger round's estimates.
    pub fn top_k_adaptive<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        k: usize,
        params: TopKParams,
        rng: &mut R,
    ) -> Result<TopKResult, PrsimError> {
        if params.initial_samples == 0 || params.growth < 2 {
            return Err(PrsimError::InvalidConfig(
                "top-k needs initial_samples >= 1 and growth >= 2".into(),
            ));
        }
        let mut samples = params.initial_samples;
        let mut samples_used = 0usize;
        let mut prev_set: Option<Vec<NodeId>> = None;
        // One workspace across all adaptive rounds: the doubling rounds
        // re-touch mostly the same scratch entries.
        let mut ws = crate::workspace::QueryWorkspace::new();

        loop {
            let (scores, stats) =
                self.single_source_with_samples_with_workspace(u, samples, &mut ws, rng)?;
            samples_used += stats.walks;
            let top = scores.top_k(k);
            let set: Vec<NodeId> = {
                let mut s: Vec<NodeId> = top.iter().map(|&(v, _)| v).collect();
                s.sort_unstable();
                s
            };
            let converged = prev_set.as_deref() == Some(set.as_slice());
            if converged || samples >= params.max_samples {
                return Ok(TopKResult {
                    entries: top,
                    scores,
                    samples_used,
                    converged,
                });
            }
            prev_set = Some(set);
            samples = (samples * params.growth).min(params.max_samples);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrsimConfig, QueryParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> Prsim {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(150, 6.0, 2.0, 77));
        Prsim::build(
            g,
            PrsimConfig {
                eps: 0.1,
                query: QueryParams::Practical { c_mult: 3.0 },
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn adaptive_converges_and_reports_budget() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(5);
        let res = e
            .top_k_adaptive(0, 5, TopKParams::default(), &mut rng)
            .unwrap();
        assert!(res.entries.len() <= 5);
        assert!(res.samples_used >= TopKParams::default().initial_samples);
        // Entries sorted descending, none is the source.
        assert!(res.entries.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(res.entries.iter().all(|&(v, _)| v != 0));
    }

    #[test]
    fn cap_bounds_work() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(6);
        let params = TopKParams {
            initial_samples: 50,
            growth: 2,
            max_samples: 100,
        };
        let res = e.top_k_adaptive(3, 10, params, &mut rng).unwrap();
        // Rounds: 50, then 100 (cap) — possibly a third at the cap if the
        // first two disagreed; the cap keeps every round ≤ 100.
        assert!(res.samples_used <= 50 + 100 + 100);
    }

    #[test]
    fn deterministic_star_converges_fast() {
        // star_out: the top-k of any leaf is the other leaves at s = c;
        // two rounds suffice.
        let g = prsim_gen::toys::star_out(8);
        let e = Prsim::build(g, PrsimConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let res = e
            .top_k_adaptive(1, 6, TopKParams::default(), &mut rng)
            .unwrap();
        assert!(res.converged);
        let nodes: std::collections::HashSet<u32> = res.entries.iter().map(|&(v, _)| v).collect();
        for leaf in 2..8u32 {
            assert!(nodes.contains(&leaf), "missing leaf {leaf}");
        }
        for &(_, s) in &res.entries {
            assert!((s - 0.6).abs() < 0.12, "leaf score {s}");
        }
    }

    #[test]
    fn rejects_bad_params() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(8);
        assert!(e
            .top_k_adaptive(
                0,
                3,
                TopKParams {
                    initial_samples: 0,
                    ..Default::default()
                },
                &mut rng
            )
            .is_err());
        assert!(e
            .top_k_adaptive(
                0,
                3,
                TopKParams {
                    growth: 1,
                    ..Default::default()
                },
                &mut rng
            )
            .is_err());
    }
}
