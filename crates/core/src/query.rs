//! The PRSim engine: preprocessing + the query algorithm (paper Alg. 4).
//!
//! [`Prsim::build`] performs the whole of Algorithm 1 — counting-sort of
//! the out-adjacency, reverse-PageRank computation, hub selection and the
//! per-hub backward searches. [`Prsim::single_source`] then answers
//! queries:
//!
//! 1. sample `n_r = d_r·f_r` √c-walks from the query node `u`; a walk
//!    terminating at `w` after `ℓ` steps, followed by a pair of walks from
//!    `w` that do **not** meet, contributes `1/n_r` to the joint estimator
//!    `η̂π_ℓ(u,w)` of `η(w)·π_ℓ(u,w)` (§3.2);
//! 2. for such non-meeting samples whose `w` is *not* a hub, run one
//!    Variance Bounded Backward Walk to level `ℓ` and fold the estimates
//!    `π̂_ℓ(v,w)` into the current round's `ŝ_B` (§3.4);
//! 3. take the median of the `f_r` round estimators `ŝ_B^i` (median
//!    trick), and for every `(w, ℓ)` with `η̂π_ℓ(u,w)` above threshold and
//!    `w` a hub, accumulate `ŝ_I` from the index lists (§3.3);
//! 4. return `ŝ = ŝ_I + ŝ_B`, with `ŝ(u,u) = 1`.
//!
//! Note on the paper's listing: lines 11–13 render flat, but Lemma 3.7's
//! proof samples `(w, ℓ)` with probability `π_ℓ(u,w)·η(w)`, so the
//! backward-walk update must be *nested inside* the no-meet branch; that
//! is what we implement (see DESIGN.md §3).
//!
//! ## Hot-path layout
//!
//! The whole query runs on a caller-owned [`QueryWorkspace`] of dense
//! epoch-stamped scratch buffers (see [`crate::workspace`]): per-round
//! `ŝ_B` accumulation, backward-walk frontiers, hub-membership memos and
//! final score assembly are all `O(1)` array probes with `O(touched)`
//! clearing — no hashing, no per-query allocation after warmup (beyond
//! the returned score vector itself). Terminal observations are
//! aggregated into `η̂π_ℓ(u,w)` by sorting a flat `(w, ℓ)` vector instead
//! of a hash map, which also supplies the sorted iteration order the
//! deterministic `ŝ_I` accumulation needs. Results are **bit-identical**
//! between a fresh and a reused workspace, so the allocating entry
//! points simply construct a transient one.
//!
//! The walk phases run 8-lane interleaved (terminals, then η pair
//! tests) so their dependent random loads overlap in the memory
//! pipeline. The index part `ŝ_I` reads each accepted hub terminal as
//! one *sequential scan* of a postings run in the flat arena
//! ([`crate::index`]); its aggregation is adaptive — random scatter
//! into the dense accumulator while that array is cache-resident
//! (small graphs), and above [`SCATTER_NODES_MAX`] a scatter-free
//! stream into a flat buffer that is radix-sorted, coalesced, and
//! two-pointer merged with the (bwalk-only, hence small) accumulator
//! into the final sorted score vector. Fully fused/interleaved variants
//! of the sampling and backward-walk kernels exist
//! ([`crate::walk::sample_terminals_with_eta_interleaved`],
//! [`crate::vbbw::variance_bounded_backward_walks_interleaved`]) for
//! latency-bound hosts; on the benchmark box the phase-separated loop
//! measures faster, so it is what the engine runs.

use prsim_graph::ordering::sort_out_by_in_degree;
use prsim_graph::{DiGraph, NodeId};
use rand::{Rng, SeedableRng};

use crate::config::PrsimConfig;
use crate::index::{Postings, PrsimIndex};
use crate::pagerank::{rank_by_pagerank, reverse_pagerank};
use crate::scores::SimRankScores;
use crate::vbbw::variance_bounded_backward_walk_with_workspace;
use crate::walk::{
    sample_pairs_meet_interleaved, sample_terminals_interleaved, sample_walks_meet_with_table,
    GeomLenTable,
};
use crate::workspace::{DenseScratch, QueryWorkspace};
use crate::PrsimError;

/// Node-count ceiling for the scatter variant of the `ŝ_I` aggregation:
/// up to this size the dense accumulator (16 bytes per node) stays
/// cache-resident and random adds beat the streaming sort path.
const SCATTER_NODES_MAX: usize = 32_768;

/// Instrumentation counters for one single-source query.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// √c-walks sampled from the query node.
    pub walks: usize,
    /// Walks that died (dangling) and contributed nothing.
    pub died: usize,
    /// Walks whose follow-up pair met (η rejection).
    pub pair_met: usize,
    /// Backward walks executed (non-hub terminals).
    pub backward_walks: usize,
    /// Total neighbor visits inside backward walks.
    pub backward_cost: usize,
    /// Index entries scanned while assembling `ŝ_I`.
    pub index_entries: usize,
}

/// A built PRSim engine, ready to answer single-source queries.
#[derive(Clone, Debug)]
pub struct Prsim {
    graph: DiGraph,
    pi: Vec<f64>,
    index: PrsimIndex,
    config: PrsimConfig,
    /// Survival table for geometric walk-length draws (one per engine).
    geom: GeomLenTable,
    dr: usize,
    fr: usize,
}

impl Prsim {
    /// Runs the full preprocessing pipeline of Algorithm 1 and returns a
    /// query-ready engine. The graph is consumed because its out-adjacency
    /// is re-permuted (counting-sorted by target in-degree).
    pub fn build(mut graph: DiGraph, config: PrsimConfig) -> Result<Self, PrsimError> {
        config.validate()?;
        if !graph.is_out_sorted_by_in_degree() {
            sort_out_by_in_degree(&mut graph);
        }
        let sqrt_c = config.sqrt_c();
        let pi = reverse_pagerank(&graph, sqrt_c, 1e-12, config.max_level);
        let j0 = config
            .hubs
            .resolve(graph.node_count(), graph.avg_degree(), config.eps);
        let hubs: Vec<NodeId> = rank_by_pagerank(&pi).into_iter().take(j0).collect();
        let (index, _) = PrsimIndex::build_tracked_with(
            &graph,
            hubs,
            sqrt_c,
            config.r_max(),
            config.max_level,
            config.build_threads,
            config.reserve_precision,
        );
        Self::from_parts(graph, pi, index, config)
    }

    /// Assembles an engine from precomputed parts (e.g. a deserialized
    /// index). The graph must already be out-sorted by in-degree.
    pub fn from_parts(
        graph: DiGraph,
        pi: Vec<f64>,
        index: PrsimIndex,
        config: PrsimConfig,
    ) -> Result<Self, PrsimError> {
        config.validate()?;
        // A deserialized index carries its own precision; hold it to the
        // same quantization-vs-eps budget the build path enforces, so a
        // small-eps config cannot silently query an f32 arena.
        crate::config::validate_reserve_precision(index.precision(), config.eps, config.c)?;
        if !graph.is_out_sorted_by_in_degree() {
            return Err(PrsimError::InvalidConfig(
                "graph must be out-sorted by in-degree (run sort_out_by_in_degree)".into(),
            ));
        }
        if pi.len() != graph.node_count() {
            return Err(PrsimError::InvalidConfig(format!(
                "reverse-PageRank vector has {} entries for {} nodes",
                pi.len(),
                graph.node_count()
            )));
        }
        let (dr, fr) = config
            .query
            .resolve(graph.node_count(), config.c, config.eps, config.delta);
        let geom = GeomLenTable::new(config.sqrt_c(), config.max_level);
        Ok(Prsim {
            graph,
            pi,
            index,
            config,
            geom,
            dr,
            fr,
        })
    }

    /// Disassembles the engine into its parts. The dynamic engine uses
    /// this to mutate graph/π/index in place and cheaply reassemble via
    /// [`Prsim::from_parts`] without cloning CSR-sized state.
    pub(crate) fn into_parts(self) -> (DiGraph, Vec<f64>, PrsimIndex, PrsimConfig) {
        (self.graph, self.pi, self.index, self.config)
    }

    /// The underlying (out-sorted) graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The reverse-PageRank vector `π` computed during preprocessing.
    pub fn reverse_pagerank(&self) -> &[f64] {
        &self.pi
    }

    /// The hub index.
    pub fn index(&self) -> &PrsimIndex {
        &self.index
    }

    /// The engine configuration.
    pub fn config(&self) -> &PrsimConfig {
        &self.config
    }

    /// Resolved per-round sample count `d_r` and round count `f_r`.
    pub fn sample_counts(&self) -> (usize, usize) {
        (self.dr, self.fr)
    }

    /// Answers a single-pair query `ŝ(u, v)` via the √c-walk meeting
    /// probability, using `d_r·f_r` walk pairs (the classic Monte-Carlo
    /// estimator over the engine's graph and decay factor).
    pub fn single_pair<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        v: NodeId,
        rng: &mut R,
    ) -> Result<f64, PrsimError> {
        let n = self.graph.node_count();
        for node in [u, v] {
            if node as usize >= n {
                return Err(PrsimError::NodeOutOfRange { node, n });
            }
        }
        if u == v {
            return Ok(1.0);
        }
        let nr = self.dr * self.fr;
        let inv_nr = 1.0 / nr as f64;
        let mut meets = 0usize;
        for _ in 0..nr {
            if sample_walks_meet_with_table(&self.graph, &self.geom, u, v, rng) {
                meets += 1;
            }
        }
        Ok(meets as f64 * inv_nr)
    }

    /// Answers a single-source SimRank query for `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`; use [`Prsim::try_single_source`] for a checked
    /// variant.
    pub fn single_source<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> SimRankScores {
        self.try_single_source(u, rng)
            .expect("query node out of range")
            .0
    }

    /// [`Prsim::single_source`] against a caller-owned scratch workspace:
    /// no per-query allocation after the workspace has warmed up, and
    /// results bit-identical to the allocating entry point.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`; use [`Prsim::try_single_source_with_workspace`]
    /// for a checked variant.
    pub fn single_source_with_workspace<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> SimRankScores {
        self.try_single_source_with_workspace(u, ws, rng)
            .expect("query node out of range")
            .0
    }

    /// Single-source query with an explicit per-round sample count
    /// (`f_r = 1`), used by the adaptive top-k driver.
    pub fn single_source_with_samples<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        samples: usize,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let mut ws = QueryWorkspace::new();
        self.run_query(u, samples.max(1), 1, &mut ws, rng)
    }

    /// [`Prsim::single_source_with_samples`] against a caller-owned
    /// scratch workspace.
    pub fn single_source_with_samples_with_workspace<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        samples: usize,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        self.run_query(u, samples.max(1), 1, ws, rng)
    }

    /// The worker count [`Prsim::batch_single_source`] actually uses for
    /// `queries` when asked for `requested` threads: capped at the
    /// hardware parallelism (oversubscribing a box only adds scheduling
    /// overhead — measured *negative* scaling pre-cap) and sized so every
    /// worker gets at least [`Prsim::MIN_BATCH_QUERIES_PER_THREAD`]
    /// queries before the batch splits further.
    pub fn effective_batch_threads(queries: usize, requested: usize) -> usize {
        let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
        requested
            .max(1)
            .min(hardware)
            .min(queries.div_ceil(Self::MIN_BATCH_QUERIES_PER_THREAD).max(1))
    }

    /// Minimum queries per worker before [`Prsim::batch_single_source`]
    /// splits a batch across another thread (spawn + cold-workspace cost
    /// must amortize over real work).
    pub const MIN_BATCH_QUERIES_PER_THREAD: usize = 8;

    /// Runs `queries` in parallel over at most `threads` workers (capped
    /// by [`Prsim::effective_batch_threads`]). Each query gets an RNG
    /// seeded `base_seed + query index` and workspace reuse is
    /// bit-identical to fresh workspaces, so results are identical to
    /// serial execution and independent of scheduling and of the cap.
    ///
    /// Lock-free: each worker owns a disjoint `&mut` chunk of the output
    /// plus its own [`QueryWorkspace`]; no result ever crosses a mutex.
    pub fn batch_single_source(
        &self,
        queries: &[NodeId],
        threads: usize,
        base_seed: u64,
    ) -> Result<Vec<SimRankScores>, PrsimError> {
        for &u in queries {
            if u as usize >= self.graph.node_count() {
                return Err(PrsimError::NodeOutOfRange {
                    node: u,
                    n: self.graph.node_count(),
                });
            }
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let threads = Self::effective_batch_threads(queries.len(), threads);
        let mut slots: Vec<Option<SimRankScores>> = vec![None; queries.len()];
        if threads <= 1 {
            let mut ws = QueryWorkspace::new();
            for (i, (&u, slot)) in queries.iter().zip(slots.iter_mut()).enumerate() {
                let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed + i as u64);
                *slot = Some(
                    self.try_single_source_with_workspace(u, &mut ws, &mut rng)
                        .map(|(s, _)| s)
                        .expect("node range pre-checked"),
                );
            }
        } else {
            let chunk = queries.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, (q_chunk, s_chunk)) in queries
                    .chunks(chunk)
                    .zip(slots.chunks_mut(chunk))
                    .enumerate()
                {
                    scope.spawn(move || {
                        let mut ws = QueryWorkspace::new();
                        for (j, (&u, slot)) in q_chunk.iter().zip(s_chunk.iter_mut()).enumerate() {
                            let i = t * chunk + j;
                            let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed + i as u64);
                            *slot = Some(
                                self.try_single_source_with_workspace(u, &mut ws, &mut rng)
                                    .map(|(s, _)| s)
                                    .expect("node range pre-checked"),
                            );
                        }
                    });
                }
            });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all queries processed"))
            .collect())
    }

    /// Checked single-source query returning instrumentation counters.
    pub fn try_single_source<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let mut ws = QueryWorkspace::new();
        self.run_query(u, self.dr, self.fr, &mut ws, rng)
    }

    /// Checked single-source query against a caller-owned workspace.
    pub fn try_single_source_with_workspace<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        self.run_query(u, self.dr, self.fr, ws, rng)
    }

    fn run_query<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        dr: usize,
        fr: usize,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let n = self.graph.node_count();
        if u as usize >= n {
            return Err(PrsimError::NodeOutOfRange { node: u, n });
        }
        let sqrt_c = self.config.sqrt_c();
        let alpha = 1.0 - sqrt_c;
        let alpha2 = alpha * alpha;
        let nr = dr * fr;
        let inv_nr = 1.0 / nr as f64;
        let backward_scale = 1.0 / (alpha2 * dr as f64);
        let mut stats = QueryStats::default();

        let QueryWorkspace {
            backward,
            round,
            acc,
            hub_memo,
            terminals,
            term_buf,
            pair_buf,
            met_buf,
            round_entries,
            median_buf,
            ix_buf,
            ix_tmp,
        } = ws;
        let index = &self.index;
        hub_memo.begin(n);
        terminals.clear();
        round_entries.clear();
        if fr > 1 {
            acc.begin(n);
        }

        for _ in 0..fr {
            // Per-round backward estimator ŝ_B^i on dense scratch. With a
            // single round ŝ_B is the final backward part, so accumulate
            // straight into `acc` and skip the merge.
            let round: &mut DenseScratch = if fr == 1 { &mut *acc } else { &mut *round };
            round.begin(n);

            // Phase 1: the round's √c-walk terminals, interleaved so the
            // walks' dependent random loads overlap.
            term_buf.clear();
            stats.walks += dr;
            stats.died +=
                sample_terminals_interleaved(&self.graph, &self.geom, u, dr, term_buf, rng);

            // Phase 2: η rejection — one walk pair per surviving terminal.
            pair_buf.clear();
            pair_buf.extend(term_buf.iter().map(|&(w, _)| (w, w)));
            sample_pairs_meet_interleaved(&self.graph, &self.geom, pair_buf, met_buf, rng);

            // Phase 3: fold accepted samples into η̂π and ŝ_B.
            for (&(w, level), &met) in term_buf.iter().zip(met_buf.iter()) {
                if met {
                    stats.pair_met += 1;
                    continue;
                }
                // η̂π_ℓ(u, w) observation; aggregated after the rounds.
                terminals.push((w, level));
                if !hub_memo.get_or_insert_with(w, || index.contains(w)) {
                    stats.backward_walks += 1;
                    let est = variance_bounded_backward_walk_with_workspace(
                        &self.graph,
                        sqrt_c,
                        w,
                        level as usize,
                        backward,
                        rng,
                    );
                    stats.backward_cost += est.cost();
                    for (v, pi_hat) in est.iter() {
                        round.add(v, pi_hat * backward_scale);
                    }
                }
            }
            if fr > 1 {
                // No per-round sort: round_entries is sorted globally by
                // node id below, and the median pass re-sorts each node's
                // values anyway.
                for (v, s) in round.iter() {
                    round_entries.push((v, s));
                }
            }
        }

        // Median trick over the f_r rounds.
        if fr > 1 {
            // Group per node; the value order within a node is irrelevant
            // because the median sorts them anyway.
            round_entries.sort_unstable_by_key(|&(v, _)| v);
            let mut i = 0usize;
            while i < round_entries.len() {
                let v = round_entries[i].0;
                median_buf.clear();
                while i < round_entries.len() && round_entries[i].0 == v {
                    median_buf.push(round_entries[i].1);
                    i += 1;
                }
                // Untouched rounds contribute an implicit 0.
                median_buf.resize(fr, 0.0);
                median_buf.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
                let mid = median_buf.len() / 2;
                let med = if median_buf.len() % 2 == 1 {
                    median_buf[mid]
                } else {
                    0.5 * (median_buf[mid - 1] + median_buf[mid])
                };
                if med != 0.0 {
                    acc.add(v, med);
                }
            }
        }

        // Index part ŝ_I: threshold η̂π at ε/c₁ = ε(1−√c)²/12 (Alg. 4 line
        // 16). Sorting the flat observation list both aggregates the
        // per-(w, ℓ) counts and fixes the deterministic accumulation order
        // the old sorted-hash-map iteration provided.
        //
        // Postings aggregation is adaptive: when the dense accumulator is
        // cache-resident (small graphs) random scatter into it is nearly
        // free, so postings add straight into `acc`; above that size each
        // accepted hub terminal's run is *streamed sequentially* out of
        // the arena into a flat scaled buffer and duplicates are resolved
        // by a stable radix sort + coalesce over the (small) buffer —
        // no random writes over the (large) node universe at all.
        let threshold = self.config.eps * alpha2 / 12.0;
        let scatter = n <= SCATTER_NODES_MAX;
        terminals.sort_unstable();
        ix_buf.clear();
        let mut i = 0usize;
        while i < terminals.len() {
            let key = terminals[i];
            let start = i;
            while i < terminals.len() && terminals[i] == key {
                i += 1;
            }
            let ep = (i - start) as f64 * inv_nr;
            let (w, level) = key;
            if ep <= threshold || !hub_memo.get_or_insert_with(w, || index.contains(w)) {
                continue;
            }
            if let Some(postings) = index.postings(w, level as usize) {
                stats.index_entries += postings.len();
                let scale = ep / alpha2;
                // One match per slice, then a monomorphic sequential scan
                // of the arena run.
                match (scatter, postings) {
                    (true, Postings::F64 { nodes, reserves }) => {
                        acc.add_scaled(nodes, reserves, scale)
                    }
                    (true, Postings::F32 { nodes, reserves }) => {
                        acc.add_scaled_f32(nodes, reserves, scale)
                    }
                    (false, Postings::F64 { nodes, reserves }) => {
                        for (&v, &psi) in nodes.iter().zip(reserves) {
                            ix_buf.push((v, scale * psi));
                        }
                    }
                    (false, Postings::F32 { nodes, reserves }) => {
                        for (&v, &psi) in nodes.iter().zip(reserves) {
                            ix_buf.push((v, scale * f64::from(psi)));
                        }
                    }
                }
            }
        }
        // Aggregate ŝ_I by node: stable radix sort keeps per-node addend
        // order (= accepted-terminal order), then coalesce adjacent runs.
        // (No-op on the scatter path: ix_buf stays empty.)
        crate::workspace::radix_sort_pairs(ix_buf, ix_tmp);
        let mut write = 0usize;
        let mut read = 0usize;
        while read < ix_buf.len() {
            let (v, mut sum) = ix_buf[read];
            read += 1;
            while read < ix_buf.len() && ix_buf[read].0 == v {
                sum += ix_buf[read].1;
                read += 1;
            }
            ix_buf[write] = (v, sum);
            write += 1;
        }
        ix_buf.truncate(write);

        // Final assembly ŝ = ŝ_B + ŝ_I: two-pointer merge of the sorted
        // backward accumulator and the sorted index buffer.
        acc.sort_touched();
        let mut entries: Vec<(NodeId, f64)> = Vec::with_capacity(acc.len() + ix_buf.len() + 1);
        let mut b_iter = acc.iter().peekable();
        let mut j = 0usize;
        while let Some(&(bv, bs)) = b_iter.peek() {
            while j < ix_buf.len() && ix_buf[j].0 < bv {
                entries.push(ix_buf[j]);
                j += 1;
            }
            if j < ix_buf.len() && ix_buf[j].0 == bv {
                entries.push((bv, bs + ix_buf[j].1));
                j += 1;
            } else {
                entries.push((bv, bs));
            }
            b_iter.next();
        }
        entries.extend_from_slice(&ix_buf[j..]);
        let scores = SimRankScores::from_sorted_entries(u, n, entries);
        Ok((scores, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HubCount, QueryParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(eps: f64) -> PrsimConfig {
        PrsimConfig {
            eps,
            query: QueryParams::Practical { c_mult: 5.0 },
            ..Default::default()
        }
    }

    #[test]
    fn build_sorts_graph_and_selects_hubs() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(300, 6.0, 2.0, 5));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        assert!(engine.graph().is_out_sorted_by_in_degree());
        // SqrtN policy: j0 = ceil(sqrt(300)) = 18.
        assert_eq!(engine.index().hub_count(), 18);
        // Hubs really are the top-π nodes.
        let order = crate::pagerank::rank_by_pagerank(engine.reverse_pagerank());
        assert_eq!(engine.index().hubs(), &order[..18]);
    }

    #[test]
    fn self_score_is_one_and_range_checked() {
        let g = prsim_gen::toys::cycle(6);
        let engine = Prsim::build(g, cfg(0.2)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let s = engine.single_source(2, &mut rng);
        assert_eq!(s.get(2), 1.0);
        assert!(engine.try_single_source(6, &mut rng).is_err());
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 6.0, 2.0, 9));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for u in [0u32, 10, 100] {
            let s = engine.single_source(u, &mut rng);
            for (v, val) in s.iter() {
                assert!(
                    (0.0..=1.0 + 0.35).contains(&val),
                    "s({u},{v}) = {val} implausible"
                );
                assert!(val >= 0.0);
            }
        }
    }

    #[test]
    fn disconnected_components_have_zero_similarity() {
        let g = prsim_gen::toys::two_triangles();
        let engine = Prsim::build(g, cfg(0.05)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = engine.single_source(0, &mut rng);
        for v in 3..6 {
            assert_eq!(s.get(v), 0.0, "cross-component similarity must be 0");
        }
    }

    #[test]
    fn index_free_and_full_index_agree() {
        // j0 = 0 (pure backward walks) and j0 = n (pure index) must both
        // approximate the same function.
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 17));
        let mk = |hubs| PrsimConfig {
            hubs,
            eps: 0.05,
            query: QueryParams::Explicit { dr: 4000, fr: 1 },
            ..Default::default()
        };
        let free = Prsim::build(g.clone(), mk(HubCount::Fixed(0))).unwrap();
        let full = Prsim::build(g, mk(HubCount::Fixed(usize::MAX))).unwrap();
        assert_eq!(free.index().hub_count(), 0);
        assert_eq!(full.index().hub_count(), 120);
        let mut rng = StdRng::seed_from_u64(2);
        let a = free.single_source(5, &mut rng);
        let b = full.single_source(5, &mut rng);
        let diff = a.max_abs_diff(&b);
        assert!(diff < 0.12, "index-free vs full-index diff {diff}");
    }

    #[test]
    fn median_trick_rounds_produce_sane_output() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(100, 5.0, 2.0, 23));
        let config = PrsimConfig {
            query: QueryParams::Explicit { dr: 500, fr: 5 },
            ..cfg(0.1)
        };
        let engine = Prsim::build(g, config).unwrap();
        assert_eq!(engine.sample_counts(), (500, 5));
        let mut rng = StdRng::seed_from_u64(4);
        let (s, stats) = engine.try_single_source(0, &mut rng).unwrap();
        assert_eq!(stats.walks, 2500);
        assert_eq!(s.get(0), 1.0);
        for (_, val) in s.iter() {
            assert!(val >= 0.0 && val.is_finite());
        }
    }

    #[test]
    fn stats_account_for_every_walk() {
        let g =
            prsim_gen::chung_lu_directed(prsim_gen::ChungLuConfig::new(150, 5.0, 1.8, 3), 2.2, 7);
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let (_, stats) = engine.try_single_source(3, &mut rng).unwrap();
        let (dr, fr) = engine.sample_counts();
        assert_eq!(stats.walks, dr * fr);
        assert!(stats.died + stats.pair_met <= stats.walks);
        assert!(stats.backward_walks <= stats.walks - stats.died - stats.pair_met);
    }

    #[test]
    fn batch_matches_serial_and_is_schedule_independent() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 31));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let queries = [0u32, 7, 33, 99, 45, 12, 80];
        let serial = engine.batch_single_source(&queries, 1, 1234).unwrap();
        let parallel = engine.batch_single_source(&queries, 4, 1234).unwrap();
        assert_eq!(serial.len(), queries.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        // Out-of-range rejected before any work.
        assert!(engine.batch_single_source(&[0, 500], 2, 0).is_err());
    }

    #[test]
    fn batch_thread_cap_respects_hardware_and_chunk_floor() {
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        // Never above hardware, never above ceil(queries / 8), never 0.
        assert!(Prsim::effective_batch_threads(1000, 64) <= hw);
        assert_eq!(Prsim::effective_batch_threads(1000, 0), 1);
        assert_eq!(
            Prsim::effective_batch_threads(7, 4),
            1,
            "7 queries: 1 worker"
        );
        assert!(Prsim::effective_batch_threads(16, 4) <= 2);
        assert_eq!(
            Prsim::effective_batch_threads(usize::MAX, usize::MAX),
            hw,
            "huge batches saturate exactly the hardware"
        );
    }

    #[test]
    fn single_pair_matches_known_values() {
        let g = prsim_gen::toys::star_out(6);
        let engine = Prsim::build(
            g,
            PrsimConfig {
                query: QueryParams::Explicit { dr: 50_000, fr: 1 },
                ..cfg(0.05)
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        assert_eq!(engine.single_pair(2, 2, &mut rng).unwrap(), 1.0);
        let s = engine.single_pair(1, 2, &mut rng).unwrap();
        assert!((s - 0.6).abs() < 0.02, "s(1,2) = {s}, want 0.6");
        assert!(engine.single_pair(1, 99, &mut rng).is_err());
    }

    #[test]
    fn from_parts_validates() {
        let g = prsim_gen::toys::cycle(4); // unsorted
        let idx = PrsimIndex::empty(4);
        let err = Prsim::from_parts(g, vec![0.25; 4], idx, cfg(0.1));
        assert!(err.is_err(), "unsorted graph must be rejected");

        let mut g = prsim_gen::toys::cycle(4);
        prsim_graph::ordering::sort_out_by_in_degree(&mut g);
        let idx = PrsimIndex::empty(4);
        let err = Prsim::from_parts(g, vec![0.25; 3], idx, cfg(0.1));
        assert!(err.is_err(), "wrong-length π must be rejected");
    }

    #[test]
    fn from_parts_holds_loaded_f32_index_to_the_eps_budget() {
        // A deserialized f32 index must not bypass the quantization
        // guard: querying it with an eps below the f32 floor is exactly
        // the accuracy contract the config validation protects.
        use crate::index::ReservePrecision;
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 9));
        let narrow = Prsim::build(
            g,
            PrsimConfig {
                reserve_precision: ReservePrecision::F32,
                ..cfg(0.1)
            },
        )
        .unwrap();
        let bytes = narrow.index().to_bytes();
        let (graph, pi, _, _) = narrow.into_parts();
        let loaded = PrsimIndex::from_bytes(&bytes, graph.node_count()).unwrap();
        assert_eq!(loaded.precision(), ReservePrecision::F32);
        // Same index, tiny eps, default (f64) config precision: rejected.
        let err = Prsim::from_parts(graph.clone(), pi.clone(), loaded.clone(), cfg(1e-7));
        assert!(err.is_err(), "f32 index + eps below the floor accepted");
        // A generous eps is fine.
        Prsim::from_parts(graph, pi, loaded, cfg(0.1)).unwrap();
    }
}
