//! The PRSim engine: preprocessing + the query algorithm (paper Alg. 4).
//!
//! [`Prsim::build`] performs the whole of Algorithm 1 — counting-sort of
//! the out-adjacency, reverse-PageRank computation, hub selection and the
//! per-hub backward searches. [`Prsim::single_source`] then answers
//! queries:
//!
//! 1. sample `n_r = d_r·f_r` √c-walks from the query node `u`; a walk
//!    terminating at `w` after `ℓ` steps, followed by a pair of walks from
//!    `w` that do **not** meet, contributes `1/n_r` to the joint estimator
//!    `η̂π_ℓ(u,w)` of `η(w)·π_ℓ(u,w)` (§3.2);
//! 2. for such non-meeting samples whose `w` is *not* a hub, run one
//!    Variance Bounded Backward Walk to level `ℓ` and fold the estimates
//!    `π̂_ℓ(v,w)` into the current round's `ŝ_B` (§3.4);
//! 3. take the median of the `f_r` round estimators `ŝ_B^i` (median
//!    trick), and for every `(w, ℓ)` with `η̂π_ℓ(u,w)` above threshold and
//!    `w` a hub, accumulate `ŝ_I` from the index lists (§3.3);
//! 4. return `ŝ = ŝ_I + ŝ_B`, with `ŝ(u,u) = 1`.
//!
//! Note on the paper's listing: lines 11–13 render flat, but Lemma 3.7's
//! proof samples `(w, ℓ)` with probability `π_ℓ(u,w)·η(w)`, so the
//! backward-walk update must be *nested inside* the no-meet branch; that
//! is what we implement (see DESIGN.md §3).

use prsim_graph::ordering::sort_out_by_in_degree;
use prsim_graph::{DiGraph, NodeId};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::config::PrsimConfig;
use crate::index::PrsimIndex;
use crate::pagerank::{rank_by_pagerank, reverse_pagerank};
use crate::scores::SimRankScores;
use crate::vbbw::variance_bounded_backward_walk;
use crate::walk::{sample_pair_meets, sample_terminal, Terminal};
use crate::PrsimError;

/// Instrumentation counters for one single-source query.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// √c-walks sampled from the query node.
    pub walks: usize,
    /// Walks that died (dangling) and contributed nothing.
    pub died: usize,
    /// Walks whose follow-up pair met (η rejection).
    pub pair_met: usize,
    /// Backward walks executed (non-hub terminals).
    pub backward_walks: usize,
    /// Total neighbor visits inside backward walks.
    pub backward_cost: usize,
    /// Index entries scanned while assembling `ŝ_I`.
    pub index_entries: usize,
}

/// A built PRSim engine, ready to answer single-source queries.
#[derive(Clone, Debug)]
pub struct Prsim {
    graph: DiGraph,
    pi: Vec<f64>,
    index: PrsimIndex,
    config: PrsimConfig,
    dr: usize,
    fr: usize,
}

impl Prsim {
    /// Runs the full preprocessing pipeline of Algorithm 1 and returns a
    /// query-ready engine. The graph is consumed because its out-adjacency
    /// is re-permuted (counting-sorted by target in-degree).
    pub fn build(mut graph: DiGraph, config: PrsimConfig) -> Result<Self, PrsimError> {
        config.validate()?;
        if !graph.is_out_sorted_by_in_degree() {
            sort_out_by_in_degree(&mut graph);
        }
        let sqrt_c = config.sqrt_c();
        let pi = reverse_pagerank(&graph, sqrt_c, 1e-12, config.max_level);
        let j0 = config
            .hubs
            .resolve(graph.node_count(), graph.avg_degree(), config.eps);
        let hubs: Vec<NodeId> = rank_by_pagerank(&pi).into_iter().take(j0).collect();
        let index = PrsimIndex::build(
            &graph,
            hubs,
            sqrt_c,
            config.r_max(),
            config.max_level,
            config.build_threads,
        );
        Self::from_parts(graph, pi, index, config)
    }

    /// Assembles an engine from precomputed parts (e.g. a deserialized
    /// index). The graph must already be out-sorted by in-degree.
    pub fn from_parts(
        graph: DiGraph,
        pi: Vec<f64>,
        index: PrsimIndex,
        config: PrsimConfig,
    ) -> Result<Self, PrsimError> {
        config.validate()?;
        if !graph.is_out_sorted_by_in_degree() {
            return Err(PrsimError::InvalidConfig(
                "graph must be out-sorted by in-degree (run sort_out_by_in_degree)".into(),
            ));
        }
        if pi.len() != graph.node_count() {
            return Err(PrsimError::InvalidConfig(format!(
                "reverse-PageRank vector has {} entries for {} nodes",
                pi.len(),
                graph.node_count()
            )));
        }
        let (dr, fr) = config
            .query
            .resolve(graph.node_count(), config.c, config.eps, config.delta);
        Ok(Prsim {
            graph,
            pi,
            index,
            config,
            dr,
            fr,
        })
    }

    /// The underlying (out-sorted) graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The reverse-PageRank vector `π` computed during preprocessing.
    pub fn reverse_pagerank(&self) -> &[f64] {
        &self.pi
    }

    /// The hub index.
    pub fn index(&self) -> &PrsimIndex {
        &self.index
    }

    /// The engine configuration.
    pub fn config(&self) -> &PrsimConfig {
        &self.config
    }

    /// Resolved per-round sample count `d_r` and round count `f_r`.
    pub fn sample_counts(&self) -> (usize, usize) {
        (self.dr, self.fr)
    }

    /// Answers a single-pair query `ŝ(u, v)` via the √c-walk meeting
    /// probability, using `d_r·f_r` walk pairs (the classic Monte-Carlo
    /// estimator over the engine's graph and decay factor).
    pub fn single_pair<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        v: NodeId,
        rng: &mut R,
    ) -> Result<f64, PrsimError> {
        let n = self.graph.node_count();
        for node in [u, v] {
            if node as usize >= n {
                return Err(PrsimError::NodeOutOfRange { node, n });
            }
        }
        if u == v {
            return Ok(1.0);
        }
        let sqrt_c = self.config.sqrt_c();
        let nr = self.dr * self.fr;
        let mut meets = 0usize;
        for _ in 0..nr {
            let wu = crate::walk::sample_walk(&self.graph, sqrt_c, u, self.config.max_level, rng);
            let wv = crate::walk::sample_walk(&self.graph, sqrt_c, v, self.config.max_level, rng);
            if crate::walk::walks_meet(&wu, &wv, 1) {
                meets += 1;
            }
        }
        Ok(meets as f64 / nr as f64)
    }

    /// Answers a single-source SimRank query for `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`; use [`Prsim::try_single_source`] for a checked
    /// variant.
    pub fn single_source<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> SimRankScores {
        self.try_single_source(u, rng)
            .expect("query node out of range")
            .0
    }

    /// Single-source query with an explicit per-round sample count
    /// (`f_r = 1`), used by the adaptive top-k driver.
    pub fn single_source_with_samples<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        samples: usize,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        self.run_query(u, samples.max(1), 1, rng)
    }

    /// Runs `queries` in parallel over `threads` workers. Each query gets
    /// an RNG seeded `base_seed + query index`, so results are identical
    /// to serial execution and independent of scheduling.
    pub fn batch_single_source(
        &self,
        queries: &[NodeId],
        threads: usize,
        base_seed: u64,
    ) -> Result<Vec<SimRankScores>, PrsimError> {
        for &u in queries {
            if u as usize >= self.graph.node_count() {
                return Err(PrsimError::NodeOutOfRange {
                    node: u,
                    n: self.graph.node_count(),
                });
            }
        }
        let threads = threads.max(1).min(queries.len().max(1));
        if threads <= 1 {
            return queries
                .iter()
                .enumerate()
                .map(|(i, &u)| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed + i as u64);
                    self.try_single_source(u, &mut rng).map(|(s, _)| s)
                })
                .collect();
        }
        let mut slots: Vec<Option<SimRankScores>> = vec![None; queries.len()];
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots_mutex = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed + i as u64);
                    let result = self
                        .try_single_source(queries[i], &mut rng)
                        .map(|(s, _)| s)
                        .expect("node range pre-checked");
                    slots_mutex.lock().expect("no poisoned lock")[i] = Some(result);
                });
            }
        });
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all queries processed"))
            .collect())
    }

    /// Checked single-source query returning instrumentation counters.
    pub fn try_single_source<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        self.run_query(u, self.dr, self.fr, rng)
    }

    fn run_query<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        dr: usize,
        fr: usize,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let n = self.graph.node_count();
        if u as usize >= n {
            return Err(PrsimError::NodeOutOfRange { node: u, n });
        }
        let sqrt_c = self.config.sqrt_c();
        let alpha = 1.0 - sqrt_c;
        let alpha2 = alpha * alpha;
        let max_level = self.config.max_level;
        let nr = dr * fr;
        let mut stats = QueryStats::default();

        // η̂π_ℓ(u, w) keyed by (w, ℓ); only non-zero entries stored.
        let mut etapi: HashMap<(NodeId, u32), f64> = HashMap::new();
        // Per-round backward estimators ŝ_B^i.
        let mut rounds: Vec<HashMap<NodeId, f64>> = vec![HashMap::new(); fr];

        for round in rounds.iter_mut() {
            for _ in 0..dr {
                stats.walks += 1;
                let (w, level) = match sample_terminal(&self.graph, sqrt_c, u, max_level, rng) {
                    Terminal::At { node, level } => (node, level),
                    Terminal::Died => {
                        stats.died += 1;
                        continue;
                    }
                };
                if sample_pair_meets(&self.graph, sqrt_c, w, max_level, rng) {
                    stats.pair_met += 1;
                    continue;
                }
                *etapi.entry((w, level)).or_insert(0.0) += 1.0 / nr as f64;
                if !self.index.contains(w) {
                    stats.backward_walks += 1;
                    let est =
                        variance_bounded_backward_walk(&self.graph, sqrt_c, w, level as usize, rng);
                    stats.backward_cost += est.cost;
                    for (v, pi_hat) in est.estimates {
                        *round.entry(v).or_insert(0.0) += pi_hat / (alpha2 * dr as f64);
                    }
                }
            }
        }

        // Median trick over the f_r rounds.
        let mut scores = SimRankScores::new(u, n);
        if fr == 1 {
            for (v, s) in rounds.pop().expect("fr >= 1") {
                scores.add(v, s);
            }
        } else {
            let mut touched: HashMap<NodeId, Vec<f64>> = HashMap::new();
            for round in &rounds {
                for (&v, &s) in round {
                    touched.entry(v).or_default().push(s);
                }
            }
            for (v, mut vals) in touched {
                // Untouched rounds contribute an implicit 0.
                while vals.len() < fr {
                    vals.push(0.0);
                }
                vals.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
                let med = if vals.len() % 2 == 1 {
                    vals[vals.len() / 2]
                } else {
                    0.5 * (vals[vals.len() / 2 - 1] + vals[vals.len() / 2])
                };
                if med != 0.0 {
                    scores.add(v, med);
                }
            }
        }

        // Index part ŝ_I: threshold η̂π at ε/c₁ = ε(1−√c)²/12 (Alg. 4 line 16).
        // Sorted iteration keeps float accumulation deterministic.
        let threshold = self.config.eps * alpha2 / 12.0;
        let mut etapi_sorted: Vec<(&(NodeId, u32), &f64)> = etapi.iter().collect();
        etapi_sorted.sort_unstable_by_key(|&(k, _)| *k);
        for (&(w, level), &ep) in etapi_sorted {
            if ep <= threshold || !self.index.contains(w) {
                continue;
            }
            if let Some(list) = self.index.level_list(w, level as usize) {
                stats.index_entries += list.len();
                for &(v, psi) in list {
                    scores.add(v, ep * psi / alpha2);
                }
            }
        }

        scores.set(u, 1.0);
        Ok((scores, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HubCount, QueryParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(eps: f64) -> PrsimConfig {
        PrsimConfig {
            eps,
            query: QueryParams::Practical { c_mult: 5.0 },
            ..Default::default()
        }
    }

    #[test]
    fn build_sorts_graph_and_selects_hubs() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(300, 6.0, 2.0, 5));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        assert!(engine.graph().is_out_sorted_by_in_degree());
        // SqrtN policy: j0 = ceil(sqrt(300)) = 18.
        assert_eq!(engine.index().hub_count(), 18);
        // Hubs really are the top-π nodes.
        let order = crate::pagerank::rank_by_pagerank(engine.reverse_pagerank());
        assert_eq!(engine.index().hubs(), &order[..18]);
    }

    #[test]
    fn self_score_is_one_and_range_checked() {
        let g = prsim_gen::toys::cycle(6);
        let engine = Prsim::build(g, cfg(0.2)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let s = engine.single_source(2, &mut rng);
        assert_eq!(s.get(2), 1.0);
        assert!(engine.try_single_source(6, &mut rng).is_err());
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 6.0, 2.0, 9));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for u in [0u32, 10, 100] {
            let s = engine.single_source(u, &mut rng);
            for (v, val) in s.iter() {
                assert!(
                    (0.0..=1.0 + 0.35).contains(&val),
                    "s({u},{v}) = {val} implausible"
                );
                assert!(val >= 0.0);
            }
        }
    }

    #[test]
    fn disconnected_components_have_zero_similarity() {
        let g = prsim_gen::toys::two_triangles();
        let engine = Prsim::build(g, cfg(0.05)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = engine.single_source(0, &mut rng);
        for v in 3..6 {
            assert_eq!(s.get(v), 0.0, "cross-component similarity must be 0");
        }
    }

    #[test]
    fn index_free_and_full_index_agree() {
        // j0 = 0 (pure backward walks) and j0 = n (pure index) must both
        // approximate the same function.
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 17));
        let mk = |hubs| PrsimConfig {
            hubs,
            eps: 0.05,
            query: QueryParams::Explicit { dr: 4000, fr: 1 },
            ..Default::default()
        };
        let free = Prsim::build(g.clone(), mk(HubCount::Fixed(0))).unwrap();
        let full = Prsim::build(g, mk(HubCount::Fixed(usize::MAX))).unwrap();
        assert_eq!(free.index().hub_count(), 0);
        assert_eq!(full.index().hub_count(), 120);
        let mut rng = StdRng::seed_from_u64(2);
        let a = free.single_source(5, &mut rng);
        let b = full.single_source(5, &mut rng);
        let diff = a.max_abs_diff(&b);
        assert!(diff < 0.12, "index-free vs full-index diff {diff}");
    }

    #[test]
    fn median_trick_rounds_produce_sane_output() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(100, 5.0, 2.0, 23));
        let config = PrsimConfig {
            query: QueryParams::Explicit { dr: 500, fr: 5 },
            ..cfg(0.1)
        };
        let engine = Prsim::build(g, config).unwrap();
        assert_eq!(engine.sample_counts(), (500, 5));
        let mut rng = StdRng::seed_from_u64(4);
        let (s, stats) = engine.try_single_source(0, &mut rng).unwrap();
        assert_eq!(stats.walks, 2500);
        assert_eq!(s.get(0), 1.0);
        for (_, val) in s.iter() {
            assert!(val >= 0.0 && val.is_finite());
        }
    }

    #[test]
    fn stats_account_for_every_walk() {
        let g =
            prsim_gen::chung_lu_directed(prsim_gen::ChungLuConfig::new(150, 5.0, 1.8, 3), 2.2, 7);
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let (_, stats) = engine.try_single_source(3, &mut rng).unwrap();
        let (dr, fr) = engine.sample_counts();
        assert_eq!(stats.walks, dr * fr);
        assert!(stats.died + stats.pair_met <= stats.walks);
        assert!(stats.backward_walks <= stats.walks - stats.died - stats.pair_met);
    }

    #[test]
    fn batch_matches_serial_and_is_schedule_independent() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 31));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let queries = [0u32, 7, 33, 99, 45, 12, 80];
        let serial = engine.batch_single_source(&queries, 1, 1234).unwrap();
        let parallel = engine.batch_single_source(&queries, 4, 1234).unwrap();
        assert_eq!(serial.len(), queries.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        // Out-of-range rejected before any work.
        assert!(engine.batch_single_source(&[0, 500], 2, 0).is_err());
    }

    #[test]
    fn single_pair_matches_known_values() {
        let g = prsim_gen::toys::star_out(6);
        let engine = Prsim::build(
            g,
            PrsimConfig {
                query: QueryParams::Explicit { dr: 50_000, fr: 1 },
                ..cfg(0.05)
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        assert_eq!(engine.single_pair(2, 2, &mut rng).unwrap(), 1.0);
        let s = engine.single_pair(1, 2, &mut rng).unwrap();
        assert!((s - 0.6).abs() < 0.02, "s(1,2) = {s}, want 0.6");
        assert!(engine.single_pair(1, 99, &mut rng).is_err());
    }

    #[test]
    fn from_parts_validates() {
        let g = prsim_gen::toys::cycle(4); // unsorted
        let idx = PrsimIndex::empty(4);
        let err = Prsim::from_parts(g, vec![0.25; 4], idx, cfg(0.1));
        assert!(err.is_err(), "unsorted graph must be rejected");

        let mut g = prsim_gen::toys::cycle(4);
        prsim_graph::ordering::sort_out_by_in_degree(&mut g);
        let idx = PrsimIndex::empty(4);
        let err = Prsim::from_parts(g, vec![0.25; 3], idx, cfg(0.1));
        assert!(err.is_err(), "wrong-length π must be rejected");
    }
}
