//! The PRSim engine: preprocessing + the query algorithm (paper Alg. 4).
//!
//! [`Prsim::build`] performs the whole of Algorithm 1 — counting-sort of
//! the out-adjacency, reverse-PageRank computation, hub selection and the
//! per-hub backward searches. [`Prsim::single_source`] then answers
//! queries:
//!
//! 1. sample `n_r = d_r·f_r` √c-walks from the query node `u`; a walk
//!    terminating at `w` after `ℓ` steps, followed by a pair of walks from
//!    `w` that do **not** meet, contributes `1/n_r` to the joint estimator
//!    `η̂π_ℓ(u,w)` of `η(w)·π_ℓ(u,w)` (§3.2);
//! 2. for such non-meeting samples whose `w` is *not* a hub, run one
//!    Variance Bounded Backward Walk to level `ℓ` and fold the estimates
//!    `π̂_ℓ(v,w)` into the current round's `ŝ_B` (§3.4);
//! 3. take the median of the `f_r` round estimators `ŝ_B^i` (median
//!    trick), and for every `(w, ℓ)` with `η̂π_ℓ(u,w)` above threshold and
//!    `w` a hub, accumulate `ŝ_I` from the index lists (§3.3);
//! 4. return `ŝ = ŝ_I + ŝ_B`, with `ŝ(u,u) = 1`.
//!
//! Note on the paper's listing: lines 11–13 render flat, but Lemma 3.7's
//! proof samples `(w, ℓ)` with probability `π_ℓ(u,w)·η(w)`, so the
//! backward-walk update must be *nested inside* the no-meet branch; that
//! is what we implement (see DESIGN.md §3).
//!
//! ## Hot-path layout
//!
//! The whole query runs on a caller-owned [`QueryWorkspace`] of dense
//! epoch-stamped scratch buffers (see [`crate::workspace`]): per-round
//! `ŝ_B` accumulation, backward-walk frontiers, hub-membership memos and
//! final score assembly are all `O(1)` array probes with `O(touched)`
//! clearing — no hashing, no per-query allocation after warmup (beyond
//! the returned score vector itself). Terminal observations are
//! aggregated into `η̂π_ℓ(u,w)` by sorting a flat `(w, ℓ)` vector instead
//! of a hash map, which also supplies the sorted iteration order the
//! deterministic `ŝ_I` accumulation needs. Results are **bit-identical**
//! between a fresh and a reused workspace, so the allocating entry
//! points simply construct a transient one.
//!
//! The walk phases run as **sorted wavefronts** (terminals, then the η
//! pair tests): all in-flight walks advance level-synchronously with the
//! frontier radix-binned by current node id, so one level's CSR reads
//! sweep the adjacency arrays in ascending order instead of chasing
//! independent pointers, and walks arriving at a node cached by the
//! [`crate::walkcache::WalkCache`] retire immediately on a pre-drawn
//! sample (the top-π nodes carry most of the walk mass, so most walks
//! end within a hop or two of leaving the source). The index part `ŝ_I`
//! reads each accepted hub terminal as
//! one *sequential scan* of a postings run in the flat arena
//! ([`crate::index`]); its aggregation is adaptive — random scatter
//! into the dense accumulator while that array is cache-resident
//! (small graphs), and above `SCATTER_NODES_MAX` a scatter-free
//! stream into a flat buffer that is radix-sorted, coalesced, and
//! two-pointer merged with the (bwalk-only, hence small) accumulator
//! into the final sorted score vector. Fully fused/interleaved variants
//! of the sampling and backward-walk kernels exist
//! ([`crate::walk::sample_terminals_with_eta_interleaved`],
//! [`crate::vbbw::variance_bounded_backward_walks_interleaved`]) for
//! latency-bound hosts; on the benchmark box the phase-separated loop
//! measures faster, so it is what the engine runs.

use std::time::{Duration, Instant};

use prsim_graph::ordering::sort_out_by_in_degree;
use prsim_graph::{DiGraph, NodeId};
use rand::{Rng, SeedableRng};

use crate::config::{PrsimConfig, QueryPlan};
use crate::index::{Postings, PrsimIndex};
use crate::pagerank::{rank_by_pagerank, reverse_pagerank};
use crate::scores::SimRankScores;
use crate::vbbw::{
    variance_bounded_backward_walk_fold_with_workspace,
    variance_bounded_backward_walk_with_workspace,
};
use crate::walk::{
    sample_pairs_meet_wavefront, sample_terminals_wavefront, sample_walk_phase_interleaved,
    sample_walk_phase_interleaved_prefetch, sample_walks_meet_with_table, GeomLenTable, NoDraws,
    TerminalDraws, WaveScratch, WaveStats,
};
use crate::walkcache::{pool_samples, WalkCache};
use crate::workspace::{DenseScratch, QueryWorkspace};
use crate::PrsimError;

/// Node-count ceiling for the scatter variant of the `ŝ_I`/`ŝ_B`
/// aggregation: up to this size the dense accumulator (16 bytes per
/// node) stays cache-resident and random adds beat the streaming sort
/// path.
const SCATTER_NODES_MAX: usize = 32_768;

/// Walk-count floor for the sorted-wavefront kernels: below it the walk
/// phase runs the fused 8-lane interleaved kernel, whose memory-level
/// parallelism wins when the frontier is too sparse for radix-binned CSR
/// reads to coalesce (measured decisively on the benchmark box at
/// per-query sizes — see `BENCH_query.json`'s protocol note); at or
/// above it the level-synchronous wavefront takes over, where one
/// level's sorted sweep amortizes across many walks per adjacency
/// region. Both kernels consume the same cache hooks and workspace
/// scratch, so the switch is purely an execution-strategy decision.
const WAVEFRONT_MIN_WALKS: usize = 4_096;

/// Walk-draw granularity of deadline-bounded queries: the wall clock is
/// consulted only between chunks of this many √c-walks (each folded into
/// the estimators immediately), so the worst-case overrun past a
/// deadline is one chunk's sampling plus its backward walks, while the
/// fused walk kernel still gets frontiers large enough to amortize its
/// lane setup.
const DEADLINE_CHUNK_WALKS: usize = 1_024;

/// Instrumentation counters for one single-source query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// √c-walks sampled from the query node.
    pub walks: usize,
    /// Walks that died (dangling) and contributed nothing.
    pub died: usize,
    /// Walks whose follow-up pair met (η rejection).
    pub pair_met: usize,
    /// Backward walks executed (non-hub terminals).
    pub backward_walks: usize,
    /// Total neighbor visits inside backward walks.
    pub backward_cost: usize,
    /// Index entries scanned while assembling `ŝ_I`.
    pub index_entries: usize,
    /// Walks resolved by a cached terminal draw (the walk hit a cached
    /// node and consumed a pre-drawn sample instead of chasing pointers).
    pub cached_terminals: usize,
    /// η tests resolved by a cached verdict bit (no pair walk run).
    pub cached_eta: usize,
    /// Largest wavefront frontier carried across a level in this query.
    pub wavefront_peak: usize,
    /// Hub terminals whose paged postings run could not be read (I/O
    /// fault, bit-rot, or an exhausted memory budget) and were estimated
    /// by a live backward walk instead. Always 0 on a resident arena.
    pub page_fallbacks: usize,
    /// Whether this query shed work: a per-request deadline cut sampling
    /// short, or a paged postings run faulted and fell back to a live
    /// backward walk (`page_fallbacks`). The scores remain an unbiased
    /// estimate, at correspondingly higher variance.
    pub degraded: bool,
}

/// Fixed base seed of the engine-built walk-cache pools (mixed per pool
/// and per refill generation inside [`WalkCache`]). A constant keeps
/// engine builds deterministic: two engines over the same graph and
/// config hold identical pools.
const WALK_CACHE_SEED: u64 = 0x57A1_CACE_0BEA_CE5D;

/// A built PRSim engine, ready to answer single-source queries.
#[derive(Clone, Debug)]
pub struct Prsim {
    graph: DiGraph,
    pi: Vec<f64>,
    index: PrsimIndex,
    config: PrsimConfig,
    /// Survival table for geometric walk-length draws (one per engine).
    geom: GeomLenTable,
    /// Pre-drawn terminal/η pools for the top-π nodes (None when
    /// `walk_cache_budget` is 0).
    cache: Option<WalkCache>,
    dr: usize,
    fr: usize,
}

impl Prsim {
    /// Runs the full preprocessing pipeline of Algorithm 1 and returns a
    /// query-ready engine. The graph is consumed because its out-adjacency
    /// is re-permuted (counting-sorted by target in-degree).
    pub fn build(mut graph: DiGraph, config: PrsimConfig) -> Result<Self, PrsimError> {
        config.validate()?;
        if !graph.is_out_sorted_by_in_degree() {
            sort_out_by_in_degree(&mut graph);
        }
        let sqrt_c = config.sqrt_c();
        let pi = reverse_pagerank(&graph, sqrt_c, 1e-12, config.max_level);
        let j0 = config
            .hubs
            .resolve(graph.node_count(), graph.avg_degree(), config.eps);
        // One π ranking serves both consumers: the top j₀ become index
        // hubs, the top `walk_cache_budget` get pre-sampled walk pools.
        let order = rank_by_pagerank(&pi);
        let hubs: Vec<NodeId> = order.iter().take(j0).copied().collect();
        let (index, _) = PrsimIndex::build_tracked_with(
            &graph,
            hubs,
            sqrt_c,
            config.r_max(),
            config.max_level,
            config.build_threads,
            config.reserve_precision,
        );
        Self::from_parts_full(graph, pi, index, config, None, Some(order))
    }

    /// Assembles an engine from precomputed parts (e.g. a deserialized
    /// index). The graph must already be out-sorted by in-degree.
    pub fn from_parts(
        graph: DiGraph,
        pi: Vec<f64>,
        index: PrsimIndex,
        config: PrsimConfig,
    ) -> Result<Self, PrsimError> {
        Self::from_parts_full(graph, pi, index, config, None, None)
    }

    /// [`Prsim::from_parts`] with an optional pre-built walk cache (the
    /// dynamic engine threads its incrementally-maintained cache through
    /// here instead of redrawing pools on every update) and an optional
    /// precomputed descending-π ranking (saves the `O(n log n)` re-rank
    /// when the caller — [`Prsim::build`] — already holds one).
    pub(crate) fn from_parts_full(
        graph: DiGraph,
        pi: Vec<f64>,
        index: PrsimIndex,
        config: PrsimConfig,
        cache: Option<WalkCache>,
        order_hint: Option<Vec<NodeId>>,
    ) -> Result<Self, PrsimError> {
        config.validate()?;
        // A deserialized index carries its own precision; hold it to the
        // same quantization-vs-eps budget the build path enforces, so a
        // small-eps config cannot silently query an f32 arena.
        crate::config::validate_reserve_precision(index.precision(), config.eps, config.c)?;
        if !graph.is_out_sorted_by_in_degree() {
            return Err(PrsimError::InvalidConfig(
                "graph must be out-sorted by in-degree (run sort_out_by_in_degree)".into(),
            ));
        }
        if pi.len() != graph.node_count() {
            return Err(PrsimError::InvalidConfig(format!(
                "reverse-PageRank vector has {} entries for {} nodes",
                pi.len(),
                graph.node_count()
            )));
        }
        let (dr, fr) = config
            .query
            .resolve(graph.node_count(), config.c, config.eps, config.delta);
        let geom = GeomLenTable::new(config.sqrt_c(), config.max_level);
        let cache = match cache {
            Some(cache) => Some(cache),
            None if config.walk_cache_budget > 0 => {
                let order = order_hint.unwrap_or_else(|| rank_by_pagerank(&pi));
                Some(WalkCache::build(
                    &graph,
                    &geom,
                    &order,
                    config.walk_cache_budget,
                    pool_samples(dr * fr),
                    WALK_CACHE_SEED,
                ))
            }
            None => None,
        };
        Ok(Prsim {
            graph,
            pi,
            index,
            config,
            geom,
            cache,
            dr,
            fr,
        })
    }

    /// Disassembles the engine into its parts. The dynamic engine uses
    /// this to mutate graph/π/index/cache in place and cheaply reassemble
    /// via [`Prsim::from_parts_full`] without cloning CSR-sized state.
    #[allow(clippy::type_complexity)] // the engine's five parts, once
    pub(crate) fn into_parts(
        self,
    ) -> (
        DiGraph,
        Vec<f64>,
        PrsimIndex,
        PrsimConfig,
        Option<WalkCache>,
    ) {
        (self.graph, self.pi, self.index, self.config, self.cache)
    }

    /// The walk-engine terminal-sample cache, when enabled.
    pub fn walk_cache(&self) -> Option<&WalkCache> {
        self.cache.as_ref()
    }

    /// Builds the cache's dynamic-invalidation masks over the engine's
    /// graph if the cache exists and lacks them (no-op otherwise). Called
    /// by [`crate::DynamicPrsim`] after every (re)assembly.
    pub(crate) fn ensure_cache_masks(&mut self) {
        if let Some(cache) = &mut self.cache {
            cache.ensure_masks(&self.graph, self.config.max_level);
        }
    }

    /// The underlying (out-sorted) graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The reverse-PageRank vector `π` computed during preprocessing.
    pub fn reverse_pagerank(&self) -> &[f64] {
        &self.pi
    }

    /// The hub index.
    pub fn index(&self) -> &PrsimIndex {
        &self.index
    }

    /// Demotes the hub index's postings arena to a v4 page file at
    /// `path` and reopens it paged under `opts`' memory budget (see
    /// [`PrsimIndex::page_out`]). On `Err` the engine is unchanged and
    /// keeps serving the resident arena.
    pub fn page_out_index(
        &mut self,
        storage: std::sync::Arc<dyn prsim_storage::Storage>,
        path: &std::path::Path,
        opts: &crate::paging::PagedOptions,
    ) -> Result<(), PrsimError> {
        self.index.page_out(storage, path, opts)
    }

    /// The engine configuration.
    pub fn config(&self) -> &PrsimConfig {
        &self.config
    }

    /// Overrides the configured [`QueryPlan`] in place. Both plans draw
    /// the same RNG stream, so flipping the plan between queries is a
    /// measurement tool (the interleaved fused-vs-reference protocol in
    /// `query_hot`), not a semantic switch: estimates differ only by the
    /// final-level reassociation bound documented on [`QueryPlan`].
    pub fn set_query_plan(&mut self, plan: QueryPlan) {
        self.config.plan = plan;
    }

    /// Resolved per-round sample count `d_r` and round count `f_r`.
    pub fn sample_counts(&self) -> (usize, usize) {
        (self.dr, self.fr)
    }

    /// Answers a single-pair query `ŝ(u, v)` via the √c-walk meeting
    /// probability, using `d_r·f_r` walk pairs (the classic Monte-Carlo
    /// estimator over the engine's graph and decay factor).
    pub fn single_pair<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        v: NodeId,
        rng: &mut R,
    ) -> Result<f64, PrsimError> {
        let n = self.graph.node_count();
        for node in [u, v] {
            if node as usize >= n {
                return Err(PrsimError::NodeOutOfRange { node, n });
            }
        }
        if u == v {
            return Ok(1.0);
        }
        let nr = self.dr * self.fr;
        let inv_nr = 1.0 / nr as f64;
        let mut meets = 0usize;
        for _ in 0..nr {
            if sample_walks_meet_with_table(&self.graph, &self.geom, u, v, rng) {
                meets += 1;
            }
        }
        Ok(meets as f64 * inv_nr)
    }

    /// Answers a single-source SimRank query for `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`; use [`Prsim::try_single_source`] for a checked
    /// variant.
    pub fn single_source<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> SimRankScores {
        self.try_single_source(u, rng)
            .expect("query node out of range")
            .0
    }

    /// [`Prsim::single_source`] against a caller-owned scratch workspace:
    /// no per-query allocation after the workspace has warmed up, and
    /// results bit-identical to the allocating entry point.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`; use [`Prsim::try_single_source_with_workspace`]
    /// for a checked variant.
    pub fn single_source_with_workspace<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> SimRankScores {
        self.try_single_source_with_workspace(u, ws, rng)
            .expect("query node out of range")
            .0
    }

    /// Single-source query with an explicit per-round sample count
    /// (`f_r = 1`), used by the adaptive top-k driver.
    pub fn single_source_with_samples<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        samples: usize,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let mut ws = QueryWorkspace::new();
        self.run_query(u, samples.max(1), 1, &mut ws, rng)
    }

    /// [`Prsim::single_source_with_samples`] against a caller-owned
    /// scratch workspace.
    pub fn single_source_with_samples_with_workspace<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        samples: usize,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        self.run_query(u, samples.max(1), 1, ws, rng)
    }

    /// The worker count [`Prsim::batch_single_source`] actually uses for
    /// `queries` when asked for `requested` threads: capped at the
    /// hardware parallelism (oversubscribing a box only adds scheduling
    /// overhead — measured *negative* scaling pre-cap) and sized so every
    /// worker gets at least [`Prsim::MIN_BATCH_QUERIES_PER_THREAD`]
    /// queries before the batch splits further.
    pub fn effective_batch_threads(queries: usize, requested: usize) -> usize {
        let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
        requested
            .max(1)
            .min(hardware)
            .min(queries.div_ceil(Self::MIN_BATCH_QUERIES_PER_THREAD).max(1))
    }

    /// Minimum queries per worker before [`Prsim::batch_single_source`]
    /// splits a batch across another thread (spawn + cold-workspace cost
    /// must amortize over real work).
    pub const MIN_BATCH_QUERIES_PER_THREAD: usize = 8;

    /// Runs `queries` in parallel over at most `threads` workers (capped
    /// by [`Prsim::effective_batch_threads`]). Each query gets an RNG
    /// seeded `base_seed + query index` and workspace reuse is
    /// bit-identical to fresh workspaces, so results are identical to
    /// serial execution and independent of scheduling and of the cap.
    ///
    /// Lock-free: each worker owns a disjoint `&mut` chunk of the output
    /// plus its own [`QueryWorkspace`]; no result ever crosses a mutex.
    pub fn batch_single_source(
        &self,
        queries: &[NodeId],
        threads: usize,
        base_seed: u64,
    ) -> Result<Vec<SimRankScores>, PrsimError> {
        for &u in queries {
            if u as usize >= self.graph.node_count() {
                return Err(PrsimError::NodeOutOfRange {
                    node: u,
                    n: self.graph.node_count(),
                });
            }
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let threads = Self::effective_batch_threads(queries.len(), threads);
        let mut slots: Vec<Option<SimRankScores>> = vec![None; queries.len()];
        if threads <= 1 {
            let mut ws = QueryWorkspace::new();
            for (i, (&u, slot)) in queries.iter().zip(slots.iter_mut()).enumerate() {
                let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed + i as u64);
                *slot = Some(
                    self.try_single_source_with_workspace(u, &mut ws, &mut rng)
                        .map(|(s, _)| s)
                        .expect("node range pre-checked"),
                );
            }
        } else {
            let chunk = queries.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, (q_chunk, s_chunk)) in queries
                    .chunks(chunk)
                    .zip(slots.chunks_mut(chunk))
                    .enumerate()
                {
                    scope.spawn(move || {
                        let mut ws = QueryWorkspace::new();
                        for (j, (&u, slot)) in q_chunk.iter().zip(s_chunk.iter_mut()).enumerate() {
                            let i = t * chunk + j;
                            let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed + i as u64);
                            *slot = Some(
                                self.try_single_source_with_workspace(u, &mut ws, &mut rng)
                                    .map(|(s, _)| s)
                                    .expect("node range pre-checked"),
                            );
                        }
                    });
                }
            });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all queries processed"))
            .collect())
    }

    /// Checked single-source query returning instrumentation counters.
    pub fn try_single_source<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let mut ws = QueryWorkspace::new();
        self.run_query(u, self.dr, self.fr, &mut ws, rng)
    }

    /// Checked single-source query against a caller-owned workspace.
    pub fn try_single_source_with_workspace<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        self.run_query(u, self.dr, self.fr, ws, rng)
    }

    /// Checked single-source query under an optional wall-clock budget.
    ///
    /// `timeout = None` *is* [`Prsim::try_single_source`] — the same
    /// code path, the same RNG stream, bit-identical scores. With a
    /// budget, the walk phase draws in `DEADLINE_CHUNK_WALKS`-sized
    /// chunks and stops sampling once the deadline passes: the returned
    /// scores are the estimate over the samples drawn so far (every
    /// estimator denominator is rescaled to the realized sample count,
    /// so truncation costs variance, not bias) and
    /// [`QueryStats::degraded`] reports whether any work was shed.
    pub fn try_single_source_with_deadline<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        timeout: Option<Duration>,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let mut ws = QueryWorkspace::new();
        self.try_single_source_with_deadline_with_workspace(u, timeout, &mut ws, rng)
    }

    /// [`Prsim::try_single_source_with_deadline`] against a caller-owned
    /// scratch workspace.
    pub fn try_single_source_with_deadline_with_workspace<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        timeout: Option<Duration>,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        match timeout {
            None => self.run_query(u, self.dr, self.fr, ws, rng),
            Some(budget) => {
                let deadline = Instant::now() + budget;
                self.run_query_deadline(u, self.dr, self.fr, deadline, ws, rng)
            }
        }
    }

    /// The query plan this engine actually runs: the configured
    /// [`QueryPlan`], with `Auto` resolved to `Fused` while the postings
    /// arena is memory-resident (see [`PrsimIndex::is_resident`]) and
    /// `Reference` otherwise. Both plans consume identical RNG streams;
    /// see [`QueryPlan`] for the numeric contract between them.
    pub fn query_plan(&self) -> QueryPlan {
        match self.config.plan {
            QueryPlan::Fused => QueryPlan::Fused,
            QueryPlan::Reference => QueryPlan::Reference,
            QueryPlan::Auto => {
                if self.index.is_resident() {
                    QueryPlan::Fused
                } else {
                    QueryPlan::Reference
                }
            }
        }
    }

    fn run_query<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        dr: usize,
        fr: usize,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        match self.query_plan() {
            QueryPlan::Reference => self.run_query_reference(u, dr, fr, ws, rng),
            _ => self.run_query_fused(u, dr, fr, ws, rng),
        }
    }

    /// The fused query plan ([`QueryPlan::Fused`]): same sampling phases
    /// and RNG stream as the reference pipeline, but the back half never
    /// materializes an intermediate sorted buffer —
    ///
    /// * each non-hub terminal's VBBW folds its final level straight
    ///   into the dense accumulator
    ///   ([`variance_bounded_backward_walk_fold_with_workspace`]), with
    ///   next-level CSR lines prefetched inside the walk and the next
    ///   terminal's root adjacency prefetched across walks;
    /// * each accepted hub terminal's postings run — resolved by one
    ///   `bounds` offset probe ([`PrsimIndex::postings`]) — is scattered
    ///   into the same accumulator by the branchless 8-lane kernel
    ///   ([`Postings::scatter_into`]);
    /// * final assembly is one radix sort of the touched node ids; no
    ///   per-entry pair sort, no coalesce, no two-pointer merge.
    ///
    /// The dense accumulator is written unconditionally at every graph
    /// size (the reference plan's streaming mode exists to avoid random
    /// writes over a large node universe, but the measured crossover
    /// favors the scatter once the pair sort is gone — see
    /// `BENCH_query.json`). Per-node addition order is chronological
    /// exactly as in the reference plan, so estimates differ only by the
    /// documented final-level fold reassociation.
    fn run_query_fused<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        dr: usize,
        fr: usize,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let n = self.graph.node_count();
        if u as usize >= n {
            return Err(PrsimError::NodeOutOfRange { node: u, n });
        }
        let sqrt_c = self.config.sqrt_c();
        let alpha = 1.0 - sqrt_c;
        let alpha2 = alpha * alpha;
        let nr = dr * fr;
        let inv_nr = 1.0 / nr as f64;
        let backward_scale = 1.0 / (alpha2 * dr as f64);
        let mut stats = QueryStats::default();

        let QueryWorkspace {
            backward,
            round,
            acc,
            hub_memo,
            terminals,
            term_buf,
            pair_buf,
            met_buf,
            round_entries,
            median_buf,
            wave,
            cache_cursors,
            pair_idx,
            pair_met,
            sample_buf,
            pages,
            ..
        } = ws;
        let graph = &self.graph;
        let index = &self.index;
        let cache = self.cache.as_ref();
        if let Some(cache) = cache {
            cache_cursors.begin(cache.pool_count());
        }
        hub_memo.begin(n);
        terminals.clear();
        round_entries.clear();
        if fr > 1 {
            acc.begin(n);
        }

        for _ in 0..fr {
            // Per-round backward estimator ŝ_B^i, always on dense
            // scratch; with a single round it accumulates straight into
            // `acc` alongside ŝ_I.
            let round: &mut DenseScratch = if fr == 1 { &mut *acc } else { &mut *round };
            round.begin(n);

            sample_buf.clear();
            stats.walks += dr;
            let wstats: WaveStats = match cache {
                Some(cache) => {
                    let mut session = cache.session(cache_cursors);
                    walk_phase::<_, _, true>(
                        graph,
                        &self.geom,
                        u,
                        dr,
                        &mut session,
                        sample_buf,
                        term_buf,
                        pair_buf,
                        pair_idx,
                        pair_met,
                        met_buf,
                        wave,
                        rng,
                    )
                }
                None => walk_phase::<_, _, true>(
                    graph,
                    &self.geom,
                    u,
                    dr,
                    &mut NoDraws,
                    sample_buf,
                    term_buf,
                    pair_buf,
                    pair_idx,
                    pair_met,
                    met_buf,
                    wave,
                    rng,
                ),
            };
            stats.died += wstats.died;
            stats.cached_terminals += wstats.cache_hits;
            stats.cached_eta += wstats.eta_hits;
            stats.wavefront_peak = stats.wavefront_peak.max(wstats.peak_frontier);

            // Phase 3, fused: accepted samples fold into η̂π and straight
            // into the round accumulator. A two-deep software pipeline
            // runs across terminals: while terminal i's walk chases its
            // frontier, terminal i+1's root adjacency is already on its
            // way up the cache hierarchy.
            for i in 0..sample_buf.len() {
                let (w, level, met) = sample_buf[i];
                if let Some(&(wn, _, met_n)) = sample_buf.get(i + 1) {
                    if !met_n {
                        hub_memo.prefetch(wn);
                        index.prefetch_lookup(wn);
                        graph.prefetch_out_offsets(wn);
                        graph.prefetch_out_lists(wn);
                    }
                }
                if met {
                    stats.pair_met += 1;
                    continue;
                }
                terminals.push((w, level));
                if !hub_memo.get_or_insert_with(w, || index.contains(w)) {
                    stats.backward_walks += 1;
                    stats.backward_cost += variance_bounded_backward_walk_fold_with_workspace(
                        graph,
                        sqrt_c,
                        w,
                        level as usize,
                        backward,
                        rng,
                        |v, pi_hat| round.add(v, pi_hat * backward_scale),
                    );
                }
            }
            if fr > 1 {
                // Bank the round for the median pass; no per-round sort
                // (round_entries is sorted globally below).
                for (v, s) in round.iter() {
                    round_entries.push((v, s));
                }
            }
        }

        // Median trick over the f_r rounds (identical to the reference
        // plan's scatter mode).
        if fr > 1 {
            round_entries.sort_unstable_by_key(|&(v, _)| v);
            let mut i = 0usize;
            while i < round_entries.len() {
                let v = round_entries[i].0;
                median_buf.clear();
                while i < round_entries.len() && round_entries[i].0 == v {
                    median_buf.push(round_entries[i].1);
                    i += 1;
                }
                median_buf.resize(fr, 0.0);
                median_buf.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
                let mid = median_buf.len() / 2;
                let med = if median_buf.len() % 2 == 1 {
                    median_buf[mid]
                } else {
                    0.5 * (median_buf[mid - 1] + median_buf[mid])
                };
                if med != 0.0 {
                    acc.add(v, med);
                }
            }
        }

        // Index part ŝ_I, fused: every accepted run is resolved by one
        // offset probe and scattered branchlessly into `acc` — the run
        // *is* the aggregation unit; nothing is streamed or re-sorted.
        let threshold = self.config.eps * alpha2 / 12.0;
        terminals.sort_unstable();
        let mut i = 0usize;
        while i < terminals.len() {
            let key = terminals[i];
            let start = i;
            while i < terminals.len() && terminals[i] == key {
                i += 1;
            }
            let ep = (i - start) as f64 * inv_nr;
            // The next run's membership probe overlaps this run's
            // scatter instead of heading the next iteration's chain.
            if let Some(&(wn, _)) = terminals.get(i) {
                hub_memo.prefetch(wn);
                index.prefetch_lookup(wn);
            }
            let (w, level) = key;
            if ep <= threshold || !hub_memo.get_or_insert_with(w, || index.contains(w)) {
                continue;
            }
            match index.postings_in(w, level as usize, pages) {
                Ok(Some(postings)) => {
                    stats.index_entries += postings.len();
                    postings.scatter_into(acc, ep / alpha2);
                }
                Ok(None) => {}
                Err(_) => {
                    // Page fault: estimate π_ℓ(·,w) live instead of
                    // reading it — one VBBW scaled by the whole run's
                    // η̂π keeps the estimator unbiased, at higher
                    // variance. The response is flagged degraded.
                    stats.degraded = true;
                    stats.page_fallbacks += 1;
                    stats.backward_walks += 1;
                    let scale = ep / alpha2;
                    stats.backward_cost += variance_bounded_backward_walk_fold_with_workspace(
                        graph,
                        sqrt_c,
                        w,
                        level as usize,
                        backward,
                        rng,
                        |v, pi_hat| acc.add(v, pi_hat * scale),
                    );
                }
            }
        }

        // Final assembly: the accumulator already holds ŝ = ŝ_B + ŝ_I;
        // the terminal drain runs the touched-id radix sort with the
        // value gather fused into its last pass.
        let mut entries = Vec::new();
        acc.drain_sorted_into(&mut entries);
        let scores = SimRankScores::from_sorted_entries(u, n, entries);
        Ok((scores, stats))
    }

    /// The reference query plan ([`QueryPlan::Reference`]): the
    /// phase-separated pipeline (materialized backward estimates,
    /// size-adaptive scatter/streaming aggregation, radix sort +
    /// coalesce + merge). Kept intact as the differential baseline for
    /// the fused plan — and as the landing path for non-resident
    /// (paged) arenas once the out-of-core buffer manager exists.
    fn run_query_reference<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        dr: usize,
        fr: usize,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let n = self.graph.node_count();
        if u as usize >= n {
            return Err(PrsimError::NodeOutOfRange { node: u, n });
        }
        let sqrt_c = self.config.sqrt_c();
        let alpha = 1.0 - sqrt_c;
        let alpha2 = alpha * alpha;
        let nr = dr * fr;
        let inv_nr = 1.0 / nr as f64;
        let backward_scale = 1.0 / (alpha2 * dr as f64);
        let mut stats = QueryStats::default();

        let QueryWorkspace {
            backward,
            round,
            acc,
            hub_memo,
            terminals,
            term_buf,
            pair_buf,
            met_buf,
            round_entries,
            median_buf,
            ix_buf,
            ix_tmp,
            bw_buf,
            wave,
            cache_cursors,
            pair_idx,
            pair_met,
            sample_buf,
            pages,
        } = ws;
        let index = &self.index;
        let cache = self.cache.as_ref();
        if let Some(cache) = cache {
            // Arm the without-replacement cursors: one generation per
            // query, spanning all of its rounds.
            cache_cursors.begin(cache.pool_count());
        }
        hub_memo.begin(n);
        terminals.clear();
        round_entries.clear();
        bw_buf.clear();
        // Accumulation strategy for ŝ_B and ŝ_I alike: while the dense
        // per-node accumulator is cache-resident (small graphs), random
        // scatter into it is nearly free; above SCATTER_NODES_MAX every
        // contribution is streamed into a flat buffer and duplicates are
        // resolved by a stable radix sort + coalesce — no random writes
        // over the (large) node universe at all. Chronological per-node
        // addition order is identical either way, so the two strategies
        // produce bit-identical sums.
        let scatter = n <= SCATTER_NODES_MAX;
        if scatter && fr > 1 {
            acc.begin(n);
        }

        for _ in 0..fr {
            // Per-round backward estimator ŝ_B^i. Scatter mode runs it on
            // dense scratch (with a single round ŝ_B is the final
            // backward part, so it accumulates straight into `acc` and
            // skips the merge); streaming mode appends to `bw_buf`, which
            // is coalesced per round (fr > 1) or once at the end (fr = 1).
            let round: &mut DenseScratch = if fr == 1 { &mut *acc } else { &mut *round };
            if scatter {
                round.begin(n);
            } else if fr > 1 {
                bw_buf.clear();
            }

            // Phases 1+2: the round's √c-walk terminals and their η
            // verdicts, consuming cached pre-drawn samples wherever a
            // walk arrives at (or terminates on) a cached node. Execution
            // strategy is adaptive (see [`WAVEFRONT_MIN_WALKS`]): fused
            // 8-lane interleaving at per-query sizes, sorted wavefront on
            // large frontiers.
            sample_buf.clear();
            stats.walks += dr;
            let wstats: WaveStats = match cache {
                Some(cache) => {
                    let mut session = cache.session(cache_cursors);
                    walk_phase::<_, _, false>(
                        &self.graph,
                        &self.geom,
                        u,
                        dr,
                        &mut session,
                        sample_buf,
                        term_buf,
                        pair_buf,
                        pair_idx,
                        pair_met,
                        met_buf,
                        wave,
                        rng,
                    )
                }
                None => walk_phase::<_, _, false>(
                    &self.graph,
                    &self.geom,
                    u,
                    dr,
                    &mut NoDraws,
                    sample_buf,
                    term_buf,
                    pair_buf,
                    pair_idx,
                    pair_met,
                    met_buf,
                    wave,
                    rng,
                ),
            };
            stats.died += wstats.died;
            stats.cached_terminals += wstats.cache_hits;
            stats.cached_eta += wstats.eta_hits;
            stats.wavefront_peak = stats.wavefront_peak.max(wstats.peak_frontier);

            // Phase 3: fold accepted samples into η̂π and ŝ_B.
            for &(w, level, met) in sample_buf.iter() {
                if met {
                    stats.pair_met += 1;
                    continue;
                }
                // η̂π_ℓ(u, w) observation; aggregated after the rounds.
                terminals.push((w, level));
                if !hub_memo.get_or_insert_with(w, || index.contains(w)) {
                    stats.backward_walks += 1;
                    let est = variance_bounded_backward_walk_with_workspace(
                        &self.graph,
                        sqrt_c,
                        w,
                        level as usize,
                        backward,
                        rng,
                    );
                    stats.backward_cost += est.cost();
                    if scatter {
                        for (v, pi_hat) in est.iter() {
                            round.add(v, pi_hat * backward_scale);
                        }
                    } else {
                        for (v, pi_hat) in est.iter() {
                            bw_buf.push((v, pi_hat * backward_scale));
                        }
                    }
                }
            }
            if fr > 1 {
                if scatter {
                    // No per-round sort: round_entries is sorted globally
                    // by node id below, and the median pass re-sorts each
                    // node's values anyway.
                    for (v, s) in round.iter() {
                        round_entries.push((v, s));
                    }
                } else {
                    // Coalesce the round's stream (per-round per-node sums
                    // are what the median ranks) and bank it.
                    crate::workspace::radix_sort_pairs(bw_buf, ix_tmp);
                    coalesce_sorted(bw_buf);
                    round_entries.extend_from_slice(bw_buf);
                }
            }
        }
        if !scatter {
            if fr == 1 {
                // Single round: the stream *is* ŝ_B; coalesce it once.
                crate::workspace::radix_sort_pairs(bw_buf, ix_tmp);
                coalesce_sorted(bw_buf);
            } else {
                bw_buf.clear(); // rebuilt below from the medians
            }
        }

        // Median trick over the f_r rounds.
        if fr > 1 {
            // Group per node; the value order within a node is irrelevant
            // because the median sorts them anyway.
            round_entries.sort_unstable_by_key(|&(v, _)| v);
            let mut i = 0usize;
            while i < round_entries.len() {
                let v = round_entries[i].0;
                median_buf.clear();
                while i < round_entries.len() && round_entries[i].0 == v {
                    median_buf.push(round_entries[i].1);
                    i += 1;
                }
                // Untouched rounds contribute an implicit 0.
                median_buf.resize(fr, 0.0);
                median_buf.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
                let mid = median_buf.len() / 2;
                let med = if median_buf.len() % 2 == 1 {
                    median_buf[mid]
                } else {
                    0.5 * (median_buf[mid - 1] + median_buf[mid])
                };
                if med != 0.0 {
                    if scatter {
                        acc.add(v, med);
                    } else {
                        // round_entries is sorted by node, so the medians
                        // emerge in ascending order: bw_buf becomes the
                        // sorted coalesced ŝ_B directly.
                        bw_buf.push((v, med));
                    }
                }
            }
        }

        // Index part ŝ_I: threshold η̂π at ε/c₁ = ε(1−√c)²/12 (Alg. 4 line
        // 16). Sorting the flat observation list both aggregates the
        // per-(w, ℓ) counts and fixes the deterministic accumulation order
        // the old sorted-hash-map iteration provided.
        //
        // Postings aggregation follows the same `scatter` strategy the
        // rounds chose for ŝ_B above: scatter straight into `acc` while
        // the dense accumulator is cache-resident; above that size each
        // accepted hub terminal's run is *streamed sequentially* out of
        // the arena into a flat scaled buffer and duplicates are resolved
        // by a stable radix sort + coalesce over the (small) buffer —
        // no random writes over the (large) node universe at all.
        let threshold = self.config.eps * alpha2 / 12.0;
        terminals.sort_unstable();
        ix_buf.clear();
        let mut i = 0usize;
        while i < terminals.len() {
            let key = terminals[i];
            let start = i;
            while i < terminals.len() && terminals[i] == key {
                i += 1;
            }
            let ep = (i - start) as f64 * inv_nr;
            // The next run's membership probe overlaps this run's
            // scatter instead of heading the next iteration's chain.
            if let Some(&(wn, _)) = terminals.get(i) {
                hub_memo.prefetch(wn);
                index.prefetch_lookup(wn);
            }
            let (w, level) = key;
            if ep <= threshold || !hub_memo.get_or_insert_with(w, || index.contains(w)) {
                continue;
            }
            let scale = ep / alpha2;
            match index.postings_in(w, level as usize, pages) {
                Ok(Some(postings)) => {
                    stats.index_entries += postings.len();
                    // One match per slice, then a monomorphic sequential
                    // scan of the arena run.
                    match (scatter, postings) {
                        (true, Postings::F64 { nodes, reserves }) => {
                            acc.add_scaled(nodes, reserves, scale)
                        }
                        (true, Postings::F32 { nodes, reserves }) => {
                            acc.add_scaled_f32(nodes, reserves, scale)
                        }
                        (false, Postings::F64 { nodes, reserves }) => {
                            for (&v, &psi) in nodes.iter().zip(reserves) {
                                ix_buf.push((v, scale * psi));
                            }
                        }
                        (false, Postings::F32 { nodes, reserves }) => {
                            for (&v, &psi) in nodes.iter().zip(reserves) {
                                ix_buf.push((v, scale * f64::from(psi)));
                            }
                        }
                    }
                }
                Ok(None) => {}
                Err(_) => {
                    // Page fault: fall back to one live backward walk
                    // scaled by the run's η̂π (unbiased, higher variance)
                    // and flag the response degraded.
                    stats.degraded = true;
                    stats.page_fallbacks += 1;
                    stats.backward_walks += 1;
                    if scatter {
                        stats.backward_cost += variance_bounded_backward_walk_fold_with_workspace(
                            &self.graph,
                            sqrt_c,
                            w,
                            level as usize,
                            backward,
                            rng,
                            |v, pi_hat| acc.add(v, pi_hat * scale),
                        );
                    } else {
                        stats.backward_cost += variance_bounded_backward_walk_fold_with_workspace(
                            &self.graph,
                            sqrt_c,
                            w,
                            level as usize,
                            backward,
                            rng,
                            |v, pi_hat| ix_buf.push((v, pi_hat * scale)),
                        );
                    }
                }
            }
        }
        // Aggregate ŝ_I by node: stable radix sort keeps per-node addend
        // order (= accepted-terminal order), then coalesce adjacent runs.
        // (No-op on the scatter path: ix_buf stays empty.)
        crate::workspace::radix_sort_pairs(ix_buf, ix_tmp);
        coalesce_sorted(ix_buf);

        // Final assembly ŝ = ŝ_B + ŝ_I: two-pointer merge of the sorted
        // backward part (dense accumulator in scatter mode, coalesced
        // stream in streaming mode) and the sorted index buffer.
        let entries: Vec<(NodeId, f64)> = if scatter {
            acc.sort_touched();
            let mut entries = Vec::with_capacity(acc.len() + ix_buf.len() + 1);
            merge_sorted_into(acc.iter(), ix_buf, &mut entries);
            entries
        } else {
            let mut entries = Vec::with_capacity(bw_buf.len() + ix_buf.len() + 1);
            merge_sorted_into(bw_buf.iter().copied(), ix_buf, &mut entries);
            entries
        };
        let scores = SimRankScores::from_sorted_entries(u, n, entries);
        Ok((scores, stats))
    }

    /// Deadline-bounded variant of [`Prsim::run_query`]: the same
    /// estimator pipeline, but the per-round √c-walks are drawn in
    /// [`DEADLINE_CHUNK_WALKS`]-sized chunks that are folded into the
    /// estimators immediately, and sampling stops at the deadline. The
    /// backward scale `1/(α²·d_r)` and the joint-estimator denominator
    /// `1/n_r` are computed from the walks *actually drawn* — backward
    /// estimates are banked unscaled and rescaled once the round's
    /// realized sample count is known — so a truncated query returns an
    /// unbiased estimate over its smaller sample. Accumulation always
    /// runs in streaming mode (the deferred rescale is a flat multiply
    /// over the round's buffer there); the median trick ranks only the
    /// rounds that ran.
    fn run_query_deadline<R: Rng + ?Sized>(
        &self,
        u: NodeId,
        dr: usize,
        fr: usize,
        deadline: Instant,
        ws: &mut QueryWorkspace,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let n = self.graph.node_count();
        if u as usize >= n {
            return Err(PrsimError::NodeOutOfRange { node: u, n });
        }
        let sqrt_c = self.config.sqrt_c();
        let alpha = 1.0 - sqrt_c;
        let alpha2 = alpha * alpha;
        let mut stats = QueryStats::default();

        let QueryWorkspace {
            backward,
            hub_memo,
            terminals,
            round_entries,
            median_buf,
            ix_buf,
            ix_tmp,
            bw_buf,
            cache_cursors,
            sample_buf,
            pages,
            ..
        } = ws;
        let index = &self.index;
        let cache = self.cache.as_ref();
        if let Some(cache) = cache {
            cache_cursors.begin(cache.pool_count());
        }
        hub_memo.begin(n);
        terminals.clear();
        round_entries.clear();

        let mut total_walks = 0usize;
        let mut rounds_done = 0usize;
        let mut cut = false;
        for _ in 0..fr {
            bw_buf.clear();
            let mut round_walks = 0usize;
            while round_walks < dr {
                let chunk = (dr - round_walks).min(DEADLINE_CHUNK_WALKS);
                sample_buf.clear();
                let wstats: WaveStats = match cache {
                    Some(cache) => {
                        let mut session = cache.session(cache_cursors);
                        sample_walk_phase_interleaved(
                            &self.graph,
                            &self.geom,
                            u,
                            chunk,
                            &mut session,
                            sample_buf,
                            rng,
                        )
                    }
                    None => sample_walk_phase_interleaved(
                        &self.graph,
                        &self.geom,
                        u,
                        chunk,
                        &mut NoDraws,
                        sample_buf,
                        rng,
                    ),
                };
                round_walks += chunk;
                stats.walks += chunk;
                stats.died += wstats.died;
                stats.cached_terminals += wstats.cache_hits;
                stats.cached_eta += wstats.eta_hits;
                stats.wavefront_peak = stats.wavefront_peak.max(wstats.peak_frontier);
                // Fold the chunk now (phase 3), banking backward
                // estimates *unscaled*: the round's realized d_r is only
                // known once the deadline has had its say.
                for &(w, level, met) in sample_buf.iter() {
                    if met {
                        stats.pair_met += 1;
                        continue;
                    }
                    terminals.push((w, level));
                    if !hub_memo.get_or_insert_with(w, || index.contains(w)) {
                        stats.backward_walks += 1;
                        let est = variance_bounded_backward_walk_with_workspace(
                            &self.graph,
                            sqrt_c,
                            w,
                            level as usize,
                            backward,
                            rng,
                        );
                        stats.backward_cost += est.cost();
                        for (v, pi_hat) in est.iter() {
                            bw_buf.push((v, pi_hat));
                        }
                    }
                }
                if Instant::now() >= deadline {
                    cut = round_walks < dr;
                    break;
                }
            }
            total_walks += round_walks;
            rounds_done += 1;
            // Bank the round: coalesce the stream, then apply the
            // realized-sample backward scale.
            crate::workspace::radix_sort_pairs(bw_buf, ix_tmp);
            coalesce_sorted(bw_buf);
            let backward_scale = 1.0 / (alpha2 * round_walks as f64);
            for entry in bw_buf.iter_mut() {
                entry.1 *= backward_scale;
            }
            round_entries.extend_from_slice(bw_buf);
            if Instant::now() >= deadline {
                cut = cut || rounds_done < fr;
                break;
            }
        }

        // Median trick over the rounds that actually ran. With a single
        // round `bw_buf` already holds the final sorted coalesced ŝ_B.
        if rounds_done > 1 {
            bw_buf.clear();
            round_entries.sort_unstable_by_key(|&(v, _)| v);
            let mut i = 0usize;
            while i < round_entries.len() {
                let v = round_entries[i].0;
                median_buf.clear();
                while i < round_entries.len() && round_entries[i].0 == v {
                    median_buf.push(round_entries[i].1);
                    i += 1;
                }
                median_buf.resize(rounds_done, 0.0);
                median_buf.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
                let mid = median_buf.len() / 2;
                let med = if median_buf.len() % 2 == 1 {
                    median_buf[mid]
                } else {
                    0.5 * (median_buf[mid - 1] + median_buf[mid])
                };
                if med != 0.0 {
                    bw_buf.push((v, med));
                }
            }
        }

        // Index part ŝ_I, with the η̂π denominator rescaled to the walks
        // actually drawn.
        let inv_nr = 1.0 / total_walks as f64;
        let threshold = self.config.eps * alpha2 / 12.0;
        terminals.sort_unstable();
        ix_buf.clear();
        let mut i = 0usize;
        while i < terminals.len() {
            let key = terminals[i];
            let start = i;
            while i < terminals.len() && terminals[i] == key {
                i += 1;
            }
            let ep = (i - start) as f64 * inv_nr;
            // The next run's membership probe overlaps this run's
            // scatter instead of heading the next iteration's chain.
            if let Some(&(wn, _)) = terminals.get(i) {
                hub_memo.prefetch(wn);
                index.prefetch_lookup(wn);
            }
            let (w, level) = key;
            if ep <= threshold || !hub_memo.get_or_insert_with(w, || index.contains(w)) {
                continue;
            }
            let scale = ep / alpha2;
            match index.postings_in(w, level as usize, pages) {
                Ok(Some(postings)) => {
                    stats.index_entries += postings.len();
                    match postings {
                        Postings::F64 { nodes, reserves } => {
                            for (&v, &psi) in nodes.iter().zip(reserves) {
                                ix_buf.push((v, scale * psi));
                            }
                        }
                        Postings::F32 { nodes, reserves } => {
                            for (&v, &psi) in nodes.iter().zip(reserves) {
                                ix_buf.push((v, scale * f64::from(psi)));
                            }
                        }
                    }
                }
                Ok(None) => {}
                Err(_) => {
                    // Page fault under a deadline: same live-backward-walk
                    // fallback as the undeadlined plans.
                    stats.degraded = true;
                    stats.page_fallbacks += 1;
                    stats.backward_walks += 1;
                    stats.backward_cost += variance_bounded_backward_walk_fold_with_workspace(
                        &self.graph,
                        sqrt_c,
                        w,
                        level as usize,
                        backward,
                        rng,
                        |v, pi_hat| ix_buf.push((v, pi_hat * scale)),
                    );
                }
            }
        }
        crate::workspace::radix_sort_pairs(ix_buf, ix_tmp);
        coalesce_sorted(ix_buf);

        stats.degraded = stats.degraded || cut;
        let mut entries = Vec::with_capacity(bw_buf.len() + ix_buf.len() + 1);
        merge_sorted_into(bw_buf.iter().copied(), ix_buf, &mut entries);
        let scores = SimRankScores::from_sorted_entries(u, n, entries);
        Ok((scores, stats))
    }
}

/// One round's walk phase: `dr` √c-walk terminals from `u` with η
/// verdicts, resolved into `sample_buf` as `(w, ℓ, met)` triples.
/// Strategy-adaptive (see [`WAVEFRONT_MIN_WALKS`]): the fused
/// interleaved kernel below the threshold, the sorted wavefront pair of
/// kernels at or above it — both consuming the same [`TerminalDraws`]
/// cache hooks.
#[allow(clippy::too_many_arguments)] // threads the workspace's split borrows
fn walk_phase<R: Rng + ?Sized, C: TerminalDraws, const PF: bool>(
    graph: &DiGraph,
    geom: &GeomLenTable,
    u: NodeId,
    dr: usize,
    cache: &mut C,
    sample_buf: &mut Vec<(NodeId, u32, bool)>,
    term_buf: &mut Vec<(NodeId, u32)>,
    pair_buf: &mut Vec<(NodeId, NodeId)>,
    pair_idx: &mut Vec<u32>,
    pair_met: &mut Vec<bool>,
    met_buf: &mut Vec<bool>,
    wave: &mut WaveScratch,
    rng: &mut R,
) -> WaveStats {
    if dr < WAVEFRONT_MIN_WALKS {
        // `PF` picks the prefetch-hinted kernel (fused plan) or the
        // unhinted baseline (reference plan); both are draw-for-draw
        // identical. The wavefront regime below already reads the CSR
        // level-synchronously in sorted batches, so it takes no hint.
        return if PF {
            sample_walk_phase_interleaved_prefetch(graph, geom, u, dr, cache, sample_buf, rng)
        } else {
            sample_walk_phase_interleaved(graph, geom, u, dr, cache, sample_buf, rng)
        };
    }
    // Wavefront regime: terminals level-synchronously with radix-binned
    // CSR reads, then η — cached bits first, the remainder through the
    // wavefront pair kernel. Level-0 terminals are diagonal-only (the
    // engine pins ŝ(u,u) = 1) and dropped before the η phase, matching
    // the fused kernel's contract.
    term_buf.clear();
    let mut stats = sample_terminals_wavefront(graph, geom, u, dr, cache, term_buf, wave, rng);
    let before = term_buf.len();
    term_buf.retain(|&(_, l)| l > 0);
    stats.diagonal += before - term_buf.len();
    met_buf.clear();
    met_buf.resize(term_buf.len(), false);
    pair_buf.clear();
    pair_idx.clear();
    for (i, &(w, _)) in term_buf.iter().enumerate() {
        match cache.try_eta(w, rng) {
            Some(met) => {
                met_buf[i] = met;
                stats.eta_hits += 1;
            }
            None => {
                pair_buf.push((w, w));
                pair_idx.push(i as u32);
            }
        }
    }
    sample_pairs_meet_wavefront(graph, geom, pair_buf, pair_met, wave, rng);
    for (&i, &m) in pair_idx.iter().zip(pair_met.iter()) {
        met_buf[i as usize] = m;
    }
    sample_buf.extend(
        term_buf
            .iter()
            .zip(met_buf.iter())
            .map(|(&(w, l), &m)| (w, l, m)),
    );
    stats
}

/// Sums adjacent runs of equal node ids in a sorted `(node, value)`
/// buffer in place (append order within a run = chronological order, so
/// the float sums match a dense accumulator bit for bit).
fn coalesce_sorted(buf: &mut Vec<(NodeId, f64)>) {
    let mut write = 0usize;
    let mut read = 0usize;
    while read < buf.len() {
        let (v, mut sum) = buf[read];
        read += 1;
        while read < buf.len() && buf[read].0 == v {
            sum += buf[read].1;
            read += 1;
        }
        buf[write] = (v, sum);
        write += 1;
    }
    buf.truncate(write);
}

/// Two-pointer merge of a sorted backward part and the sorted index
/// buffer into `out`, summing nodes present in both.
fn merge_sorted_into(
    backward: impl Iterator<Item = (NodeId, f64)>,
    ix_buf: &[(NodeId, f64)],
    out: &mut Vec<(NodeId, f64)>,
) {
    let mut b_iter = backward.peekable();
    let mut j = 0usize;
    while let Some(&(bv, bs)) = b_iter.peek() {
        while j < ix_buf.len() && ix_buf[j].0 < bv {
            out.push(ix_buf[j]);
            j += 1;
        }
        if j < ix_buf.len() && ix_buf[j].0 == bv {
            out.push((bv, bs + ix_buf[j].1));
            j += 1;
        } else {
            out.push((bv, bs));
        }
        b_iter.next();
    }
    out.extend_from_slice(&ix_buf[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HubCount, QueryParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(eps: f64) -> PrsimConfig {
        PrsimConfig {
            eps,
            query: QueryParams::Practical { c_mult: 5.0 },
            ..Default::default()
        }
    }

    #[test]
    fn build_sorts_graph_and_selects_hubs() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(300, 6.0, 2.0, 5));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        assert!(engine.graph().is_out_sorted_by_in_degree());
        // SqrtN policy: j0 = ceil(sqrt(300)) = 18.
        assert_eq!(engine.index().hub_count(), 18);
        // Hubs really are the top-π nodes.
        let order = crate::pagerank::rank_by_pagerank(engine.reverse_pagerank());
        assert_eq!(engine.index().hubs(), &order[..18]);
    }

    #[test]
    fn self_score_is_one_and_range_checked() {
        let g = prsim_gen::toys::cycle(6);
        let engine = Prsim::build(g, cfg(0.2)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let s = engine.single_source(2, &mut rng);
        assert_eq!(s.get(2), 1.0);
        assert!(engine.try_single_source(6, &mut rng).is_err());
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 6.0, 2.0, 9));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for u in [0u32, 10, 100] {
            let s = engine.single_source(u, &mut rng);
            for (v, val) in s.iter() {
                assert!(
                    (0.0..=1.0 + 0.35).contains(&val),
                    "s({u},{v}) = {val} implausible"
                );
                assert!(val >= 0.0);
            }
        }
    }

    #[test]
    fn disconnected_components_have_zero_similarity() {
        let g = prsim_gen::toys::two_triangles();
        let engine = Prsim::build(g, cfg(0.05)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = engine.single_source(0, &mut rng);
        for v in 3..6 {
            assert_eq!(s.get(v), 0.0, "cross-component similarity must be 0");
        }
    }

    #[test]
    fn index_free_and_full_index_agree() {
        // j0 = 0 (pure backward walks) and j0 = n (pure index) must both
        // approximate the same function.
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 17));
        let mk = |hubs| PrsimConfig {
            hubs,
            eps: 0.05,
            query: QueryParams::Explicit { dr: 4000, fr: 1 },
            ..Default::default()
        };
        let free = Prsim::build(g.clone(), mk(HubCount::Fixed(0))).unwrap();
        let full = Prsim::build(g, mk(HubCount::Fixed(usize::MAX))).unwrap();
        assert_eq!(free.index().hub_count(), 0);
        assert_eq!(full.index().hub_count(), 120);
        let mut rng = StdRng::seed_from_u64(2);
        let a = free.single_source(5, &mut rng);
        let b = full.single_source(5, &mut rng);
        let diff = a.max_abs_diff(&b);
        assert!(diff < 0.12, "index-free vs full-index diff {diff}");
    }

    #[test]
    fn median_trick_rounds_produce_sane_output() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(100, 5.0, 2.0, 23));
        let config = PrsimConfig {
            query: QueryParams::Explicit { dr: 500, fr: 5 },
            ..cfg(0.1)
        };
        let engine = Prsim::build(g, config).unwrap();
        assert_eq!(engine.sample_counts(), (500, 5));
        let mut rng = StdRng::seed_from_u64(4);
        let (s, stats) = engine.try_single_source(0, &mut rng).unwrap();
        assert_eq!(stats.walks, 2500);
        assert_eq!(s.get(0), 1.0);
        for (_, val) in s.iter() {
            assert!(val >= 0.0 && val.is_finite());
        }
    }

    #[test]
    fn stats_account_for_every_walk() {
        let g =
            prsim_gen::chung_lu_directed(prsim_gen::ChungLuConfig::new(150, 5.0, 1.8, 3), 2.2, 7);
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let (_, stats) = engine.try_single_source(3, &mut rng).unwrap();
        let (dr, fr) = engine.sample_counts();
        assert_eq!(stats.walks, dr * fr);
        assert!(stats.died + stats.pair_met <= stats.walks);
        assert!(stats.backward_walks <= stats.walks - stats.died - stats.pair_met);
    }

    #[test]
    fn fused_and_reference_plans_report_identical_stats() {
        // Stats parity is part of the fused plan's contract: every
        // counter (wavefront_peak, cached_terminals, cached_eta, walk
        // accounting, index_entries, …) must read the same as the
        // reference plan on the same RNG stream — the fused plan changes
        // the execution schedule, never what is counted.
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(600, 6.0, 2.0, 19));
        let mut engine = Prsim::build(g, cfg(0.1)).unwrap();
        let mut exercised = QueryStats::default();
        for u in [0u32, 17, 255, 404] {
            engine.set_query_plan(QueryPlan::Fused);
            let mut rng = StdRng::seed_from_u64(100 + u as u64);
            let (sf, fused) = engine.try_single_source(u, &mut rng).unwrap();
            engine.set_query_plan(QueryPlan::Reference);
            let mut rng = StdRng::seed_from_u64(100 + u as u64);
            let (sr, reference) = engine.try_single_source(u, &mut rng).unwrap();
            assert_eq!(fused, reference, "stats diverged at source {u}");
            let diff = sf.max_abs_diff(&sr);
            assert!(diff < 1e-12, "plans diverged by {diff} at source {u}");
            exercised.pair_met += fused.pair_met;
            exercised.backward_walks += fused.backward_walks;
            exercised.index_entries += fused.index_entries;
            exercised.cached_terminals += fused.cached_terminals;
            exercised.cached_eta += fused.cached_eta;
        }
        // The parity claim is vacuous if the workload never exercises
        // the counters; this graph and seed set must light them all up.
        assert!(exercised.pair_met > 0, "no pair rejections exercised");
        assert!(exercised.backward_walks > 0, "no backward walks");
        assert!(exercised.index_entries > 0, "no index entries scanned");
        assert!(exercised.cached_terminals > 0, "no cache hits");
        assert!(exercised.cached_eta > 0, "no cached eta verdicts");
    }

    #[test]
    fn batch_matches_serial_and_is_schedule_independent() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 31));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let queries = [0u32, 7, 33, 99, 45, 12, 80];
        let serial = engine.batch_single_source(&queries, 1, 1234).unwrap();
        let parallel = engine.batch_single_source(&queries, 4, 1234).unwrap();
        assert_eq!(serial.len(), queries.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        // Out-of-range rejected before any work.
        assert!(engine.batch_single_source(&[0, 500], 2, 0).is_err());
    }

    #[test]
    fn batch_thread_cap_respects_hardware_and_chunk_floor() {
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        // Never above hardware, never above ceil(queries / 8), never 0.
        assert!(Prsim::effective_batch_threads(1000, 64) <= hw);
        assert_eq!(Prsim::effective_batch_threads(1000, 0), 1);
        assert_eq!(
            Prsim::effective_batch_threads(7, 4),
            1,
            "7 queries: 1 worker"
        );
        assert!(Prsim::effective_batch_threads(16, 4) <= 2);
        assert_eq!(
            Prsim::effective_batch_threads(usize::MAX, usize::MAX),
            hw,
            "huge batches saturate exactly the hardware"
        );
    }

    #[test]
    fn no_deadline_is_bit_identical_to_untimed() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(150, 5.0, 2.0, 11));
        let engine = Prsim::build(g, cfg(0.1)).unwrap();
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let (a, _) = engine.try_single_source(7, &mut rng_a).unwrap();
        let (b, stats) = engine
            .try_single_source_with_deadline(7, None, &mut rng_b)
            .unwrap();
        assert_eq!(a.max_abs_diff(&b), 0.0, "timeout=None must not perturb");
        assert!(!stats.degraded);
    }

    #[test]
    fn generous_deadline_completes_undegraded() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 13));
        let config = PrsimConfig {
            query: QueryParams::Explicit { dr: 800, fr: 3 },
            ..cfg(0.1)
        };
        let engine = Prsim::build(g, config).unwrap();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let (a, _) = engine.try_single_source(3, &mut rng_a).unwrap();
        let (b, stats) = engine
            .try_single_source_with_deadline(3, Some(Duration::from_secs(120)), &mut rng_b)
            .unwrap();
        assert!(!stats.degraded);
        assert_eq!(stats.walks, 2400, "all rounds must run to completion");
        // Same samples, same estimators; only the accumulation strategy
        // (streaming vs scatter) may differ, which reorders float adds.
        let diff = a.max_abs_diff(&b);
        assert!(diff < 1e-9, "generous deadline drifted by {diff}");
    }

    #[test]
    fn tight_deadline_degrades_gracefully() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 6.0, 2.0, 17));
        let config = PrsimConfig {
            query: QueryParams::Explicit { dr: 200_000, fr: 3 },
            ..cfg(0.1)
        };
        let engine = Prsim::build(g, config).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let (s, stats) = engine
            .try_single_source_with_deadline(0, Some(Duration::ZERO), &mut rng)
            .unwrap();
        // An already-expired deadline still processes the first chunk —
        // a degraded answer is an estimate, never an empty one.
        assert!(stats.degraded);
        assert!(stats.walks >= 1 && stats.walks < 600_000);
        assert_eq!(s.get(0), 1.0);
        for (_, val) in s.iter() {
            assert!(val.is_finite() && val >= 0.0);
        }
    }

    #[test]
    fn single_pair_matches_known_values() {
        let g = prsim_gen::toys::star_out(6);
        let engine = Prsim::build(
            g,
            PrsimConfig {
                query: QueryParams::Explicit { dr: 50_000, fr: 1 },
                ..cfg(0.05)
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        assert_eq!(engine.single_pair(2, 2, &mut rng).unwrap(), 1.0);
        let s = engine.single_pair(1, 2, &mut rng).unwrap();
        assert!((s - 0.6).abs() < 0.02, "s(1,2) = {s}, want 0.6");
        assert!(engine.single_pair(1, 99, &mut rng).is_err());
    }

    #[test]
    fn from_parts_validates() {
        let g = prsim_gen::toys::cycle(4); // unsorted
        let idx = PrsimIndex::empty(4);
        let err = Prsim::from_parts(g, vec![0.25; 4], idx, cfg(0.1));
        assert!(err.is_err(), "unsorted graph must be rejected");

        let mut g = prsim_gen::toys::cycle(4);
        prsim_graph::ordering::sort_out_by_in_degree(&mut g);
        let idx = PrsimIndex::empty(4);
        let err = Prsim::from_parts(g, vec![0.25; 3], idx, cfg(0.1));
        assert!(err.is_err(), "wrong-length π must be rejected");
    }

    #[test]
    fn from_parts_holds_loaded_f32_index_to_the_eps_budget() {
        // A deserialized f32 index must not bypass the quantization
        // guard: querying it with an eps below the f32 floor is exactly
        // the accuracy contract the config validation protects.
        use crate::index::ReservePrecision;
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 9));
        let narrow = Prsim::build(
            g,
            PrsimConfig {
                reserve_precision: ReservePrecision::F32,
                ..cfg(0.1)
            },
        )
        .unwrap();
        let bytes = narrow.index().to_bytes();
        let (graph, pi, _, _, _) = narrow.into_parts();
        let loaded = PrsimIndex::from_bytes(&bytes, graph.node_count()).unwrap();
        assert_eq!(loaded.precision(), ReservePrecision::F32);
        // Same index, tiny eps, default (f64) config precision: rejected.
        let err = Prsim::from_parts(graph.clone(), pi.clone(), loaded.clone(), cfg(1e-7));
        assert!(err.is_err(), "f32 index + eps below the floor accepted");
        // A generous eps is fine.
        Prsim::from_parts(graph, pi, loaded, cfg(0.1)).unwrap();
    }
}
