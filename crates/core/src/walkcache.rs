//! Per-node terminal-sample cache for the walk engine.
//!
//! Single-source PRSim queries are **walk-bound**: almost all query time
//! goes into sampling √c-walk terminals and η-pair verdicts, one
//! cache-missing CSR hop at a time. The paper's power-law analysis says
//! that walk mass concentrates on the few nodes with the largest reverse
//! PageRank — the same concentration that makes the hub index work — so
//! those nodes' terminal distributions can be **pre-sampled once** and
//! the draws reused across queries.
//!
//! For the top-`B` nodes by reverse PageRank (`B` =
//! [`crate::PrsimConfig::walk_cache_budget`]) the cache pre-draws and
//! stores, in one flat structure-of-arrays arena (the
//! [`crate::index`] postings-arena style):
//!
//! * a pool of **terminal samples** — full √c-walk outcomes
//!   `(terminal node, level)` from the cached node, with died walks
//!   stored as an explicit sentinel so the pool is an exchangeable
//!   sequence of honest draws, and
//! * a pool of **η-pair verdict bits** — one bit per pre-run pair of
//!   √c-walks from the cached node, recording whether they met at some
//!   step `i ≥ 1`.
//!
//! ```text
//! pos     : node ──────▶ pool rank          (dense, NOT_CACHED elsewhere)
//! nodes   : rank ──────▶ cached node id
//! bounds  : CSR offsets; pool r's samples are [bounds[r], bounds[r+1])
//! terms   : ┌──────────────────────────────────────────────┐
//!           │ (w,ℓ) (w,ℓ) … (pool 0) │ (w,ℓ) … (pool 1) │ …│
//!           └──────────────────────────────────────────────┘
//!           one packed u64 per sample (node | level << 32; DIED = died),
//!           so a hit costs a single random load
//! eta_bits: parallel verdict bitset (bit i of global sample index i)
//! ```
//!
//! ## Why consuming cached draws is still honest Monte Carlo
//!
//! A √c-walk's step count is geometric, hence **memoryless**: a walk
//! alive on arrival at node `x` — including the query source itself at
//! step 0, *before* the termination flip at `x` — has a future (number
//! of further steps and terminal) distributed exactly like a fresh
//! √c-walk from `x`. Substituting an independent pre-drawn sample
//! `(w, ℓ')` for that future therefore leaves the walk's terminal law
//! unchanged: a walk that arrives at `x` after `k` steps retires with
//! terminal `(w, k + ℓ')`, or dies when the pool sample died or the
//! composed level outlives the cap (both of which the truthful walk
//! would also have turned into a death). The same argument covers the
//! η test whole: it is one Bernoulli draw per terminal `w`, so a
//! pre-drawn verdict bit from `w`'s pool is exactly one realization of
//! it.
//!
//! **Within one query** draws are consumed *without replacement* through
//! per-pool cursors ([`CacheCursors`], held in the query workspace) that
//! start at a per-query random rotation: every consumed entry is a
//! distinct, untouched i.i.d. sample, so each query's estimate is an
//! unbiased Monte-Carlo draw with the same per-sample law as live
//! sampling, and a pool that runs dry mid-query simply falls back to
//! live sampling (the kernel reports a miss and keeps walking).
//!
//! **Across queries** the pools are shared, so estimates are
//! *correlated between queries*: two queries whose walks drain the same
//! pool region see overlapping samples (in the extreme — repeated
//! queries from the same cached source with `d_r` ≥ half the pool — the
//! terminal phase is nearly identical across runs, and only the
//! rotation, the η draws, and the backward walks vary). Each individual
//! answer still satisfies the single-query accuracy bound; what the
//! cache trades away is *independence between answers*. Callers that
//! need independent repeated estimates of the same query should disable
//! the cache (`walk_cache_budget = 0`). Pools hold
//! [`pool_samples`]`(n_r)` = `2·n_r` draws (capped) so the rotation has
//! room to decorrelate consecutive queries.
//!
//! ## Invalidation under edge updates
//!
//! An edge update `(a, b)` changes only `b`'s in-adjacency, so a pool at
//! `x` goes stale **iff a walk from `x` can visit `b`** — i.e. iff there
//! is a directed out-path `b → … → x` no longer than the walk cap. (A
//! path that first exists *because* of an inserted edge `(a, b)` must
//! itself pass through `b`, so reachability in the pre-update graph is
//! the exact criterion for inserts and deletes alike.) The cache keeps
//! this reachability as per-node **pool bitmasks** ([`ReachMasks`]):
//! `mask[y]` holds a bit per pool rank `r` iff `y` can out-reach the
//! cached node of `r`, computed by monotone bitset propagation along
//! out-edges and maintained as a sound over-approximation across
//! updates (inserts propagate new bits from the endpoint; deletes only
//! shrink true reachability, so the stale mask stays conservative).
//! [`crate::DynamicPrsim`] reads `mask[b]` to find the dirty pools,
//! refills exactly those against the updated graph, and reports the
//! count through `UpdateStats`/`DynamicTotals`.

use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::walk::{
    sample_terminal_with_table, sample_walks_meet_with_table, GeomLenTable, Terminal, TerminalDraws,
};

/// Sentinel in the dense `pos` table marking uncached nodes.
const NOT_CACHED: u32 = u32::MAX;

/// Sentinel in the terminal arena marking a died cached walk.
const DIED: u64 = u64::MAX;

/// Packs a terminal sample into one arena word (node in the low 32
/// bits, level above): a cache hit costs a single random load.
#[inline]
fn pack_sample(node: NodeId, level: u32) -> u64 {
    (u64::from(level) << 32) | u64::from(node)
}

/// Hard ceiling on per-pool sample counts, so huge `d_r` configurations
/// (the paper's literal constants) cannot balloon the cache; exhausted
/// pools fall back to live sampling, which only costs speed.
const MAX_POOL_SAMPLES: usize = 8192;

/// Floor on per-pool sample counts under the rank-decayed sizing: even
/// deep-tail pools keep enough draws that a typical query cannot drain
/// them (per-query consumption at rank `r` decays like the visit share,
/// which is far below this floor once the harmonic sizing kicks in).
const MIN_POOL_SAMPLES: usize = 32;

/// Top-rank pool size for a query budget of `nr = d_r·f_r` walks: twice
/// the per-query draw, so the per-query random rotation decorrelates
/// consecutive queries' consumption windows, capped at
/// `MAX_POOL_SAMPLES`.
pub fn pool_samples(nr: usize) -> usize {
    (2 * nr.max(1)).min(MAX_POOL_SAMPLES)
}

/// Per-rank pool size: the top-rank size decayed harmonically with the
/// pool's π rank. On power-law graphs the per-query consumption of pool
/// `r` scales with its visit share — roughly `1/r` under the paper's
/// degree exponents — so sizing pools the same way keeps every pool
/// bigger than what one query draws from it while the whole arena stays
/// `O(top·ln B + B·MIN)` instead of `O(top·B)`. A drained pool only
/// falls back to live sampling, so the sizing is a memory/correlation
/// knob, never a correctness one.
fn pool_samples_at_rank(top: usize, rank: usize) -> usize {
    (top / (1 + rank)).max(MIN_POOL_SAMPLES).min(top)
}

/// Per-pool reachability bitmasks driving dynamic invalidation (see the
/// module docs): `mask[y]` has bit `r` set iff node `y` can reach pool
/// `r`'s cached node along out-edges within the walk cap — equivalently,
/// iff walks from that cached node can visit `y`.
#[derive(Clone, Debug)]
pub struct ReachMasks {
    /// Words per node row (`⌈pools / 64⌉`).
    words: usize,
    /// `n · words` row-major bit rows.
    bits: Vec<u64>,
}

impl ReachMasks {
    fn row(&self, y: usize) -> &[u64] {
        &self.bits[y * self.words..(y + 1) * self.words]
    }

    /// Builds the masks by monotone bitset propagation: seed each cached
    /// node with its own bit, then sweep `mask[y] |= mask[z]` over every
    /// edge `(y → z)` until a fixpoint (or `max_rounds` sweeps — each
    /// sweep extends covered path length by at least one hop, so
    /// `max_rounds = max_level` covers every cap-bounded walk; in-place
    /// sweeps may propagate further, which only over-approximates and
    /// stays sound).
    fn build(g: &DiGraph, cached: &[NodeId], max_rounds: usize) -> Self {
        let n = g.node_count();
        let words = cached.len().div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        for (rank, &x) in cached.iter().enumerate() {
            bits[x as usize * words + rank / 64] |= 1u64 << (rank % 64);
        }
        // One scratch row reused across every node and sweep (a per-node
        // allocation here would dominate the build on wide masks).
        let mut acc = vec![0u64; words];
        for _ in 0..max_rounds.max(1) {
            let mut changed = false;
            for y in 0..n {
                acc.copy_from_slice(&bits[y * words..y * words + words]);
                for &z in g.out_neighbors(y as NodeId) {
                    for w in 0..words {
                        acc[w] |= bits[z as usize * words + w];
                    }
                }
                for w in 0..words {
                    if bits[y * words + w] != acc[w] {
                        bits[y * words + w] = acc[w];
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        ReachMasks { words, bits }
    }

    fn ensure_nodes(&mut self, n: usize) {
        if self.bits.len() < n * self.words {
            self.bits.resize(n * self.words, 0);
        }
    }

    /// Pool ranks whose bit is set in `b`'s row.
    fn dirty_pools(&self, b: NodeId) -> Vec<usize> {
        let y = b as usize;
        if (y + 1) * self.words > self.bits.len() {
            return Vec::new(); // node newer than the mask: unreachable
        }
        let mut out = Vec::new();
        for (w, &word) in self.row(y).iter().enumerate() {
            let mut bitsleft = word;
            while bitsleft != 0 {
                let bit = bitsleft.trailing_zeros() as usize;
                out.push(w * 64 + bit);
                bitsleft &= bitsleft - 1;
            }
        }
        out
    }

    /// Folds the new edge `(a → b)` into the masks: `a` gains `b`'s
    /// bits, and the gain propagates to everything that out-reaches `a`
    /// (walking the *in*-adjacency). Monotone, so termination is
    /// guaranteed; path-length bounds are ignored, which only
    /// over-approximates (sound).
    fn note_insert(&mut self, g_new: &DiGraph, a: NodeId, b: NodeId) {
        self.ensure_nodes(g_new.node_count());
        let words = self.words;
        let or_into = |bits: &mut Vec<u64>, dst: usize, src: usize| -> bool {
            let mut changed = false;
            for w in 0..words {
                let v = bits[src * words + w];
                if bits[dst * words + w] | v != bits[dst * words + w] {
                    bits[dst * words + w] |= v;
                    changed = true;
                }
            }
            changed
        };
        if !or_into(&mut self.bits, a as usize, b as usize) {
            return;
        }
        let mut worklist = vec![a];
        while let Some(y) = worklist.pop() {
            for &p in g_new.in_neighbors(y) {
                if or_into(&mut self.bits, p as usize, y as usize) {
                    worklist.push(p);
                }
            }
        }
    }

    fn resident_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// The terminal-sample cache: pre-drawn √c-walk terminals and η-pair
/// verdicts for the top-π nodes, consumed by the wavefront walk kernel
/// through per-query [`CacheCursors`]. See the module docs for layout,
/// honesty, and invalidation.
#[derive(Clone, Debug)]
pub struct WalkCache {
    /// Membership bitset over the node universe: the wavefront kernel
    /// probes this on **every** walk arrival, and at one bit per node it
    /// stays L1/L2-resident where the `pos` table would miss — the probe
    /// must be nearly free because the overwhelming majority of arrivals
    /// are at uncached nodes.
    member: Vec<u64>,
    /// Dense node → pool rank table ([`NOT_CACHED`] elsewhere).
    pos: Vec<u32>,
    /// Pool rank → cached node id (descending reverse PageRank).
    nodes: Vec<NodeId>,
    /// CSR offsets into the sample arena.
    bounds: Vec<u32>,
    /// Packed terminal samples ([`pack_sample`]); [`DIED`] for died
    /// walks. One word per sample so a hit is one random load.
    terms: Vec<u64>,
    /// η verdict bits, addressed by global sample index.
    eta_bits: Vec<u64>,
    /// Reachability masks (built on demand by the dynamic engine).
    masks: Option<ReachMasks>,
    /// Refill generation, mixed into refill seeds so redrawn pools are
    /// fresh realizations rather than replays.
    generation: u64,
    /// Base seed of the pool draws.
    seed: u64,
}

impl WalkCache {
    /// Builds pools for the first `budget` nodes of `order` (node ids in
    /// descending reverse-PageRank order — the hub ranking of Algorithm
    /// 1, which the engine computes once and reuses here), each holding
    /// `samples` pre-drawn terminals and η bits. Fully deterministic for
    /// a fixed `seed`.
    pub fn build(
        g: &DiGraph,
        table: &GeomLenTable,
        order: &[NodeId],
        budget: usize,
        samples: usize,
        seed: u64,
    ) -> Self {
        let picked = budget.min(order.len());
        let samples = samples.max(1);
        let mut cache = WalkCache {
            member: vec![0u64; g.node_count().div_ceil(64).max(1)],
            pos: vec![NOT_CACHED; g.node_count()],
            nodes: order[..picked].to_vec(),
            bounds: Vec::with_capacity(picked + 1),
            terms: Vec::with_capacity(picked * samples),
            eta_bits: Vec::new(), // sized after the arena layout below
            masks: None,
            generation: 0,
            seed,
        };
        // Lay the arena out first (rank-decayed pool sizes), then draw.
        cache.bounds.push(0);
        for rank in 0..picked {
            let x = cache.nodes[rank];
            cache.pos[x as usize] = rank as u32;
            cache.member[x as usize / 64] |= 1u64 << (x as usize % 64);
            let len = pool_samples_at_rank(samples, rank);
            cache.terms.resize(cache.terms.len() + len, 0);
            cache
                .bounds
                .push(u32::try_from(cache.terms.len()).expect("cache arena exceeds u32"));
        }
        cache.eta_bits = vec![0u64; cache.terms.len().div_ceil(64).max(1)];
        for rank in 0..picked {
            cache.fill_pool(g, table, rank);
        }
        cache
    }

    /// Redraws pool `rank`'s terminals and η bits against `g`, preserving
    /// draw order (pool entries must stay an exchangeable i.i.d.
    /// sequence — storing outcomes in draw order, died walks included, is
    /// what makes any without-replacement window an honest sample).
    fn fill_pool(&mut self, g: &DiGraph, table: &GeomLenTable, rank: usize) {
        let x = self.nodes[rank];
        let (s, e) = (self.bounds[rank] as usize, self.bounds[rank + 1] as usize);
        // One generator per (pool, generation): refills draw fresh
        // realizations, and pool fills are independent of each other.
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.generation.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        for i in s..e {
            match sample_terminal_with_table(g, table, x, &mut rng) {
                Terminal::At { node, level } => {
                    self.terms[i] = pack_sample(node, level);
                }
                Terminal::Died => {
                    self.terms[i] = DIED;
                }
            }
            let met = sample_walks_meet_with_table(g, table, x, x, &mut rng);
            let (word, bit) = (i / 64, i % 64);
            if met {
                self.eta_bits[word] |= 1u64 << bit;
            } else {
                self.eta_bits[word] &= !(1u64 << bit);
            }
        }
    }

    /// Number of pools (cached nodes).
    #[inline]
    pub fn pool_count(&self) -> usize {
        self.nodes.len()
    }

    /// The cached node ids in descending reverse-PageRank order.
    #[inline]
    pub fn cached_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether `w` has a pool.
    #[inline]
    pub fn is_cached(&self, w: NodeId) -> bool {
        self.pos.get(w as usize).is_some_and(|&p| p != NOT_CACHED)
    }

    /// Total pre-drawn terminal samples across all pools.
    pub fn sample_count(&self) -> usize {
        self.terms.len()
    }

    /// Resident bytes of the cache payload (pools, tables, and the
    /// reachability masks when built).
    pub fn resident_bytes(&self) -> usize {
        self.member.len() * 8
            + self.pos.len() * 4
            + self.nodes.len() * 4
            + self.bounds.len() * 4
            + self.terms.len() * 8
            + self.eta_bits.len() * 8
            + self.masks.as_ref().map_or(0, ReachMasks::resident_bytes)
    }

    /// Whether the reachability masks have been built.
    pub fn has_masks(&self) -> bool {
        self.masks.is_some()
    }

    /// Builds the invalidation masks over `g` if absent (the dynamic
    /// engine calls this once per (re)build; static engines never pay
    /// for them). `max_rounds` should be the walk cap.
    pub fn ensure_masks(&mut self, g: &DiGraph, max_rounds: usize) {
        if self.masks.is_none() {
            self.masks = Some(ReachMasks::build(g, &self.nodes, max_rounds));
        }
    }

    /// Extends the node universe to `n` (new nodes are uncached and,
    /// being unreachable until their first edge lands, have empty mask
    /// rows).
    pub fn ensure_nodes(&mut self, n: usize) {
        if n > self.pos.len() {
            self.pos.resize(n, NOT_CACHED);
        }
        if n.div_ceil(64) > self.member.len() {
            self.member.resize(n.div_ceil(64), 0);
        }
        if let Some(m) = &mut self.masks {
            m.ensure_nodes(n);
        }
    }

    /// The pool ranks an edge update `(_, b)` invalidates: pools whose
    /// walks can visit `b`, judged against the **pre-update** masks (the
    /// exact criterion for inserts and deletes alike — see the module
    /// docs). Falls back to "all pools" when the masks were never built,
    /// which is sound but repays the whole cache.
    pub fn dirty_pools(&self, b: NodeId) -> Vec<usize> {
        match &self.masks {
            Some(m) => m.dirty_pools(b),
            None => (0..self.nodes.len()).collect(),
        }
    }

    /// Folds an inserted edge `(a → b)` into the masks (call after
    /// [`WalkCache::dirty_pools`]; deletions need no mask maintenance —
    /// they only shrink true reachability, leaving the mask a sound
    /// over-approximation).
    pub fn note_insert(&mut self, g_new: &DiGraph, a: NodeId, b: NodeId) {
        if let Some(m) = &mut self.masks {
            m.note_insert(g_new, a, b);
        }
    }

    /// Redraws the given pools against the updated graph `g`. Bumps the
    /// refill generation so the new draws are fresh realizations.
    pub fn refill(&mut self, g: &DiGraph, table: &GeomLenTable, ranks: &[usize]) {
        if ranks.is_empty() {
            return;
        }
        self.generation = self.generation.wrapping_add(1);
        for &rank in ranks {
            self.fill_pool(g, table, rank);
        }
    }

    /// Binds the cache to a query's cursor state as a
    /// [`TerminalDraws`] supplier for the wavefront kernel.
    pub fn session<'a>(&'a self, cursors: &'a mut CacheCursors) -> CacheSession<'a> {
        CacheSession {
            cache: self,
            cursors,
        }
    }

    /// Consumes one pre-drawn terminal sample from `node`'s pool, if any
    /// remain this query. See [`TerminalDraws::try_draw`] for the return
    /// convention.
    /// Bitset membership probe — the only cache work the overwhelmingly
    /// common uncached arrival pays.
    #[inline(always)]
    fn member_bit(&self, node: NodeId) -> bool {
        let i = node as usize;
        self.member
            .get(i / 64)
            .is_some_and(|&w| w >> (i % 64) & 1 == 1)
    }

    #[inline]
    fn try_term_draw<R: Rng + ?Sized>(
        &self,
        cursors: &mut CacheCursors,
        node: NodeId,
        rng: &mut R,
    ) -> Option<Option<(NodeId, u32)>> {
        if !self.member_bit(node) {
            return None;
        }
        let rank = self.pos[node as usize] as usize;
        let (s, e) = (self.bounds[rank] as usize, self.bounds[rank + 1] as usize);
        let idx = cursors.term.next_index(rank, (e - s) as u32, rng)?;
        let i = s + idx as usize;
        let sample = self.terms[i];
        Some(if sample == DIED {
            None
        } else {
            Some((sample as u32, (sample >> 32) as u32))
        })
    }

    /// Consumes one pre-drawn η verdict from `w`'s pool, if any remain
    /// this query (`None`: uncached or exhausted — run a live pair).
    #[inline]
    pub fn try_eta_draw<R: Rng + ?Sized>(
        &self,
        cursors: &mut CacheCursors,
        w: NodeId,
        rng: &mut R,
    ) -> Option<bool> {
        if !self.member_bit(w) {
            return None;
        }
        let rank = self.pos[w as usize] as usize;
        let (s, e) = (self.bounds[rank] as usize, self.bounds[rank + 1] as usize);
        let idx = cursors.eta.next_index(rank, (e - s) as u32, rng)?;
        let i = s + idx as usize;
        Some(self.eta_bits[i / 64] >> (i % 64) & 1 == 1)
    }
}

/// A [`WalkCache`] bound to one query's cursors — the
/// [`TerminalDraws`] supplier handed to the wavefront kernel.
pub struct CacheSession<'a> {
    cache: &'a WalkCache,
    cursors: &'a mut CacheCursors,
}

impl TerminalDraws for CacheSession<'_> {
    #[inline]
    fn try_draw<R: Rng + ?Sized>(
        &mut self,
        node: NodeId,
        rng: &mut R,
    ) -> Option<Option<(NodeId, u32)>> {
        self.cache.try_term_draw(self.cursors, node, rng)
    }

    #[inline]
    fn try_eta<R: Rng + ?Sized>(&mut self, w: NodeId, rng: &mut R) -> Option<bool> {
        self.cache.try_eta_draw(self.cursors, w, rng)
    }
}

/// One epoch-stamped cursor set: per pool, how many draws this query has
/// consumed and the query's random rotation offset. The stamp trick is
/// the [`crate::workspace::DenseScratch`] invariant — `begin` costs
/// `O(1)` and a reused cursor set behaves bit-identically to a fresh one.
#[derive(Clone, Debug, Default)]
struct CursorSet {
    stamp: Vec<u32>,
    used: Vec<u32>,
    rot: Vec<u32>,
    epoch: u32,
}

impl CursorSet {
    fn begin(&mut self, pools: usize) {
        if self.stamp.len() < pools {
            self.stamp.resize(pools, 0);
            self.used.resize(pools, 0);
            self.rot.resize(pools, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// The next without-replacement index into a pool of `len` samples,
    /// or `None` when the query has drained it. The first touch of a
    /// pool in a query draws its rotation offset from the query RNG.
    #[inline]
    fn next_index<R: Rng + ?Sized>(&mut self, rank: usize, len: u32, rng: &mut R) -> Option<u32> {
        if len == 0 {
            return None;
        }
        if self.stamp[rank] != self.epoch {
            self.stamp[rank] = self.epoch;
            self.used[rank] = 0;
            self.rot[rank] = rng.gen_range(0..len);
        }
        let used = self.used[rank];
        if used == len {
            return None;
        }
        self.used[rank] = used + 1;
        let idx = self.rot[rank] + used;
        Some(if idx >= len { idx - len } else { idx })
    }
}

/// Per-query consumption state over a [`WalkCache`]'s pools: terminal
/// and η cursors, epoch-stamped so starting a query is `O(1)` and reuse
/// is bit-identical to a fresh instance. Lives in
/// [`crate::QueryWorkspace`] (one per thread); the cache itself is
/// immutable at query time, which is what keeps batch queries lock-free.
#[derive(Clone, Debug, Default)]
pub struct CacheCursors {
    term: CursorSet,
    eta: CursorSet,
}

impl CacheCursors {
    /// Creates an empty cursor state; buffers grow on first `begin`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new query over `pools` pools: all cursors reset.
    pub fn begin(&mut self, pools: usize) {
        self.term.begin(pools);
        self.eta.begin(pools);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{sample_terminals_wavefront, WaveScratch};

    const SQRT_C: f64 = 0.774_596_669_241_483_4; // sqrt(0.6)

    fn cycle_cache(samples: usize) -> (DiGraph, GeomLenTable, WalkCache) {
        let g = prsim_gen::toys::cycle(5);
        let table = GeomLenTable::new(SQRT_C, 64);
        let order: Vec<NodeId> = (0..5).collect();
        let cache = WalkCache::build(&g, &table, &order, 5, samples, 0xCACE);
        (g, table, cache)
    }

    #[test]
    fn pool_samples_scales_and_caps() {
        assert_eq!(pool_samples(500), 1000);
        assert_eq!(pool_samples(0), 2);
        assert_eq!(pool_samples(1_000_000), MAX_POOL_SAMPLES);
    }

    #[test]
    fn pools_hold_honest_terminal_draws() {
        // On a cycle the terminal node is a deterministic function of the
        // level; the pool must reproduce the geometric level law.
        let (_, _, cache) = cycle_cache(40_000);
        assert_eq!(cache.pool_count(), 5);
        assert!(cache.is_cached(0) && !cache.is_cached(5));
        let (s, e) = (cache.bounds[0] as usize, cache.bounds[1] as usize);
        let mut level_counts = [0usize; 6];
        for i in s..e {
            let sample = cache.terms[i];
            assert_ne!(sample, DIED, "no deaths on a cycle");
            let (w, l) = (sample as u32, (sample >> 32) as u32);
            assert_eq!(w, ((5i64 - l as i64 % 5) % 5) as u32);
            if (l as usize) < level_counts.len() {
                level_counts[l as usize] += 1;
            }
        }
        let total = (e - s) as f64;
        for (l, &count) in level_counts.iter().enumerate() {
            let want = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            let got = count as f64 / total;
            assert!(
                (got - want).abs() < 0.015,
                "level {l}: pool {got:.4} vs geometric {want:.4}"
            );
        }
        // η on a cycle: both walks move in lockstep through the unique
        // in-neighbor, so they meet iff both survive step 1: P = c.
        let met: u32 = (s..e)
            .map(|i| (cache.eta_bits[i / 64] >> (i % 64) & 1) as u32)
            .sum();
        let rate = met as f64 / total;
        assert!((rate - 0.6).abs() < 0.015, "eta meet rate {rate:.4}");
    }

    #[test]
    fn session_draws_without_replacement_then_exhausts() {
        let (_, _, cache) = cycle_cache(8);
        let mut cursors = CacheCursors::new();
        cursors.begin(cache.pool_count());
        let mut rng = StdRng::seed_from_u64(1);
        let mut session = cache.session(&mut cursors);
        let mut seen = Vec::new();
        for _ in 0..8 {
            let draw = session.try_draw(0, &mut rng);
            let inner = draw.expect("pool has samples");
            seen.push(inner);
        }
        assert!(
            session.try_draw(0, &mut rng).is_none(),
            "ninth draw must miss: pool drained this query"
        );
        // A new query generation re-arms the pool.
        cursors.begin(cache.pool_count());
        assert!(cache.try_term_draw(&mut cursors, 0, &mut rng).is_some());
        // η cursors are independent of terminal cursors.
        for _ in 0..8 {
            assert!(cache.try_eta_draw(&mut cursors, 0, &mut rng).is_some());
        }
        assert!(cache.try_eta_draw(&mut cursors, 0, &mut rng).is_none());
        // Uncached node: always a miss.
        assert!(cache.try_eta_draw(&mut cursors, 4_000, &mut rng).is_none());
    }

    #[test]
    fn cached_wavefront_matches_live_distribution() {
        // Terminals sampled *through* the cache must obey the same law as
        // live sampling: cycle source 1, large pools, many walks.
        let (g, table, cache) = cycle_cache(8192);
        let trials = 60_000usize;
        let mut ws = WaveScratch::new();
        let mut cursors = CacheCursors::new();
        let mut out = Vec::new();
        let mut level_counts = [0usize; 6];
        let mut rng = StdRng::seed_from_u64(0xFEED);
        let mut hits = 0usize;
        // Many small queries so the without-replacement windows rotate.
        for _ in 0..trials / 500 {
            cursors.begin(cache.pool_count());
            let mut session = cache.session(&mut cursors);
            out.clear();
            let stats = sample_terminals_wavefront(
                &g,
                &table,
                1,
                500,
                &mut session,
                &mut out,
                &mut ws,
                &mut rng,
            );
            assert_eq!(stats.died + out.len(), 500);
            hits += stats.cache_hits;
            for &(node, level) in &out {
                assert_eq!(node, ((6i64 - level as i64 % 5) % 5) as u32 % 5);
                if (level as usize) < level_counts.len() {
                    level_counts[level as usize] += 1;
                }
            }
        }
        assert!(hits > 0, "cached source must serve draws");
        // No deaths on a cycle, so the draw total is exactly the trial
        // count; 60k draws recycle an 8192-sample pool ~7x, so the
        // effective sample size is the pool's — tolerance sized for that.
        for (l, &count) in level_counts.iter().enumerate().take(4) {
            let want = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            let got = count as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.03,
                "level {l}: cached {got:.4} vs geometric {want:.4}"
            );
        }
    }

    #[test]
    fn masks_track_reachability_and_inserts() {
        // Path 0 -> 1 -> 2 (edges (0,1),(1,2)): walks from 2 can visit 1
        // and 0; walks from 0 visit only 0. Cache all three nodes.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2)]);
        let table = GeomLenTable::new(SQRT_C, 64);
        let order: Vec<NodeId> = vec![2, 1, 0];
        let mut cache = WalkCache::build(&g, &table, &order, 3, 4, 1);
        // Unbuilt masks: conservative full invalidation.
        assert_eq!(cache.dirty_pools(0), vec![0, 1, 2]);
        cache.ensure_masks(&g, 64);
        assert!(cache.has_masks());
        // b = 0: out-reaches 1 (rank 1) and 2 (rank 0) and itself (rank 2)
        // -> an edge into node 0 perturbs every pool.
        assert_eq!(cache.dirty_pools(0), vec![0, 1, 2]);
        // b = 2: only walks from 2 itself visit 2.
        assert_eq!(cache.dirty_pools(2), vec![0]);
        // b = 3: isolated, reaches nothing.
        assert!(cache.dirty_pools(3).is_empty());
        // Insert (2, 3): now 2 -> 3, so an edge into 3 perturbs pool 0
        // (walks from... node 3 out-reaches nothing yet; but node 2
        // gains nothing). Then insert (3, 0): 3 out-reaches 0's pools.
        let g2 = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        cache.note_insert(&g2, 2, 3);
        assert_eq!(cache.dirty_pools(2), vec![0]);
        let g3 = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        cache.note_insert(&g3, 3, 0);
        // 3 -> 0 means 3 now out-reaches 0, 1, 2: all pools dirty on an
        // edge into 3; and 2 (via 3) keeps its own.
        assert_eq!(cache.dirty_pools(3), vec![0, 1, 2]);
    }

    #[test]
    fn refill_redraws_against_the_new_graph() {
        // Cache node 0 on a 2-cycle, then re-point the graph so walks
        // from 0 land elsewhere; the refilled pool must reflect it.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0)]);
        let table = GeomLenTable::new(SQRT_C, 64);
        let mut cache = WalkCache::build(&g, &table, &[0], 1, 256, 7);
        let level1_before: Vec<NodeId> = (0..256)
            .filter(|&i| cache.terms[i] >> 32 == 1)
            .map(|i| cache.terms[i] as u32)
            .collect();
        assert!(
            level1_before.iter().all(|&w| w == 1),
            "in-neighbor of 0 is 1"
        );
        // New graph: 2 -> 0 replaces 1 -> 0.
        let g2 = DiGraph::from_edges(3, &[(0, 1), (2, 0)]);
        cache.refill(&g2, &table, &[0]);
        let level1_after: Vec<NodeId> = (0..256)
            .filter(|&i| cache.terms[i] >> 32 == 1)
            .map(|i| cache.terms[i] as u32)
            .collect();
        assert!(!level1_after.is_empty());
        assert!(
            level1_after.iter().all(|&w| w == 2),
            "refill must see 2 -> 0"
        );
        // Refill with no ranks is a no-op.
        let gen = cache.generation;
        cache.refill(&g2, &table, &[]);
        assert_eq!(cache.generation, gen);
    }

    #[test]
    fn resident_bytes_counts_pools_and_masks() {
        let (g, _, mut cache) = cycle_cache(64);
        let before = cache.resident_bytes();
        assert!(before > 0);
        cache.ensure_masks(&g, 64);
        assert!(cache.resident_bytes() > before, "masks add resident bytes");
        cache.ensure_nodes(10);
        assert!(!cache.is_cached(9));
    }
}
