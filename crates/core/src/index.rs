//! The PRSim hub index (paper Algorithm 1) on a flat postings arena.
//!
//! The index stores, for each of the `j₀` nodes with the largest reverse
//! PageRank ("hubs"), the level-wise backward-search reserves
//! `L_ℓ(w) = {(v, ψ_ℓ(v,w)) : ψ_ℓ(v,w) > r_max}`. At query time,
//! Algorithm 4 reads `π_ℓ(v, ·)` for hub terminals straight from these
//! lists instead of running backward walks, which is what caps the query
//! cost contribution of high-π nodes.
//!
//! ## Postings format
//!
//! Reserve lists live in one contiguous arena rather than per-hub nested
//! `Vec`s, so a query terminal `(w, ℓ)` resolves to a single sequential
//! scan and consecutive levels of the same hub are adjacent in memory:
//!
//! ```text
//! hub_pos: node ─────────▶ rank            (dense, NOT_A_HUB elsewhere)
//! slots:   rank ─────────▶ {bounds_start, levels}
//! bounds:  CSR offsets; hub r's run is bounds[start .. start+levels+1],
//!          monotone; level ℓ's postings are [bounds[start+ℓ], bounds[start+ℓ+1])
//! nodes:   ┌─────────────────────────────────────────────────────┐
//!          │ v v v … (hub 0, ℓ=0) │ v v … (hub 0, ℓ=1) │ hub 1 … │
//!          └─────────────────────────────────────────────────────┘
//! reserves: parallel array of ψ values, f64 (default) or f32
//!           (structure-of-arrays: 12 or 8 bytes per entry, no padding)
//! ```
//!
//! Hub membership is one `hub_pos` probe; a postings lookup is two array
//! reads off the offset table — no binary search, no pointer chasing.
//!
//! **Repair** ([`PrsimIndex::repair_hubs`]) never shifts other hubs'
//! postings: a repaired hub's old run is *tombstoned* (its entries counted
//! in `dead_entries`) and the fresh run is appended at the arena tail,
//! with the hub's slot repointed. Once dead entries (or dead offset
//! slots) outnumber live ones the arena is compacted in rank order — the
//! same amortized-threshold pattern as [`prsim_graph::delta::DeltaGraph`]
//! — so space stays `O(live)` and per-repair cost stays amortized `O(run)`.
//!
//! **Reserve precision**: [`ReservePrecision::F32`] stores ψ quantized to
//! `f32`, shrinking the arena by a third and keeping it cache-resident
//! longer. Each stored reserve carries relative rounding error ≤ 2⁻²⁴, so
//! a query's index part `ŝ_I = Σ η̂π/α²·ψ` is perturbed by at most
//! `2⁻²⁴·ŝ_I ≤ 2⁻²⁴/α²` — charged against the `eps` budget (and rejected
//! by [`crate::PrsimConfig::validate`] when `eps` is small enough for
//! that to matter; `tests/statistical_accuracy.rs` validates the bound).
//!
//! **Serialization** ([`PrsimIndex::to_bytes`]) writes the live arena
//! directly: hubs, per-hub level counts, the global monotone offset
//! table, then the `nodes` and `reserves` arrays. `from_bytes` validates
//! every table (monotone offsets, in-range node ids, finite reserves)
//! with allocations bounded by the payload, so corrupt input yields
//! `Err`, never a panic or an attacker-sized allocation.
//!
//! Hub construction is embarrassingly parallel (one backward search per
//! hub); [`PrsimIndex::build`] fans the searches out over
//! `build_threads` workers.

use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use prsim_graph::{DiGraph, NodeId};
use prsim_storage::Storage;

use crate::backward::backward_search;
use crate::paging::pagefile;
use crate::paging::pool::BufferPool;
use crate::paging::{PagedOptions, PagingStats, PostingsScratch};
use crate::PrsimError;

/// Magic bytes identifying the serialized index format, version 3
/// (v3 switched to the flat postings arena with an explicit offset table
/// and optional f32 reserves; v2 serialized per-hub nested lists).
const MAGIC: &[u8; 8] = b"PRSIMIX3";

/// Serialized flag bit: reserves are f32.
const FLAG_F32: u32 = 1;

/// Sentinel marking non-hub nodes in the position table.
const NOT_A_HUB: u32 = u32::MAX;

/// Tombstoned entries/offset-slots below this never trigger compaction
/// (avoids rewrite thrash on tiny indexes).
const COMPACT_MIN_DEAD: usize = 256;

/// Per-hub backward-search result: `lists[level]` = `(v, ψ_ℓ(v, hub))`.
type HubLists = Vec<Vec<(NodeId, f64)>>;

/// One hub's touched record: sorted `(node, max residue over levels)`.
type TouchRecord = Vec<(NodeId, f64)>;

/// Storage width of the arena's reserve values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReservePrecision {
    /// Full-precision `f64` reserves (12 bytes per posting). Default.
    F64,
    /// Quantized `f32` reserves (8 bytes per posting); relative rounding
    /// error ≤ 2⁻²⁴ per entry, charged against the `eps` budget.
    F32,
}

/// The reserve value array backing the arena, in either precision.
#[derive(Clone, Debug)]
enum ReserveArena {
    F64(Vec<f64>),
    F32(Vec<f32>),
}

impl ReserveArena {
    fn with_capacity(precision: ReservePrecision, cap: usize) -> Self {
        match precision {
            ReservePrecision::F64 => ReserveArena::F64(Vec::with_capacity(cap)),
            ReservePrecision::F32 => ReserveArena::F32(Vec::with_capacity(cap)),
        }
    }

    fn precision(&self) -> ReservePrecision {
        match self {
            ReserveArena::F64(_) => ReservePrecision::F64,
            ReserveArena::F32(_) => ReservePrecision::F32,
        }
    }

    /// Appends a reserve, quantizing when the arena is f32.
    #[inline]
    fn push(&mut self, psi: f64) {
        match self {
            ReserveArena::F64(v) => v.push(psi),
            ReserveArena::F32(v) => v.push(psi as f32),
        }
    }

    /// Copies `[start, end)` of `src` onto the end of `self` (compaction
    /// helper; both sides always share a precision).
    fn extend_from_range(&mut self, src: &ReserveArena, start: usize, end: usize) {
        match (self, src) {
            (ReserveArena::F64(dst), ReserveArena::F64(s)) => dst.extend_from_slice(&s[start..end]),
            (ReserveArena::F32(dst), ReserveArena::F32(s)) => dst.extend_from_slice(&s[start..end]),
            _ => unreachable!("compaction never changes precision"),
        }
    }

    fn payload_bytes(&self) -> usize {
        match self {
            ReserveArena::F64(v) => v.len() * 8,
            ReserveArena::F32(v) => v.len() * 4,
        }
    }
}

/// One postings slice `L_ℓ(w)`: parallel node/reserve arrays, borrowed
/// straight from the arena. Match once per slice so the hot loop runs a
/// monomorphic sequential scan.
#[derive(Clone, Copy, Debug)]
pub enum Postings<'a> {
    /// Full-precision reserves.
    F64 {
        /// Source nodes `v`, in ascending id order.
        nodes: &'a [NodeId],
        /// Parallel reserves `ψ_ℓ(v, w)`.
        reserves: &'a [f64],
    },
    /// Quantized reserves.
    F32 {
        /// Source nodes `v`, in ascending id order.
        nodes: &'a [NodeId],
        /// Parallel reserves `ψ_ℓ(v, w)`.
        reserves: &'a [f32],
    },
}

impl Postings<'_> {
    /// Number of postings in the slice.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Postings::F64 { nodes, .. } | Postings::F32 { nodes, .. } => nodes.len(),
        }
    }

    /// True when the slice holds no postings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds the run into a dense accumulator as `acc[v] += scale·ψ`,
    /// through the branchless 8-lane scatter
    /// ([`crate::workspace::DenseScratch::scatter_scaled`]) — the fused
    /// query plan's `ŝ_I` consumption path: one `bounds` probe resolved
    /// this slice, and this call is the entire per-run aggregation (no
    /// intermediate scaled stream, no radix sort). Nodes within a run
    /// ascend, so the dense writes sweep forward prefetch-friendly.
    #[inline]
    pub fn scatter_into(&self, acc: &mut crate::workspace::DenseScratch, scale: f64) {
        match *self {
            Postings::F64 { nodes, reserves } => acc.scatter_scaled(nodes, reserves, scale),
            Postings::F32 { nodes, reserves } => acc.scatter_scaled_f32(nodes, reserves, scale),
        }
    }

    /// Iterates `(v, ψ)` pairs, widening reserves to f64 (convenience for
    /// tests and cold callers; the query loop matches the variants).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (nodes, f64s, f32s) = match *self {
            Postings::F64 { nodes, reserves } => (nodes, Some(reserves), None),
            Postings::F32 { nodes, reserves } => (nodes, None, Some(reserves)),
        };
        nodes.iter().enumerate().map(move |(i, &v)| {
            let psi = match (f64s, f32s) {
                (Some(r), _) => r[i],
                (_, Some(r)) => f64::from(r[i]),
                _ => unreachable!(),
            };
            (v, psi)
        })
    }
}

/// Memory/observability counters of the arena (benchmark output).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IndexStats {
    /// Number of hubs `j₀`.
    pub hubs: usize,
    /// Live postings entries.
    pub entries: usize,
    /// Tombstoned postings entries awaiting compaction.
    pub dead_entries: usize,
    /// Live `(hub, level)` slots in the offset table.
    pub level_slots: usize,
    /// Resident bytes of the index payload (including tombstones).
    pub size_bytes: usize,
    /// Arena compactions performed so far.
    pub compactions: usize,
}

/// Where one hub's offsets live: its run is
/// `bounds[bounds_start .. bounds_start + levels + 1]`.
#[derive(Clone, Copy, Debug)]
struct HubSlot {
    bounds_start: u32,
    levels: u32,
}

/// Per-hub *touched records*: for each hub rank, a sorted
/// `(node, residue bound)` list where the bound dominates the node's max
/// residue over all levels of that hub's backward search (exact right
/// after a search — see
/// [`crate::backward::BackwardSearchResult::touched`] — and maintained as
/// a sound upper bound across clean updates).
///
/// The records drive the dirty filter of [`HubTouchSets::plan_update`].
/// An edge update `(a, b)` perturbs **only `b`'s residues**: the divisor
/// `d_in(b)` changes from `k` to `k'` (scaling every inflow by `k/k'`)
/// and the flow `√c·r_a/k'` from `a` appears or disappears. Nothing else
/// in the search can move unless `b`'s push status or pushed values
/// change, i.e. unless `b`'s residue exceeds the threshold `r_max`
/// before or after the perturbation. So a hub is dirty iff
/// `max(r_b, r_b·k/k' + √c·r_a/k') > r_max` (with the flow term only on
/// insertion; deletion only lowers `b` below its rescaled bound); clean
/// hubs keep byte-identical reserve lists and have `b`'s record replaced
/// by the new bound, which keeps the records sound across arbitrarily
/// long update streams without re-searching.
#[derive(Clone, Debug, Default)]
pub struct HubTouchSets {
    /// `per_hub[rank]` = sorted `(node, residue bound)` of that hub's search.
    per_hub: Vec<Vec<(NodeId, f64)>>,
}

impl HubTouchSets {
    /// Number of hubs tracked.
    #[inline]
    pub fn hub_count(&self) -> usize {
        self.per_hub.len()
    }

    /// Total stored touched entries (memory observability).
    pub fn entry_count(&self) -> usize {
        self.per_hub.iter().map(Vec::len).sum()
    }

    /// The residue bound hub `rank`'s records hold for node `v` (0.0 when
    /// untouched).
    #[inline]
    pub fn max_residue(&self, rank: usize, v: NodeId) -> f64 {
        self.per_hub[rank]
            .binary_search_by_key(&v, |&(x, _)| x)
            .ok()
            .map(|i| self.per_hub[rank][i].1)
            .unwrap_or(0.0)
    }

    /// Whether hub `rank`'s search touched node `v` at all.
    #[inline]
    pub fn touches(&self, rank: usize, v: NodeId) -> bool {
        self.max_residue(rank, v) > 0.0
    }

    /// Classifies edge update `(a, b)` against every hub and returns the
    /// ranks that must be re-searched; clean hubs have `b`'s record
    /// replaced by the new residue bound (rescaled inflows plus, on
    /// insertion, the bound of the flow newly arriving from `a`).
    ///
    /// `old_in_degree_b` is `d_in(b)` in the graph the stored searches
    /// were run on (0 when `b` is a brand-new node); `sqrt_c`/`r_max` are
    /// the searches' decay and residue threshold.
    pub fn plan_update(
        &mut self,
        a: NodeId,
        b: NodeId,
        old_in_degree_b: usize,
        is_insert: bool,
        sqrt_c: f64,
        r_max: f64,
    ) -> Vec<usize> {
        let k = old_in_degree_b as f64;
        let mut dirty = Vec::new();
        for (rank, recs) in self.per_hub.iter_mut().enumerate() {
            let rb_slot = recs.binary_search_by_key(&b, |&(x, _)| x);
            let rb = rb_slot.map(|i| recs[i].1).unwrap_or(0.0);
            // All of b's inflows share the divisor d_in(b): k -> k±1; on
            // insertion a's pushes additionally send at most √c·r_a/(k+1).
            let new_bound = if is_insert {
                let ra = recs
                    .binary_search_by_key(&a, |&(x, _)| x)
                    .ok()
                    .map(|i| recs[i].1)
                    .unwrap_or(0.0);
                (rb * k + sqrt_c * ra) / (k + 1.0)
            } else if old_in_degree_b <= 1 {
                0.0 // b loses its last in-edge: every inflow dies
            } else {
                rb * k / (k - 1.0)
            };
            if rb > r_max || new_bound > r_max {
                dirty.push(rank);
            } else {
                match rb_slot {
                    Ok(i) => recs[i].1 = new_bound,
                    Err(i) if new_bound > 0.0 => recs.insert(i, (b, new_bound)),
                    Err(_) => {}
                }
            }
        }
        dirty
    }
}

/// Out-of-core state of a paged arena: entries `[0, base_entries)` live
/// in a v4 page file behind a budgeted buffer pool; the index's `nodes`
/// / `reserves` vectors hold only the *overlay* — runs appended by
/// repairs after the demotion. `bounds` keeps a single global offset
/// space across both regions, and a run never straddes them (repairs
/// tombstone the old run wholesale and append fresh at the tail).
#[derive(Clone, Debug)]
struct PagedArena {
    /// Shared page cache (clones of the index — e.g. epoch snapshots —
    /// share one pool and therefore one memory budget).
    pool: Arc<BufferPool>,
    /// Number of postings entries served from the page file.
    base_entries: u32,
}

/// The hub index: a flat postings arena behind a CSR offset table (see
/// the module docs for the layout).
#[derive(Clone, Debug)]
pub struct PrsimIndex {
    /// Hub node ids in descending reverse-PageRank order.
    hubs: Vec<NodeId>,
    /// `hub_pos[v] = rank of v among hubs`, or [`NOT_A_HUB`].
    hub_pos: Vec<u32>,
    /// Per-rank location of the hub's offset run.
    slots: Vec<HubSlot>,
    /// CSR offsets into the postings arrays; each hub owns a monotone run
    /// of `levels + 1` entries.
    bounds: Vec<u32>,
    /// Postings: source node ids, grouped by (hub, level). For a paged
    /// arena this is only the overlay (see [`PagedArena`]).
    nodes: Vec<NodeId>,
    /// Postings: parallel reserve values.
    reserves: ReserveArena,
    /// Tombstoned postings entries (superseded by repairs).
    dead_entries: usize,
    /// Tombstoned offset-table slots.
    dead_bounds: usize,
    /// Arena compactions performed.
    compactions: usize,
    /// Present when the base arena lives out of core.
    paged: Option<PagedArena>,
}

/// Equality is *logical*: same hubs, same node universe, same precision
/// and the same per-(hub, level) postings — independent of tombstones,
/// physical arena order, and of whether either side is paged (a paged
/// index compares equal to the resident index it was demoted from; a
/// page fault while comparing yields `false`).
impl PartialEq for PrsimIndex {
    fn eq(&self, other: &Self) -> bool {
        if self.hubs != other.hubs
            || self.hub_pos != other.hub_pos
            || self.reserves.precision() != other.reserves.precision()
        {
            return false;
        }
        let mut sa = PostingsScratch::new();
        let mut sb = PostingsScratch::new();
        (0..self.hubs.len()).all(|rank| {
            if self.level_count(rank) != other.level_count(rank) {
                return false;
            }
            (0..self.level_count(rank)).all(|level| {
                let (a0, a1) = self.range(rank, level);
                let (b0, b1) = other.range(rank, level);
                if a1 - a0 != b1 - b0 {
                    return false;
                }
                if a1 == a0 {
                    return true;
                }
                let (Ok(pa), Ok(pb)) =
                    (self.run_at(a0, a1, &mut sa), other.run_at(b0, b1, &mut sb))
                else {
                    return false;
                };
                let same = pa
                    .iter()
                    .zip(pb.iter())
                    .all(|((va, ra), (vb, rb))| va == vb && ra.to_bits() == rb.to_bits());
                same
            })
        })
    }
}

impl PrsimIndex {
    /// Builds the index for the given hubs (descending-π node ids), with
    /// full-precision reserves.
    ///
    /// `r_max` is the backward-search residue threshold (Algorithm 1 line
    /// 8: `(1−√c)²ε/12`); only reserves above `r_max` are stored (line 15).
    pub fn build(
        g: &DiGraph,
        hubs: Vec<NodeId>,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        build_threads: usize,
    ) -> Self {
        Self::build_tracked_with(
            g,
            hubs,
            sqrt_c,
            r_max,
            max_level,
            build_threads,
            ReservePrecision::F64,
        )
        .0
    }

    /// [`PrsimIndex::build`], additionally returning the per-hub touched
    /// sets the dynamic engine uses to repair only the searches an edge
    /// update can actually have changed.
    pub fn build_tracked(
        g: &DiGraph,
        hubs: Vec<NodeId>,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        build_threads: usize,
    ) -> (Self, HubTouchSets) {
        Self::build_tracked_with(
            g,
            hubs,
            sqrt_c,
            r_max,
            max_level,
            build_threads,
            ReservePrecision::F64,
        )
    }

    /// [`PrsimIndex::build_tracked`] with an explicit reserve precision.
    /// The arena is assembled in one counting pass over the per-hub
    /// search output: entry totals are counted first, the arrays reserved
    /// exactly, then filled in rank order.
    #[allow(clippy::too_many_arguments)] // the build knobs are the config
    pub fn build_tracked_with(
        g: &DiGraph,
        hubs: Vec<NodeId>,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        build_threads: usize,
        precision: ReservePrecision,
    ) -> (Self, HubTouchSets) {
        let n = g.node_count();
        let mut hub_pos = vec![NOT_A_HUB; n];
        for (rank, &w) in hubs.iter().enumerate() {
            hub_pos[w as usize] = rank as u32;
        }

        let searched = Self::search_many(g, &hubs, sqrt_c, r_max, max_level, build_threads);
        let total_entries: usize = searched
            .iter()
            .map(|(lists, _)| lists.iter().map(Vec::len).sum::<usize>())
            .sum();
        let total_bounds: usize = searched.iter().map(|(lists, _)| lists.len() + 1).sum();

        let mut index = PrsimIndex {
            hubs,
            hub_pos,
            slots: Vec::with_capacity(searched.len()),
            bounds: Vec::with_capacity(total_bounds),
            nodes: Vec::with_capacity(total_entries),
            reserves: ReserveArena::with_capacity(precision, total_entries),
            dead_entries: 0,
            dead_bounds: 0,
            compactions: 0,
            paged: None,
        };
        let mut touched = Vec::with_capacity(searched.len());
        for (lists, t) in searched {
            let slot = index.append_run(&lists);
            index.slots.push(slot);
            touched.push(t);
        }

        (index, HubTouchSets { per_hub: touched })
    }

    /// Appends one hub's level lists at the arena tail and returns the
    /// slot describing the new run.
    fn append_run(&mut self, lists: &HubLists) -> HubSlot {
        let bounds_start =
            u32::try_from(self.bounds.len()).expect("offset table exceeds u32 range");
        // Offsets are global: overlay entries of a paged arena start after
        // the page file's base region.
        let base = self.arena_base();
        let post = |len: usize| u32::try_from(len).expect("postings arena exceeds u32 range");
        self.bounds.push(post(base + self.nodes.len()));
        for level in lists {
            for &(v, psi) in level {
                self.nodes.push(v);
                self.reserves.push(psi);
            }
            self.bounds.push(post(base + self.nodes.len()));
        }
        HubSlot {
            bounds_start,
            levels: lists.len() as u32,
        }
    }

    /// Global arena offset where the resident (overlay) region starts:
    /// 0 for a fully resident arena, the page file's entry count when
    /// paged.
    #[inline]
    fn arena_base(&self) -> usize {
        self.paged.as_ref().map_or(0, |p| p.base_entries as usize)
    }

    /// Runs the backward searches for `hubs` (any node list) over
    /// `threads` workers, returning per-hub filtered reserve lists and
    /// touched sets in input order.
    fn search_many(
        g: &DiGraph,
        hubs: &[NodeId],
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        threads: usize,
    ) -> Vec<(HubLists, TouchRecord)> {
        let threads = threads.max(1).min(hubs.len().max(1));
        if threads <= 1 || hubs.len() < 4 {
            return hubs
                .iter()
                .map(|&w| Self::search_one(g, w, sqrt_c, r_max, max_level))
                .collect();
        }
        let mut slots: Vec<Option<(HubLists, TouchRecord)>> = vec![None; hubs.len()];
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots_mutex = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= hubs.len() {
                        break;
                    }
                    let result = Self::search_one(g, hubs[i], sqrt_c, r_max, max_level);
                    slots_mutex.lock().expect("no panics hold this lock")[i] = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("all hubs processed"))
            .collect()
    }

    fn search_one(
        g: &DiGraph,
        w: NodeId,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
    ) -> (HubLists, TouchRecord) {
        let res = backward_search(g, sqrt_c, w, r_max, max_level);
        let lists = res
            .levels
            .into_iter()
            .map(|level| level.into_iter().filter(|&(_, psi)| psi > r_max).collect())
            .collect();
        (lists, res.touched)
    }

    /// Extends the node universe to `n` (new nodes are non-hubs). Called
    /// by the dynamic engine when edge inserts grow the graph.
    pub fn ensure_nodes(&mut self, n: usize) {
        if n > self.hub_pos.len() {
            self.hub_pos.resize(n, NOT_A_HUB);
        }
    }

    /// Re-runs the backward searches of the hubs at `ranks` against the
    /// (mutated) graph `g`, replacing their postings runs in place and
    /// updating their entries in `touch`. Repairs fan out over `threads`
    /// workers like the build. Only the dirty hubs' runs are rewritten:
    /// the old runs are tombstoned and fresh ones appended at the arena
    /// tail, with amortized compaction once tombstones outnumber live
    /// postings.
    #[allow(clippy::too_many_arguments)] // mirrors build_tracked's signature
    pub fn repair_hubs(
        &mut self,
        g: &DiGraph,
        ranks: &[usize],
        touch: &mut HubTouchSets,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        threads: usize,
    ) {
        let nodes: Vec<NodeId> = ranks.iter().map(|&r| self.hubs[r]).collect();
        let repaired = Self::search_many(g, &nodes, sqrt_c, r_max, max_level, threads);
        for (&rank, (lists, touched)) in ranks.iter().zip(repaired) {
            let old = self.slots[rank];
            let (start, end) = (
                self.bounds[old.bounds_start as usize] as usize,
                self.bounds[(old.bounds_start + old.levels) as usize] as usize,
            );
            self.dead_entries += end - start;
            self.dead_bounds += old.levels as usize + 1;
            self.slots[rank] = self.append_run(&lists);
            touch.per_hub[rank] = touched;
        }
        if self.needs_compaction() {
            self.compact();
        }
    }

    /// Whether tombstones outnumber live data (the DeltaGraph-style
    /// amortized threshold).
    fn needs_compaction(&self) -> bool {
        if self.paged.is_some() {
            // Tombstoned base runs live on disk, not in `nodes`; compaction
            // of a paged arena is a re-demote (`page_out`), decided by the
            // owner, not an in-place rewrite.
            return false;
        }
        let live_entries = self.nodes.len() - self.dead_entries;
        let live_bounds = self.bounds.len() - self.dead_bounds;
        self.dead_entries >= COMPACT_MIN_DEAD.max(live_entries)
            || self.dead_bounds >= COMPACT_MIN_DEAD.max(live_bounds)
    }

    /// Rewrites the arena densely in rank order, dropping all tombstones.
    fn compact(&mut self) {
        let live_entries = self.nodes.len() - self.dead_entries;
        let live_bounds = self.bounds.len() - self.dead_bounds;
        let mut nodes = Vec::with_capacity(live_entries);
        let mut reserves = ReserveArena::with_capacity(self.reserves.precision(), live_entries);
        let mut bounds = Vec::with_capacity(live_bounds);
        let mut slots = Vec::with_capacity(self.slots.len());
        for &slot in &self.slots {
            let bounds_start = bounds.len() as u32;
            bounds.push(nodes.len() as u32);
            for level in 0..slot.levels as usize {
                let b = slot.bounds_start as usize + level;
                let (s, e) = (self.bounds[b] as usize, self.bounds[b + 1] as usize);
                nodes.extend_from_slice(&self.nodes[s..e]);
                reserves.extend_from_range(&self.reserves, s, e);
                bounds.push(nodes.len() as u32);
            }
            slots.push(HubSlot {
                bounds_start,
                levels: slot.levels,
            });
        }
        self.nodes = nodes;
        self.reserves = reserves;
        self.bounds = bounds;
        self.slots = slots;
        self.dead_entries = 0;
        self.dead_bounds = 0;
        self.compactions += 1;
    }

    /// Creates an empty (index-free) instance for a graph with `n` nodes.
    pub fn empty(n: usize) -> Self {
        PrsimIndex {
            hubs: Vec::new(),
            hub_pos: vec![NOT_A_HUB; n],
            slots: Vec::new(),
            bounds: Vec::new(),
            nodes: Vec::new(),
            reserves: ReserveArena::F64(Vec::new()),
            dead_entries: 0,
            dead_bounds: 0,
            compactions: 0,
            paged: None,
        }
    }

    /// Number of hubs `j₀`.
    #[inline]
    pub fn hub_count(&self) -> usize {
        self.hubs.len()
    }

    /// The hub node ids in descending reverse-PageRank order.
    #[inline]
    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// The arena's reserve precision.
    #[inline]
    pub fn precision(&self) -> ReservePrecision {
        self.reserves.precision()
    }

    /// Whether the postings arena is fully memory-resident. False for a
    /// paged arena ([`Self::open_paged`]); the fused query plan's `Auto`
    /// resolution ([`crate::Prsim::query_plan`]) keys off this to route
    /// paged arenas through the reference pipeline, whose per-terminal
    /// lookups tolerate page faults.
    #[inline]
    pub fn is_resident(&self) -> bool {
        self.paged.is_none()
    }

    /// Hints the CPU to pull `w`'s hub-membership line toward L1 —
    /// issued one terminal ahead of the [`Self::contains`] /
    /// [`Self::postings`] probe on the fused fold loop. Draw-free and
    /// result-free, like every prefetch in the suite.
    #[inline]
    pub fn prefetch_lookup(&self, w: NodeId) {
        prsim_graph::mem::prefetch_read(&self.hub_pos, w as usize);
    }

    /// Whether `w` is an indexed hub (one offset-table probe).
    #[inline]
    pub fn contains(&self, w: NodeId) -> bool {
        self.hub_pos
            .get(w as usize)
            .is_some_and(|&p| p != NOT_A_HUB)
    }

    /// Number of stored levels for the hub at `rank`.
    #[inline]
    fn level_count(&self, rank: usize) -> usize {
        self.slots[rank].levels as usize
    }

    /// Postings range of `(rank, level)` in the arena arrays. `level`
    /// must be below the hub's level count.
    #[inline]
    fn range(&self, rank: usize, level: usize) -> (usize, usize) {
        let b = self.slots[rank].bounds_start as usize + level;
        (self.bounds[b] as usize, self.bounds[b + 1] as usize)
    }

    /// The postings slice `L_ℓ(w)`, or `None` when `w` is not a hub or
    /// has no entries at that level. One offset-table probe plus two
    /// offset reads; the returned slice scans sequentially.
    ///
    /// **Resident view only**: on a paged arena this resolves overlay
    /// (repaired) runs but returns `None` for runs still in the page
    /// file — callers that must see those use [`Self::postings_in`],
    /// which can fault pages in (and can therefore fail).
    #[inline]
    pub fn postings(&self, w: NodeId, level: usize) -> Option<Postings<'_>> {
        let (s, e) = self.lookup_range(w, level)?;
        self.resident_slice(s, e)
    }

    /// Resolves `(w, level)` to its live global arena range, or `None`
    /// when `w` is not a hub / the level is absent / the run is empty.
    #[inline]
    fn lookup_range(&self, w: NodeId, level: usize) -> Option<(usize, usize)> {
        let pos = *self.hub_pos.get(w as usize)?;
        if pos == NOT_A_HUB {
            return None;
        }
        let rank = pos as usize;
        if level >= self.level_count(rank) {
            return None;
        }
        let (s, e) = self.range(rank, level);
        if s == e {
            return None;
        }
        Some((s, e))
    }

    /// Borrows global range `[s, e)` from the resident vectors, or `None`
    /// when it lives in the page file.
    #[inline]
    fn resident_slice(&self, s: usize, e: usize) -> Option<Postings<'_>> {
        let base = self.arena_base();
        if s < base {
            return None;
        }
        let (s, e) = (s - base, e - base);
        Some(match &self.reserves {
            ReserveArena::F64(r) => Postings::F64 {
                nodes: &self.nodes[s..e],
                reserves: &r[s..e],
            },
            ReserveArena::F32(r) => Postings::F32 {
                nodes: &self.nodes[s..e],
                reserves: &r[s..e],
            },
        })
    }

    /// Reads global range `[s, e)` out of the page file into `scratch`,
    /// verifying checksums page by page and validating the decoded run
    /// exactly as [`Self::from_bytes`] would.
    fn read_base_run<'a>(
        &self,
        s: usize,
        e: usize,
        scratch: &'a mut PostingsScratch,
    ) -> Result<Postings<'a>, PrsimError> {
        let paged = self
            .paged
            .as_ref()
            .expect("read_base_run is only reached below arena_base");
        let len = e - s;
        let width = match self.reserves.precision() {
            ReservePrecision::F64 => 8usize,
            ReservePrecision::F32 => 4,
        };
        let n = self.hub_pos.len();
        let base = paged.base_entries as usize;

        paged
            .pool
            .read_span(s as u64 * 4, len * 4, &mut scratch.raw)?;
        scratch.nodes.clear();
        scratch.nodes.reserve(len);
        for chunk in scratch.raw.chunks_exact(4) {
            let v = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            if v as usize >= n {
                return Err(PrsimError::PageFault(
                    "paged posting node id out of range".to_string(),
                ));
            }
            scratch.nodes.push(v);
        }

        let reserve_start = base as u64 * 4 + s as u64 * width as u64;
        paged
            .pool
            .read_span(reserve_start, len * width, &mut scratch.raw)?;
        let bad_reserve =
            || PrsimError::PageFault("paged reserve not a finite nonnegative value".to_string());
        match self.reserves.precision() {
            ReservePrecision::F64 => {
                scratch.r64.clear();
                scratch.r64.reserve(len);
                for chunk in scratch.raw.chunks_exact(8) {
                    let mut le = [0u8; 8];
                    le.copy_from_slice(chunk);
                    let psi = f64::from_le_bytes(le);
                    if !psi.is_finite() || psi < 0.0 {
                        return Err(bad_reserve());
                    }
                    scratch.r64.push(psi);
                }
                Ok(Postings::F64 {
                    nodes: &scratch.nodes,
                    reserves: &scratch.r64,
                })
            }
            ReservePrecision::F32 => {
                scratch.r32.clear();
                scratch.r32.reserve(len);
                for chunk in scratch.raw.chunks_exact(4) {
                    let psi = f32::from_bits(u32::from_le_bytes([
                        chunk[0], chunk[1], chunk[2], chunk[3],
                    ]));
                    if !psi.is_finite() || psi < 0.0 {
                        return Err(bad_reserve());
                    }
                    scratch.r32.push(psi);
                }
                Ok(Postings::F32 {
                    nodes: &scratch.nodes,
                    reserves: &scratch.r32,
                })
            }
        }
    }

    /// Resolves global range `[s, e)` wherever it lives: a zero-copy
    /// borrow of the resident vectors, or a checksum-verified page-file
    /// read into `scratch`.
    fn run_at<'a>(
        &'a self,
        s: usize,
        e: usize,
        scratch: &'a mut PostingsScratch,
    ) -> Result<Postings<'a>, PrsimError> {
        if s >= self.arena_base() {
            Ok(self
                .resident_slice(s, e)
                .expect("ranges at or above arena_base are resident"))
        } else {
            self.read_base_run(s, e, scratch)
        }
    }

    /// Fallible postings lookup that sees the *whole* arena, paged or
    /// not: `Ok(None)` when `w` has no postings at `level`, `Ok(Some)`
    /// with the run (borrowed from the arena, or staged in `scratch`
    /// after a verified page read), or `Err(PageFault)` when the page
    /// file could not produce the run within the retry budget. Resident
    /// arenas never return `Err`.
    pub fn postings_in<'a>(
        &'a self,
        w: NodeId,
        level: usize,
        scratch: &'a mut PostingsScratch,
    ) -> Result<Option<Postings<'a>>, PrsimError> {
        match self.lookup_range(w, level) {
            None => Ok(None),
            Some((s, e)) => self.run_at(s, e, scratch).map(Some),
        }
    }

    /// Total number of live `(v, ψ)` postings (base region plus overlay,
    /// minus tombstones).
    pub fn entry_count(&self) -> usize {
        self.arena_base() + self.nodes.len() - self.dead_entries
    }

    /// Memory/observability counters (benchmark output).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            hubs: self.hubs.len(),
            entries: self.entry_count(),
            dead_entries: self.dead_entries,
            level_slots: self.bounds.len() - self.dead_bounds - self.slots.len(),
            size_bytes: self.size_bytes(),
            compactions: self.compactions,
        }
    }

    /// Resident size of the index payload in bytes: the postings arrays
    /// (including tombstones awaiting compaction), the offset table, and
    /// the hub tables. For a paged arena this counts only what is
    /// actually in memory — the overlay vectors, the page-index table and
    /// the buffer pool's current frames — not the page file.
    pub fn size_bytes(&self) -> usize {
        let paged = self.paged.as_ref().map_or(0, |p| {
            let s = p.pool.stats();
            s.resident_bytes as usize + s.pages as usize * pagefile::PAGE_ENTRY_BYTES
        });
        self.nodes.len() * 4
            + self.reserves.payload_bytes()
            + self.bounds.len() * 4
            + self.slots.len() * std::mem::size_of::<HubSlot>()
            + self.hubs.len() * 4
            + self.hub_pos.len() * 4
            + paged
    }

    /// Serializes the live arena into a compact binary buffer (format v3;
    /// see the module docs). Deserialize with [`PrsimIndex::from_bytes`],
    /// passing the graph's node count.
    ///
    /// Infallible only for resident arenas; a paged arena must read its
    /// base runs back through the buffer pool, which can fault — paged
    /// callers (e.g. checkpoint writers) use [`Self::try_to_bytes`].
    pub fn to_bytes(&self) -> Bytes {
        self.try_to_bytes()
            .expect("resident index serialization cannot fail; use try_to_bytes for paged arenas")
    }

    /// Fallible [`Self::to_bytes`]: fails with [`PrsimError::PageFault`]
    /// when a paged arena's base runs cannot be read and verified.
    pub fn try_to_bytes(&self) -> Result<Bytes, PrsimError> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        let flags = match self.reserves.precision() {
            ReservePrecision::F64 => 0,
            ReservePrecision::F32 => FLAG_F32,
        };
        buf.put_u32_le(flags);
        buf.put_u64_le(self.hubs.len() as u64);
        for &h in &self.hubs {
            buf.put_u32_le(h);
        }
        for rank in 0..self.hubs.len() {
            buf.put_u32_le(self.level_count(rank) as u32);
        }
        // Global offset table over the live view: one running total.
        let mut running = 0u32;
        buf.put_u32_le(running);
        for rank in 0..self.hubs.len() {
            for level in 0..self.level_count(rank) {
                let (s, e) = self.range(rank, level);
                running += (e - s) as u32;
                buf.put_u32_le(running);
            }
        }
        let mut scratch = PostingsScratch::new();
        self.for_each_live_run(
            &mut scratch,
            |buf, run| match run {
                Postings::F64 { nodes, .. } | Postings::F32 { nodes, .. } => {
                    for &v in nodes {
                        buf.put_u32_le(v);
                    }
                }
            },
            &mut buf,
        )?;
        self.for_each_live_run(
            &mut scratch,
            |buf, run| match run {
                Postings::F64 { reserves, .. } => {
                    for &psi in reserves {
                        buf.put_f64_le(psi);
                    }
                }
                Postings::F32 { reserves, .. } => {
                    for &psi in reserves {
                        buf.put_u32_le(psi.to_bits());
                    }
                }
            },
            &mut buf,
        )?;
        Ok(buf.freeze())
    }

    /// Visits every non-empty live run in rank/level order (the
    /// serialization order), resolving paged runs through `scratch`.
    fn for_each_live_run<T>(
        &self,
        scratch: &mut PostingsScratch,
        mut visit: impl FnMut(&mut T, Postings<'_>),
        ctx: &mut T,
    ) -> Result<(), PrsimError> {
        for rank in 0..self.hubs.len() {
            for level in 0..self.level_count(rank) {
                let (s, e) = self.range(rank, level);
                if s == e {
                    continue;
                }
                let run = self.run_at(s, e, scratch)?;
                visit(ctx, run);
            }
        }
        Ok(())
    }

    /// Deserializes an index produced by [`PrsimIndex::to_bytes`]; `n` is
    /// the node count of the graph the index belongs to. Every table is
    /// validated (monotone offsets, in-range ids, finite reserves) and
    /// every allocation is bounded by the payload size or by `n`, so
    /// corrupt input yields `Err`, never a panic or an attacker-sized
    /// allocation.
    pub fn from_bytes(mut data: &[u8], n: usize) -> Result<Self, PrsimError> {
        let corrupt = |msg: &str| PrsimError::CorruptIndex(msg.to_string());
        if data.len() < 20 {
            return Err(corrupt("header truncated"));
        }
        let mut magic = [0u8; 8];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let flags = data.get_u32_le();
        if flags & !FLAG_F32 != 0 {
            return Err(corrupt("unknown format flags"));
        }
        let precision = if flags & FLAG_F32 != 0 {
            ReservePrecision::F32
        } else {
            ReservePrecision::F64
        };
        let reserve_width = match precision {
            ReservePrecision::F64 => 8usize,
            ReservePrecision::F32 => 4,
        };

        let j0 = data.get_u64_le() as usize;
        if j0 > n || data.remaining() < j0.saturating_mul(8) {
            return Err(corrupt("hub table truncated or hub count exceeds n"));
        }
        let mut hubs = Vec::with_capacity(j0);
        let mut hub_pos = vec![NOT_A_HUB; n];
        for rank in 0..j0 {
            let h = data.get_u32_le();
            if h as usize >= n || hub_pos[h as usize] != NOT_A_HUB {
                return Err(corrupt("hub id out of range or duplicated"));
            }
            hubs.push(h);
            hub_pos[h as usize] = rank as u32;
        }

        // Per-hub level counts; their sum sizes the offset table.
        let mut level_counts = Vec::with_capacity(j0);
        let mut total_levels = 0usize;
        for _ in 0..j0 {
            let lc = data.get_u32_le() as usize;
            total_levels = total_levels
                .checked_add(lc)
                .ok_or_else(|| corrupt("level counts overflow"))?;
            level_counts.push(lc);
        }
        if total_levels
            .checked_add(1)
            .and_then(|slots| slots.checked_mul(4))
            .is_none_or(|need| data.remaining() < need)
        {
            return Err(corrupt("offset table exceeds payload"));
        }

        // Global offset table: strictly bounded, non-decreasing, 0-based.
        let mut offsets = Vec::with_capacity(total_levels + 1);
        let mut prev = data.get_u32_le();
        if prev != 0 {
            return Err(corrupt("offset table does not start at 0"));
        }
        offsets.push(prev);
        for _ in 0..total_levels {
            let next = data.get_u32_le();
            if next < prev {
                return Err(corrupt("offset table not monotone"));
            }
            offsets.push(next);
            prev = next;
        }
        let total_postings = prev as usize;
        if total_postings
            .checked_mul(4 + reserve_width)
            .is_none_or(|need| data.remaining() < need)
        {
            return Err(corrupt("postings truncated"));
        }

        let mut nodes = Vec::with_capacity(total_postings);
        for _ in 0..total_postings {
            let v = data.get_u32_le();
            if v as usize >= n {
                return Err(corrupt("posting node id out of range"));
            }
            nodes.push(v);
        }
        let mut reserves = ReserveArena::with_capacity(precision, total_postings);
        for _ in 0..total_postings {
            let psi = match precision {
                ReservePrecision::F64 => data.get_f64_le(),
                ReservePrecision::F32 => f64::from(f32::from_bits(data.get_u32_le())),
            };
            if !psi.is_finite() || psi < 0.0 {
                return Err(corrupt("posting reserve not a finite nonnegative value"));
            }
            reserves.push(psi);
        }
        if data.remaining() > 0 {
            return Err(corrupt("trailing bytes after postings"));
        }

        // Rebuild per-hub offset runs from the shared global table.
        let mut bounds = Vec::with_capacity(total_levels + j0);
        let mut slots = Vec::with_capacity(j0);
        let mut cursor = 0usize;
        for &lc in &level_counts {
            let bounds_start = bounds.len() as u32;
            bounds.extend_from_slice(&offsets[cursor..cursor + lc + 1]);
            cursor += lc;
            slots.push(HubSlot {
                bounds_start,
                levels: lc as u32,
            });
        }

        Ok(PrsimIndex {
            hubs,
            hub_pos,
            slots,
            bounds,
            nodes,
            reserves,
            dead_entries: 0,
            dead_bounds: 0,
            compactions: 0,
            paged: None,
        })
    }

    /// Writes the live arena as a v4 page file at `path` (atomic temp +
    /// fsync + rename + directory sync). Works for resident and paged
    /// arenas alike — the live view is streamed in rank order, so
    /// tombstones are dropped and a paged arena's overlay is folded back
    /// into the base region (this is the paged arena's compaction story).
    pub fn write_paged(
        &self,
        storage: &dyn Storage,
        path: &Path,
        page_bytes: u32,
    ) -> Result<(), PrsimError> {
        let mut level_counts = Vec::with_capacity(self.hubs.len());
        let mut offsets = Vec::with_capacity(self.bounds.len().max(1));
        offsets.push(0u32);
        let mut running = 0u32;
        for rank in 0..self.hubs.len() {
            level_counts.push(self.level_count(rank) as u32);
            for level in 0..self.level_count(rank) {
                let (s, e) = self.range(rank, level);
                running += (e - s) as u32;
                offsets.push(running);
            }
        }
        let entries = running as usize;
        let width = match self.reserves.precision() {
            ReservePrecision::F64 => 8usize,
            ReservePrecision::F32 => 4,
        };
        let mut blob = Vec::with_capacity(entries * (4 + width));
        let mut scratch = PostingsScratch::new();
        self.for_each_live_run(
            &mut scratch,
            |blob: &mut Vec<u8>, run| match run {
                Postings::F64 { nodes, .. } | Postings::F32 { nodes, .. } => {
                    for &v in nodes {
                        blob.extend_from_slice(&v.to_le_bytes());
                    }
                }
            },
            &mut blob,
        )?;
        self.for_each_live_run(
            &mut scratch,
            |blob: &mut Vec<u8>, run| match run {
                Postings::F64 { reserves, .. } => {
                    for &psi in reserves {
                        blob.extend_from_slice(&psi.to_le_bytes());
                    }
                }
                Postings::F32 { reserves, .. } => {
                    for &psi in reserves {
                        blob.extend_from_slice(&psi.to_bits().to_le_bytes());
                    }
                }
            },
            &mut blob,
        )?;
        pagefile::write(
            storage,
            path,
            page_bytes,
            self.reserves.precision(),
            &self.hubs,
            &level_counts,
            &offsets,
            &blob,
        )
    }

    /// Opens a v4 page file as a paged index under a hard memory budget.
    ///
    /// Admission control: the resident tables (hub tables, CSR offsets,
    /// page index) plus the permanently pinned hot set plus one working
    /// frame must fit inside `opts.memory_budget`, else
    /// [`PrsimError::InvalidConfig`] — the budget is refused up front
    /// rather than silently overrun. The spare budget sizes the buffer
    /// pool's hard frame ceiling.
    ///
    /// The hot set is the postings (node *and* reserve pages) of the
    /// `opts.hot_ranks` top-reverse-PageRank hubs — hubs are stored in
    /// rank order, so this is a prefix of the blob's two regions.
    pub fn open_paged(
        storage: Arc<dyn Storage>,
        path: &Path,
        n: usize,
        opts: &PagedOptions,
    ) -> Result<Self, PrsimError> {
        let mut meta = pagefile::open(storage.as_ref(), path, n)?;
        let hubs = std::mem::take(&mut meta.hubs);
        let level_counts = std::mem::take(&mut meta.level_counts);
        let offsets = std::mem::take(&mut meta.offsets);
        let entries = meta.entries;
        let precision = meta.precision;
        let page_bytes = u64::from(meta.page_bytes);
        let width = meta.reserve_width() as u64;

        let mut hub_pos = vec![NOT_A_HUB; n];
        for (rank, &h) in hubs.iter().enumerate() {
            hub_pos[h as usize] = rank as u32;
        }
        let j0 = hubs.len();
        let mut bounds = Vec::with_capacity(offsets.len() + j0);
        let mut slots = Vec::with_capacity(j0);
        let mut cursor = 0usize;
        for &lc in &level_counts {
            let lc = lc as usize;
            let bounds_start = bounds.len() as u32;
            bounds.extend_from_slice(&offsets[cursor..cursor + lc + 1]);
            cursor += lc;
            slots.push(HubSlot {
                bounds_start,
                levels: lc as u32,
            });
        }

        // Hot set: every page touched by the top hubs' node span
        // [0, 4·hot_entries) or reserve span [4E, 4E + w·hot_entries).
        let hot_ranks = opts.hot_ranks.min(j0);
        let hot_levels: usize = level_counts[..hot_ranks].iter().map(|&c| c as usize).sum();
        let hot_entries = u64::from(offsets[hot_levels]);
        let mut hot: Vec<usize> = Vec::new();
        let add_span = |hot: &mut Vec<usize>, start: u64, len: u64| {
            if len > 0 {
                let first = (start / page_bytes) as usize;
                let last = ((start + len - 1) / page_bytes) as usize;
                hot.extend(first..=last);
            }
        };
        add_span(&mut hot, 0, hot_entries * 4);
        add_span(&mut hot, u64::from(entries) * 4, hot_entries * width);
        hot.sort_unstable();
        hot.dedup();

        let meta_resident = meta.pages.len() * pagefile::PAGE_ENTRY_BYTES
            + bounds.len() * 4
            + slots.len() * std::mem::size_of::<HubSlot>()
            + hubs.len() * 4
            + hub_pos.len() * 4;
        let hot_bytes: u64 = hot.iter().map(|&p| u64::from(meta.pages[p].len)).sum();
        let working = if hot.len() < meta.pages.len() {
            page_bytes
        } else {
            0
        };
        let need = meta_resident as u64 + hot_bytes + working;
        if need > opts.memory_budget {
            return Err(PrsimError::InvalidConfig(format!(
                "memory budget {} B refused at admission: resident tables ({meta_resident} B) \
                 + pinned hot set ({hot_bytes} B over {} pages) + one working frame ({working} B) \
                 need {need} B — lower --page-hot or raise the budget",
                opts.memory_budget,
                hot.len(),
            )));
        }
        let spare = opts.memory_budget - meta_resident as u64 - hot_bytes;
        let frame_budget = hot.len() + (spare / page_bytes) as usize;
        let pool = BufferPool::new(storage, path.to_path_buf(), meta, frame_budget, hot)?;

        Ok(PrsimIndex {
            hubs,
            hub_pos,
            slots,
            bounds,
            nodes: Vec::new(),
            reserves: ReserveArena::with_capacity(precision, 0),
            dead_entries: 0,
            dead_bounds: 0,
            compactions: 0,
            paged: Some(PagedArena {
                pool,
                base_entries: entries,
            }),
        })
    }

    /// Demotes the live arena to a v4 page file at `path` and reopens it
    /// paged under `opts`' budget, replacing `self`. On `Err` the index
    /// is left unchanged and still serves from memory (the page-file
    /// write is atomic, so a half-written file is never visible).
    pub fn page_out(
        &mut self,
        storage: Arc<dyn Storage>,
        path: &Path,
        opts: &PagedOptions,
    ) -> Result<(), PrsimError> {
        self.write_paged(storage.as_ref(), path, opts.page_bytes)?;
        *self = Self::open_paged(storage, path, self.hub_pos.len(), opts)?;
        Ok(())
    }

    /// Buffer-pool counters, when the arena is paged.
    pub fn paging_stats(&self) -> Option<PagingStats> {
        self.paged.as_ref().map(|p| p.pool.stats())
    }

    /// Whether the paged arena's pool is carrying an unhealed per-page
    /// fault streak (the serving host folds this into its degraded-mode
    /// health). Always false for resident arenas.
    pub fn paging_unhealthy(&self) -> bool {
        self.paged.as_ref().is_some_and(|p| p.pool.unhealthy())
    }

    /// The paged arena's buffer pool, when the arena is paged — the
    /// integrity scrubber walks its pages ([`BufferPool::page_count`] /
    /// [`BufferPool::scrub_page`]) to re-verify the at-rest file.
    /// Clones of the index (epoch snapshots) share the same pool.
    pub fn paged_pool(&self) -> Option<Arc<BufferPool>> {
        self.paged.as_ref().map(|p| Arc::clone(&p.pool))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{rank_by_pagerank, reverse_pagerank};
    use prsim_graph::ordering::sort_out_by_in_degree;

    const SQRT_C: f64 = 0.774_596_669_241_483_4;

    fn graph() -> DiGraph {
        let mut g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 6.0, 2.0, 5));
        sort_out_by_in_degree(&mut g);
        g
    }

    fn top_hubs(g: &DiGraph, j0: usize) -> Vec<NodeId> {
        let pi = reverse_pagerank(g, SQRT_C, 1e-10, 64);
        rank_by_pagerank(&pi).into_iter().take(j0).collect()
    }

    fn build(g: &DiGraph, j0: usize, threads: usize) -> PrsimIndex {
        PrsimIndex::build(g, top_hubs(g, j0), SQRT_C, 1e-4, 64, threads)
    }

    fn build_f32(g: &DiGraph, j0: usize) -> PrsimIndex {
        PrsimIndex::build_tracked_with(
            g,
            top_hubs(g, j0),
            SQRT_C,
            1e-4,
            64,
            1,
            ReservePrecision::F32,
        )
        .0
    }

    fn level_entries(idx: &PrsimIndex, w: NodeId, level: usize) -> Vec<(NodeId, f64)> {
        idx.postings(w, level)
            .map(|p| p.iter().collect())
            .unwrap_or_default()
    }

    #[test]
    fn contains_exactly_the_hubs() {
        let g = graph();
        let idx = build(&g, 20, 1);
        assert_eq!(idx.hub_count(), 20);
        let hubs: std::collections::HashSet<_> = idx.hubs().iter().copied().collect();
        for v in g.nodes() {
            assert_eq!(idx.contains(v), hubs.contains(&v));
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let g = graph();
        let a = build(&g, 24, 1);
        let b = build(&g, 24, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn postings_match_direct_backward_search() {
        let g = graph();
        let idx = build(&g, 8, 2);
        let r_max = 1e-4;
        for &w in idx.hubs() {
            let direct = crate::backward::backward_search(&g, SQRT_C, w, r_max, 64);
            for (l, level) in direct.levels.iter().enumerate() {
                let expect: Vec<(NodeId, f64)> = level
                    .iter()
                    .copied()
                    .filter(|&(_, psi)| psi > r_max)
                    .collect();
                assert_eq!(level_entries(&idx, w, l), expect, "hub {w} level {l}");
            }
        }
    }

    #[test]
    fn f32_postings_are_quantized_f64_postings() {
        let g = graph();
        let wide = build(&g, 16, 1);
        let narrow = build_f32(&g, 16);
        assert_eq!(narrow.precision(), ReservePrecision::F32);
        assert_eq!(wide.entry_count(), narrow.entry_count());
        // Same nodes, reserves quantized through f32 exactly once.
        for &w in wide.hubs() {
            for level in 0..64 {
                let a = level_entries(&wide, w, level);
                let b = level_entries(&narrow, w, level);
                assert_eq!(a.len(), b.len());
                for (&(va, psi_a), &(vb, psi_b)) in a.iter().zip(&b) {
                    assert_eq!(va, vb);
                    assert_eq!(psi_b, f64::from(psi_a as f32), "hub {w} level {level}");
                }
            }
        }
        // The arena payload shrinks by the reserve width difference.
        assert!(
            (narrow.size_bytes() as f64) < 0.72 * wide.size_bytes() as f64,
            "f32 arena {} bytes vs f64 {} bytes",
            narrow.size_bytes(),
            wide.size_bytes()
        );
    }

    #[test]
    fn empty_index_contains_nothing() {
        let idx = PrsimIndex::empty(10);
        assert_eq!(idx.hub_count(), 0);
        assert_eq!(idx.entry_count(), 0);
        assert!(!idx.contains(3));
        assert!(idx.postings(3, 0).is_none());
    }

    #[test]
    fn dirty_tracking_repairs_to_fresh_build() {
        // Apply a random-ish edit stream; after each edit, repairing only
        // the dirty hubs must reproduce a from-scratch tracked build's
        // reserve lists exactly (same hub set, same graph).
        use prsim_graph::delta::DeltaGraph;
        let g = graph();
        let r_max = 1e-3;
        let hubs = top_hubs(&g, 16);
        let (mut idx, mut touch) =
            PrsimIndex::build_tracked(&g, hubs.clone(), SQRT_C, r_max, 64, 2);
        assert_eq!(touch.hub_count(), 16);
        assert!(touch.entry_count() > 0);

        let mut prev = g.clone();
        let mut d = DeltaGraph::new(g);
        let edits = [(5u32, 150u32, true), (0, 199, true), (1, 0, false)];
        for (a, b, insert) in edits {
            let changed = if insert {
                d.insert_edge(a, b)
            } else {
                d.delete_edge(a, b)
            };
            if !changed {
                continue;
            }
            let old_din_b = if (b as usize) < prev.node_count() {
                prev.in_degree(b)
            } else {
                0
            };
            let dirty = touch.plan_update(a, b, old_din_b, insert, SQRT_C, r_max);
            let snap = d.snapshot();
            idx.repair_hubs(&snap, &dirty, &mut touch, SQRT_C, r_max, 64, 2);
            // The repaired index must equal a from-scratch build exactly:
            // dirty hubs are re-searched and clean hubs are unchanged by
            // construction of the dirty rule.
            let (fresh, fresh_touch) =
                PrsimIndex::build_tracked(&snap, hubs.clone(), SQRT_C, r_max, 64, 1);
            assert_eq!(idx, fresh, "after edit ({a}, {b}, insert={insert})");
            // Stored records must dominate the fresh search's residues
            // (they are maintained as sound upper bounds on clean hubs
            // and recomputed exactly on repaired ones).
            for rank in 0..touch.hub_count() {
                for &(v, rf) in &fresh_touch.per_hub[rank] {
                    let stored = touch.max_residue(rank, v);
                    assert!(
                        stored >= rf - 1e-12 * rf.abs(),
                        "hub rank {rank}, node {v}: stored bound {stored} < fresh residue {rf}"
                    );
                }
            }
            prev = snap;
        }
    }

    #[test]
    fn repeated_repairs_tombstone_then_compact() {
        // Repairing the same hubs over and over must keep the logical
        // index identical to a fresh build while the arena tombstones
        // grow and eventually compaction reclaims them.
        let g = graph();
        let hubs = top_hubs(&g, 12);
        let (mut idx, mut touch) = PrsimIndex::build_tracked(&g, hubs.clone(), SQRT_C, 1e-4, 64, 1);
        let fresh = idx.clone();
        let mut saw_dead = false;
        let mut compacted = false;
        // Repairing one hub per round tombstones its run; dead entries
        // accumulate until they outnumber live postings, then one
        // compaction reclaims everything.
        for round in 0..64 {
            idx.repair_hubs(&g, &[round % 12], &mut touch, SQRT_C, 1e-4, 64, 1);
            assert_eq!(idx, fresh, "round {round}");
            saw_dead |= idx.stats().dead_entries > 0;
            compacted |= idx.stats().compactions > 0;
        }
        assert!(saw_dead, "repairs must tombstone superseded runs");
        assert!(compacted, "accumulated tombstones must trip compaction");
        // Tombstones never exceed live entries after the repair loop.
        let s = idx.stats();
        assert!(
            s.dead_entries <= s.entries.max(COMPACT_MIN_DEAD),
            "dead {} vs live {}",
            s.dead_entries,
            s.entries
        );
        // Serialization sees only the live view.
        let back = PrsimIndex::from_bytes(&idx.to_bytes(), g.node_count()).unwrap();
        assert_eq!(back, fresh);
        assert_eq!(back.stats().dead_entries, 0);
    }

    #[test]
    fn ensure_nodes_extends_non_hub_universe() {
        let g = graph();
        let mut idx = build(&g, 8, 1);
        let n = g.node_count();
        idx.ensure_nodes(n + 5);
        assert!(!idx.contains((n + 4) as NodeId));
        assert!(idx.postings((n + 4) as NodeId, 0).is_none());
        // Shrinking is a no-op.
        idx.ensure_nodes(1);
        assert!(idx.contains(idx.hubs()[0]));
    }

    #[test]
    fn serialization_round_trip() {
        let g = graph();
        for idx in [build(&g, 16, 2), build_f32(&g, 16), build(&g, 0, 1)] {
            let bytes = idx.to_bytes();
            let back = PrsimIndex::from_bytes(&bytes, g.node_count()).unwrap();
            assert_eq!(idx, back);
            assert_eq!(idx.precision(), back.precision());
        }
    }

    #[test]
    fn serialization_rejects_corruption() {
        let g = graph();
        let idx = build(&g, 4, 1);
        let bytes = idx.to_bytes().to_vec();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(PrsimIndex::from_bytes(&bad, g.node_count()).is_err());
        // Unknown flags.
        let mut bad = bytes.clone();
        bad[8] |= 0x80;
        assert!(PrsimIndex::from_bytes(&bad, g.node_count()).is_err());
        // Truncations at every prefix boundary we care about.
        for cut in [5usize, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                PrsimIndex::from_bytes(&bytes[..cut], g.node_count()).is_err(),
                "cut {cut} accepted"
            );
        }
    }

    #[test]
    fn serialization_rejects_non_monotone_offsets() {
        let g = graph();
        let idx = build(&g, 4, 1);
        let bytes = idx.to_bytes().to_vec();
        // The offset table sits after magic(8) + flags(4) + j0(8) +
        // hubs(4·j0) + level_counts(4·j0).
        let j0 = idx.hub_count();
        let offsets_at = 8 + 4 + 8 + 4 * j0 + 4 * j0;
        assert!(idx.entry_count() > 0, "test graph must yield postings");
        // Overwrite the second offset with a value above the final total
        // -> a later offset must decrease -> non-monotone.
        let mut bad = bytes.clone();
        bad[offsets_at + 4..offsets_at + 8]
            .copy_from_slice(&(idx.entry_count() as u32 + 7).to_le_bytes());
        let err = PrsimIndex::from_bytes(&bad, g.node_count());
        assert!(err.is_err(), "non-monotone offsets accepted");
        // Offsets must start at zero.
        let mut bad = bytes;
        bad[offsets_at..offsets_at + 4].copy_from_slice(&1u32.to_le_bytes());
        assert!(PrsimIndex::from_bytes(&bad, g.node_count()).is_err());
    }

    #[test]
    fn size_grows_with_hub_count() {
        let g = graph();
        let small = build(&g, 4, 1);
        let large = build(&g, 64, 1);
        assert!(large.entry_count() > small.entry_count());
        assert!(large.size_bytes() > small.size_bytes());
        let s = large.stats();
        assert_eq!(s.hubs, 64);
        assert_eq!(s.entries, large.entry_count());
        assert_eq!(s.dead_entries, 0);
        assert_eq!(s.size_bytes, large.size_bytes());
    }

    #[test]
    fn smaller_r_max_stores_more() {
        let g = graph();
        let hubs = top_hubs(&g, 10);
        let coarse = PrsimIndex::build(&g, hubs.clone(), SQRT_C, 1e-2, 64, 1);
        let fine = PrsimIndex::build(&g, hubs, SQRT_C, 1e-5, 64, 1);
        assert!(fine.entry_count() > coarse.entry_count());
    }
}
