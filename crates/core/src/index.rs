//! The PRSim hub index (paper Algorithm 1).
//!
//! The index stores, for each of the `j₀` nodes with the largest reverse
//! PageRank ("hubs"), the level-wise backward-search reserves
//! `L_ℓ(w) = {(v, ψ_ℓ(v,w)) : ψ_ℓ(v,w) > r_max}`. At query time,
//! Algorithm 4 reads `π_ℓ(v, ·)` for hub terminals straight from these
//! lists instead of running backward walks, which is what caps the query
//! cost contribution of high-π nodes.
//!
//! Hub construction is embarrassingly parallel (one backward search per
//! hub); [`PrsimIndex::build`] fans the searches out over
//! `build_threads` workers.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use prsim_graph::{DiGraph, NodeId};

use crate::backward::backward_search;
use crate::PrsimError;

/// Magic bytes identifying the serialized index format, version 2.
/// (v2 dropped the node count from the header: the deserializer takes it
/// from the caller's graph, so corrupted headers can never trigger
/// attacker-sized allocations.)
const MAGIC: &[u8; 8] = b"PRSIMIX2";

/// Sentinel marking non-hub nodes in the position table.
const NOT_A_HUB: u32 = u32::MAX;

/// Per-hub backward-search result: `lists[level]` = `(v, ψ_ℓ(v, hub))`.
type HubLists = Vec<Vec<(NodeId, f64)>>;

/// Immutable hub index.
#[derive(Clone, Debug, PartialEq)]
pub struct PrsimIndex {
    /// Hub node ids in descending reverse-PageRank order.
    hubs: Vec<NodeId>,
    /// `hub_pos[v] = rank of v among hubs`, or [`NOT_A_HUB`].
    hub_pos: Vec<u32>,
    /// `lists[hub_rank][level]` = `(v, ψ_ℓ(v, hub))` entries sorted by `v`.
    lists: Vec<Vec<Vec<(NodeId, f64)>>>,
}

impl PrsimIndex {
    /// Builds the index for the given hubs (descending-π node ids).
    ///
    /// `r_max` is the backward-search residue threshold (Algorithm 1 line
    /// 8: `(1−√c)²ε/12`); only reserves above `r_max` are stored (line 15).
    pub fn build(
        g: &DiGraph,
        hubs: Vec<NodeId>,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        build_threads: usize,
    ) -> Self {
        let n = g.node_count();
        let mut hub_pos = vec![NOT_A_HUB; n];
        for (rank, &w) in hubs.iter().enumerate() {
            hub_pos[w as usize] = rank as u32;
        }

        let threads = build_threads.max(1).min(hubs.len().max(1));
        let mut lists: Vec<HubLists> = Vec::with_capacity(hubs.len());
        if threads <= 1 || hubs.len() < 4 {
            for &w in &hubs {
                lists.push(Self::search_one(g, w, sqrt_c, r_max, max_level));
            }
        } else {
            let mut slots: Vec<Option<HubLists>> = vec![None; hubs.len()];
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots_mutex = std::sync::Mutex::new(&mut slots);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= hubs.len() {
                            break;
                        }
                        let result = Self::search_one(g, hubs[i], sqrt_c, r_max, max_level);
                        slots_mutex.lock().expect("no panics hold this lock")[i] = Some(result);
                    });
                }
            });
            lists.extend(slots.into_iter().map(|s| s.expect("all hubs processed")));
        }

        PrsimIndex {
            hubs,
            hub_pos,
            lists,
        }
    }

    fn search_one(g: &DiGraph, w: NodeId, sqrt_c: f64, r_max: f64, max_level: usize) -> HubLists {
        let res = backward_search(g, sqrt_c, w, r_max, max_level);
        res.levels
            .into_iter()
            .map(|level| level.into_iter().filter(|&(_, psi)| psi > r_max).collect())
            .collect()
    }

    /// Creates an empty (index-free) instance for a graph with `n` nodes.
    pub fn empty(n: usize) -> Self {
        PrsimIndex {
            hubs: Vec::new(),
            hub_pos: vec![NOT_A_HUB; n],
            lists: Vec::new(),
        }
    }

    /// Number of hubs `j₀`.
    #[inline]
    pub fn hub_count(&self) -> usize {
        self.hubs.len()
    }

    /// The hub node ids in descending reverse-PageRank order.
    #[inline]
    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// Whether `w` is an indexed hub.
    #[inline]
    pub fn contains(&self, w: NodeId) -> bool {
        self.hub_pos
            .get(w as usize)
            .is_some_and(|&p| p != NOT_A_HUB)
    }

    /// The reserve list `L_ℓ(w)`, or `None` when `w` is not a hub or has
    /// no entries at that level.
    pub fn level_list(&self, w: NodeId, level: usize) -> Option<&[(NodeId, f64)]> {
        let pos = *self.hub_pos.get(w as usize)?;
        if pos == NOT_A_HUB {
            return None;
        }
        self.lists[pos as usize]
            .get(level)
            .map(|v| v.as_slice())
            .filter(|v| !v.is_empty())
    }

    /// Total number of stored `(v, ψ)` entries.
    pub fn entry_count(&self) -> usize {
        self.lists
            .iter()
            .flat_map(|levels| levels.iter().map(Vec::len))
            .sum()
    }

    /// Approximate resident size of the index payload in bytes
    /// (12 bytes per entry + list/hub overheads).
    pub fn size_bytes(&self) -> usize {
        let entries = self.entry_count() * (4 + 8);
        let level_overhead: usize = self
            .lists
            .iter()
            .map(|levels| levels.len() * std::mem::size_of::<Vec<(NodeId, f64)>>())
            .sum();
        entries + level_overhead + self.hubs.len() * 4 + self.hub_pos.len() * 4
    }

    /// Serializes the index into a compact binary buffer. Deserialize
    /// with [`PrsimIndex::from_bytes`], passing the graph's node count.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(self.hubs.len() as u64);
        for &h in &self.hubs {
            buf.put_u32_le(h);
        }
        for levels in &self.lists {
            buf.put_u32_le(levels.len() as u32);
            for level in levels {
                buf.put_u64_le(level.len() as u64);
                for &(v, psi) in level {
                    buf.put_u32_le(v);
                    buf.put_f64_le(psi);
                }
            }
        }
        buf.freeze()
    }

    /// Deserializes an index produced by [`PrsimIndex::to_bytes`]; `n` is
    /// the node count of the graph the index belongs to. Every allocation
    /// is bounded by the payload size or by `n`, so corrupt input yields
    /// `Err`, never a panic or an attacker-sized allocation.
    pub fn from_bytes(mut data: &[u8], n: usize) -> Result<Self, PrsimError> {
        let corrupt = |msg: &str| PrsimError::CorruptIndex(msg.to_string());
        if data.len() < 16 {
            return Err(corrupt("header truncated"));
        }
        let mut magic = [0u8; 8];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let j0 = data.get_u64_le() as usize;
        if j0 > n || data.remaining() < j0.saturating_mul(4) {
            return Err(corrupt("hub table truncated or hub count exceeds n"));
        }
        let mut hubs = Vec::with_capacity(j0);
        let mut hub_pos = vec![NOT_A_HUB; n];
        for rank in 0..j0 {
            let h = data.get_u32_le();
            if h as usize >= n || hub_pos[h as usize] != NOT_A_HUB {
                return Err(corrupt("hub id out of range or duplicated"));
            }
            hubs.push(h);
            hub_pos[h as usize] = rank as u32;
        }
        let mut lists = Vec::with_capacity(j0);
        for _ in 0..j0 {
            if data.remaining() < 4 {
                return Err(corrupt("level count truncated"));
            }
            let levels = data.get_u32_le() as usize;
            if levels > data.remaining() {
                return Err(corrupt("level count exceeds payload"));
            }
            let mut per_hub = Vec::with_capacity(levels);
            for _ in 0..levels {
                if data.remaining() < 8 {
                    return Err(corrupt("entry count truncated"));
                }
                let cnt = data.get_u64_le() as usize;
                if cnt
                    .checked_mul(12)
                    .is_none_or(|need| data.remaining() < need)
                {
                    return Err(corrupt("entries truncated"));
                }
                let mut level = Vec::with_capacity(cnt);
                for _ in 0..cnt {
                    let v = data.get_u32_le();
                    if v as usize >= n {
                        return Err(corrupt("entry node id out of range"));
                    }
                    let psi = data.get_f64_le();
                    if !psi.is_finite() || psi < 0.0 {
                        return Err(corrupt("entry reserve not a finite nonnegative value"));
                    }
                    level.push((v, psi));
                }
                per_hub.push(level);
            }
            lists.push(per_hub);
        }
        Ok(PrsimIndex {
            hubs,
            hub_pos,
            lists,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{rank_by_pagerank, reverse_pagerank};
    use prsim_graph::ordering::sort_out_by_in_degree;

    const SQRT_C: f64 = 0.774_596_669_241_483_4;

    fn graph() -> DiGraph {
        let mut g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 6.0, 2.0, 5));
        sort_out_by_in_degree(&mut g);
        g
    }

    fn build(g: &DiGraph, j0: usize, threads: usize) -> PrsimIndex {
        let pi = reverse_pagerank(g, SQRT_C, 1e-10, 64);
        let hubs: Vec<NodeId> = rank_by_pagerank(&pi).into_iter().take(j0).collect();
        PrsimIndex::build(g, hubs, SQRT_C, 1e-4, 64, threads)
    }

    #[test]
    fn contains_exactly_the_hubs() {
        let g = graph();
        let idx = build(&g, 20, 1);
        assert_eq!(idx.hub_count(), 20);
        let hubs: std::collections::HashSet<_> = idx.hubs().iter().copied().collect();
        for v in g.nodes() {
            assert_eq!(idx.contains(v), hubs.contains(&v));
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let g = graph();
        let a = build(&g, 24, 1);
        let b = build(&g, 24, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn level_lists_match_direct_backward_search() {
        let g = graph();
        let idx = build(&g, 8, 2);
        let r_max = 1e-4;
        for &w in idx.hubs() {
            let direct = crate::backward::backward_search(&g, SQRT_C, w, r_max, 64);
            for (l, level) in direct.levels.iter().enumerate() {
                let expect: Vec<(NodeId, f64)> = level
                    .iter()
                    .copied()
                    .filter(|&(_, psi)| psi > r_max)
                    .collect();
                let got = idx.level_list(w, l).unwrap_or(&[]);
                assert_eq!(got, expect.as_slice(), "hub {w} level {l}");
            }
        }
    }

    #[test]
    fn empty_index_contains_nothing() {
        let idx = PrsimIndex::empty(10);
        assert_eq!(idx.hub_count(), 0);
        assert_eq!(idx.entry_count(), 0);
        assert!(!idx.contains(3));
        assert!(idx.level_list(3, 0).is_none());
    }

    #[test]
    fn serialization_round_trip() {
        let g = graph();
        let idx = build(&g, 16, 2);
        let bytes = idx.to_bytes();
        let back = PrsimIndex::from_bytes(&bytes, g.node_count()).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn serialization_rejects_corruption() {
        let g = graph();
        let idx = build(&g, 4, 1);
        let bytes = idx.to_bytes().to_vec();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(PrsimIndex::from_bytes(&bad, g.node_count()).is_err());
        // Truncations at every prefix boundary we care about.
        for cut in [5usize, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                PrsimIndex::from_bytes(&bytes[..cut], g.node_count()).is_err(),
                "cut {cut} accepted"
            );
        }
    }

    #[test]
    fn size_grows_with_hub_count() {
        let g = graph();
        let small = build(&g, 4, 1);
        let large = build(&g, 64, 1);
        assert!(large.entry_count() > small.entry_count());
        assert!(large.size_bytes() > small.size_bytes());
    }

    #[test]
    fn smaller_r_max_stores_more() {
        let g = graph();
        let pi = reverse_pagerank(&g, SQRT_C, 1e-10, 64);
        let hubs: Vec<NodeId> = rank_by_pagerank(&pi).into_iter().take(10).collect();
        let coarse = PrsimIndex::build(&g, hubs.clone(), SQRT_C, 1e-2, 64, 1);
        let fine = PrsimIndex::build(&g, hubs, SQRT_C, 1e-5, 64, 1);
        assert!(fine.entry_count() > coarse.entry_count());
    }
}
