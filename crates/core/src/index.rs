//! The PRSim hub index (paper Algorithm 1).
//!
//! The index stores, for each of the `j₀` nodes with the largest reverse
//! PageRank ("hubs"), the level-wise backward-search reserves
//! `L_ℓ(w) = {(v, ψ_ℓ(v,w)) : ψ_ℓ(v,w) > r_max}`. At query time,
//! Algorithm 4 reads `π_ℓ(v, ·)` for hub terminals straight from these
//! lists instead of running backward walks, which is what caps the query
//! cost contribution of high-π nodes.
//!
//! Hub construction is embarrassingly parallel (one backward search per
//! hub); [`PrsimIndex::build`] fans the searches out over
//! `build_threads` workers.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use prsim_graph::{DiGraph, NodeId};

use crate::backward::backward_search;
use crate::PrsimError;

/// Magic bytes identifying the serialized index format, version 2.
/// (v2 dropped the node count from the header: the deserializer takes it
/// from the caller's graph, so corrupted headers can never trigger
/// attacker-sized allocations.)
const MAGIC: &[u8; 8] = b"PRSIMIX2";

/// Sentinel marking non-hub nodes in the position table.
const NOT_A_HUB: u32 = u32::MAX;

/// Per-hub backward-search result: `lists[level]` = `(v, ψ_ℓ(v, hub))`.
type HubLists = Vec<Vec<(NodeId, f64)>>;

/// One hub's touched record: sorted `(node, max residue over levels)`.
type TouchRecord = Vec<(NodeId, f64)>;

/// Per-hub *touched records*: for each hub rank, a sorted
/// `(node, residue bound)` list where the bound dominates the node's max
/// residue over all levels of that hub's backward search (exact right
/// after a search — see
/// [`crate::backward::BackwardSearchResult::touched`] — and maintained as
/// a sound upper bound across clean updates).
///
/// The records drive the dirty filter of [`HubTouchSets::plan_update`].
/// An edge update `(a, b)` perturbs **only `b`'s residues**: the divisor
/// `d_in(b)` changes from `k` to `k'` (scaling every inflow by `k/k'`)
/// and the flow `√c·r_a/k'` from `a` appears or disappears. Nothing else
/// in the search can move unless `b`'s push status or pushed values
/// change, i.e. unless `b`'s residue exceeds the threshold `r_max`
/// before or after the perturbation. So a hub is dirty iff
/// `max(r_b, r_b·k/k' + √c·r_a/k') > r_max` (with the flow term only on
/// insertion; deletion only lowers `b` below its rescaled bound); clean
/// hubs keep byte-identical reserve lists and have `b`'s record replaced
/// by the new bound, which keeps the records sound across arbitrarily
/// long update streams without re-searching.
#[derive(Clone, Debug, Default)]
pub struct HubTouchSets {
    /// `per_hub[rank]` = sorted `(node, residue bound)` of that hub's search.
    per_hub: Vec<Vec<(NodeId, f64)>>,
}

impl HubTouchSets {
    /// Number of hubs tracked.
    #[inline]
    pub fn hub_count(&self) -> usize {
        self.per_hub.len()
    }

    /// Total stored touched entries (memory observability).
    pub fn entry_count(&self) -> usize {
        self.per_hub.iter().map(Vec::len).sum()
    }

    /// The residue bound hub `rank`'s records hold for node `v` (0.0 when
    /// untouched).
    #[inline]
    pub fn max_residue(&self, rank: usize, v: NodeId) -> f64 {
        self.per_hub[rank]
            .binary_search_by_key(&v, |&(x, _)| x)
            .ok()
            .map(|i| self.per_hub[rank][i].1)
            .unwrap_or(0.0)
    }

    /// Whether hub `rank`'s search touched node `v` at all.
    #[inline]
    pub fn touches(&self, rank: usize, v: NodeId) -> bool {
        self.max_residue(rank, v) > 0.0
    }

    /// Classifies edge update `(a, b)` against every hub and returns the
    /// ranks that must be re-searched; clean hubs have `b`'s record
    /// replaced by the new residue bound (rescaled inflows plus, on
    /// insertion, the bound of the flow newly arriving from `a`).
    ///
    /// `old_in_degree_b` is `d_in(b)` in the graph the stored searches
    /// were run on (0 when `b` is a brand-new node); `sqrt_c`/`r_max` are
    /// the searches' decay and residue threshold.
    pub fn plan_update(
        &mut self,
        a: NodeId,
        b: NodeId,
        old_in_degree_b: usize,
        is_insert: bool,
        sqrt_c: f64,
        r_max: f64,
    ) -> Vec<usize> {
        let k = old_in_degree_b as f64;
        let mut dirty = Vec::new();
        for (rank, recs) in self.per_hub.iter_mut().enumerate() {
            let rb_slot = recs.binary_search_by_key(&b, |&(x, _)| x);
            let rb = rb_slot.map(|i| recs[i].1).unwrap_or(0.0);
            // All of b's inflows share the divisor d_in(b): k -> k±1; on
            // insertion a's pushes additionally send at most √c·r_a/(k+1).
            let new_bound = if is_insert {
                let ra = recs
                    .binary_search_by_key(&a, |&(x, _)| x)
                    .ok()
                    .map(|i| recs[i].1)
                    .unwrap_or(0.0);
                (rb * k + sqrt_c * ra) / (k + 1.0)
            } else if old_in_degree_b <= 1 {
                0.0 // b loses its last in-edge: every inflow dies
            } else {
                rb * k / (k - 1.0)
            };
            if rb > r_max || new_bound > r_max {
                dirty.push(rank);
            } else {
                match rb_slot {
                    Ok(i) => recs[i].1 = new_bound,
                    Err(i) if new_bound > 0.0 => recs.insert(i, (b, new_bound)),
                    Err(_) => {}
                }
            }
        }
        dirty
    }
}

/// Immutable hub index.
#[derive(Clone, Debug, PartialEq)]
pub struct PrsimIndex {
    /// Hub node ids in descending reverse-PageRank order.
    hubs: Vec<NodeId>,
    /// `hub_pos[v] = rank of v among hubs`, or [`NOT_A_HUB`].
    hub_pos: Vec<u32>,
    /// `lists[hub_rank][level]` = `(v, ψ_ℓ(v, hub))` entries sorted by `v`.
    lists: Vec<Vec<Vec<(NodeId, f64)>>>,
}

impl PrsimIndex {
    /// Builds the index for the given hubs (descending-π node ids).
    ///
    /// `r_max` is the backward-search residue threshold (Algorithm 1 line
    /// 8: `(1−√c)²ε/12`); only reserves above `r_max` are stored (line 15).
    pub fn build(
        g: &DiGraph,
        hubs: Vec<NodeId>,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        build_threads: usize,
    ) -> Self {
        Self::build_tracked(g, hubs, sqrt_c, r_max, max_level, build_threads).0
    }

    /// [`PrsimIndex::build`], additionally returning the per-hub touched
    /// sets the dynamic engine uses to repair only the searches an edge
    /// update can actually have changed.
    pub fn build_tracked(
        g: &DiGraph,
        hubs: Vec<NodeId>,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        build_threads: usize,
    ) -> (Self, HubTouchSets) {
        let n = g.node_count();
        let mut hub_pos = vec![NOT_A_HUB; n];
        for (rank, &w) in hubs.iter().enumerate() {
            hub_pos[w as usize] = rank as u32;
        }

        let searched = Self::search_many(g, &hubs, sqrt_c, r_max, max_level, build_threads);
        let mut lists = Vec::with_capacity(hubs.len());
        let mut touched = Vec::with_capacity(hubs.len());
        for (l, t) in searched {
            lists.push(l);
            touched.push(t);
        }

        (
            PrsimIndex {
                hubs,
                hub_pos,
                lists,
            },
            HubTouchSets { per_hub: touched },
        )
    }

    /// Runs the backward searches for `hubs` (any node list) over
    /// `threads` workers, returning per-hub filtered reserve lists and
    /// touched sets in input order.
    fn search_many(
        g: &DiGraph,
        hubs: &[NodeId],
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        threads: usize,
    ) -> Vec<(HubLists, TouchRecord)> {
        let threads = threads.max(1).min(hubs.len().max(1));
        if threads <= 1 || hubs.len() < 4 {
            return hubs
                .iter()
                .map(|&w| Self::search_one(g, w, sqrt_c, r_max, max_level))
                .collect();
        }
        let mut slots: Vec<Option<(HubLists, TouchRecord)>> = vec![None; hubs.len()];
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots_mutex = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= hubs.len() {
                        break;
                    }
                    let result = Self::search_one(g, hubs[i], sqrt_c, r_max, max_level);
                    slots_mutex.lock().expect("no panics hold this lock")[i] = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("all hubs processed"))
            .collect()
    }

    fn search_one(
        g: &DiGraph,
        w: NodeId,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
    ) -> (HubLists, TouchRecord) {
        let res = backward_search(g, sqrt_c, w, r_max, max_level);
        let lists = res
            .levels
            .into_iter()
            .map(|level| level.into_iter().filter(|&(_, psi)| psi > r_max).collect())
            .collect();
        (lists, res.touched)
    }

    /// Extends the node universe to `n` (new nodes are non-hubs). Called
    /// by the dynamic engine when edge inserts grow the graph.
    pub fn ensure_nodes(&mut self, n: usize) {
        if n > self.hub_pos.len() {
            self.hub_pos.resize(n, NOT_A_HUB);
        }
    }

    /// Re-runs the backward searches of the hubs at `ranks` against the
    /// (mutated) graph `g`, replacing their reserve lists in place and
    /// updating their entries in `touch`. Repairs fan out over `threads`
    /// workers like the build.
    #[allow(clippy::too_many_arguments)] // mirrors build_tracked's signature
    pub fn repair_hubs(
        &mut self,
        g: &DiGraph,
        ranks: &[usize],
        touch: &mut HubTouchSets,
        sqrt_c: f64,
        r_max: f64,
        max_level: usize,
        threads: usize,
    ) {
        let nodes: Vec<NodeId> = ranks.iter().map(|&r| self.hubs[r]).collect();
        let repaired = Self::search_many(g, &nodes, sqrt_c, r_max, max_level, threads);
        for (&rank, (lists, touched)) in ranks.iter().zip(repaired) {
            self.lists[rank] = lists;
            touch.per_hub[rank] = touched;
        }
    }

    /// Creates an empty (index-free) instance for a graph with `n` nodes.
    pub fn empty(n: usize) -> Self {
        PrsimIndex {
            hubs: Vec::new(),
            hub_pos: vec![NOT_A_HUB; n],
            lists: Vec::new(),
        }
    }

    /// Number of hubs `j₀`.
    #[inline]
    pub fn hub_count(&self) -> usize {
        self.hubs.len()
    }

    /// The hub node ids in descending reverse-PageRank order.
    #[inline]
    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// Whether `w` is an indexed hub.
    #[inline]
    pub fn contains(&self, w: NodeId) -> bool {
        self.hub_pos
            .get(w as usize)
            .is_some_and(|&p| p != NOT_A_HUB)
    }

    /// The reserve list `L_ℓ(w)`, or `None` when `w` is not a hub or has
    /// no entries at that level.
    pub fn level_list(&self, w: NodeId, level: usize) -> Option<&[(NodeId, f64)]> {
        let pos = *self.hub_pos.get(w as usize)?;
        if pos == NOT_A_HUB {
            return None;
        }
        self.lists[pos as usize]
            .get(level)
            .map(|v| v.as_slice())
            .filter(|v| !v.is_empty())
    }

    /// Total number of stored `(v, ψ)` entries.
    pub fn entry_count(&self) -> usize {
        self.lists
            .iter()
            .flat_map(|levels| levels.iter().map(Vec::len))
            .sum()
    }

    /// Approximate resident size of the index payload in bytes
    /// (12 bytes per entry + list/hub overheads).
    pub fn size_bytes(&self) -> usize {
        let entries = self.entry_count() * (4 + 8);
        let level_overhead: usize = self
            .lists
            .iter()
            .map(|levels| levels.len() * std::mem::size_of::<Vec<(NodeId, f64)>>())
            .sum();
        entries + level_overhead + self.hubs.len() * 4 + self.hub_pos.len() * 4
    }

    /// Serializes the index into a compact binary buffer. Deserialize
    /// with [`PrsimIndex::from_bytes`], passing the graph's node count.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(self.hubs.len() as u64);
        for &h in &self.hubs {
            buf.put_u32_le(h);
        }
        for levels in &self.lists {
            buf.put_u32_le(levels.len() as u32);
            for level in levels {
                buf.put_u64_le(level.len() as u64);
                for &(v, psi) in level {
                    buf.put_u32_le(v);
                    buf.put_f64_le(psi);
                }
            }
        }
        buf.freeze()
    }

    /// Deserializes an index produced by [`PrsimIndex::to_bytes`]; `n` is
    /// the node count of the graph the index belongs to. Every allocation
    /// is bounded by the payload size or by `n`, so corrupt input yields
    /// `Err`, never a panic or an attacker-sized allocation.
    pub fn from_bytes(mut data: &[u8], n: usize) -> Result<Self, PrsimError> {
        let corrupt = |msg: &str| PrsimError::CorruptIndex(msg.to_string());
        if data.len() < 16 {
            return Err(corrupt("header truncated"));
        }
        let mut magic = [0u8; 8];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let j0 = data.get_u64_le() as usize;
        if j0 > n || data.remaining() < j0.saturating_mul(4) {
            return Err(corrupt("hub table truncated or hub count exceeds n"));
        }
        let mut hubs = Vec::with_capacity(j0);
        let mut hub_pos = vec![NOT_A_HUB; n];
        for rank in 0..j0 {
            let h = data.get_u32_le();
            if h as usize >= n || hub_pos[h as usize] != NOT_A_HUB {
                return Err(corrupt("hub id out of range or duplicated"));
            }
            hubs.push(h);
            hub_pos[h as usize] = rank as u32;
        }
        let mut lists = Vec::with_capacity(j0);
        for _ in 0..j0 {
            if data.remaining() < 4 {
                return Err(corrupt("level count truncated"));
            }
            let levels = data.get_u32_le() as usize;
            if levels > data.remaining() {
                return Err(corrupt("level count exceeds payload"));
            }
            let mut per_hub = Vec::with_capacity(levels);
            for _ in 0..levels {
                if data.remaining() < 8 {
                    return Err(corrupt("entry count truncated"));
                }
                let cnt = data.get_u64_le() as usize;
                if cnt
                    .checked_mul(12)
                    .is_none_or(|need| data.remaining() < need)
                {
                    return Err(corrupt("entries truncated"));
                }
                let mut level = Vec::with_capacity(cnt);
                for _ in 0..cnt {
                    let v = data.get_u32_le();
                    if v as usize >= n {
                        return Err(corrupt("entry node id out of range"));
                    }
                    let psi = data.get_f64_le();
                    if !psi.is_finite() || psi < 0.0 {
                        return Err(corrupt("entry reserve not a finite nonnegative value"));
                    }
                    level.push((v, psi));
                }
                per_hub.push(level);
            }
            lists.push(per_hub);
        }
        Ok(PrsimIndex {
            hubs,
            hub_pos,
            lists,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{rank_by_pagerank, reverse_pagerank};
    use prsim_graph::ordering::sort_out_by_in_degree;

    const SQRT_C: f64 = 0.774_596_669_241_483_4;

    fn graph() -> DiGraph {
        let mut g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 6.0, 2.0, 5));
        sort_out_by_in_degree(&mut g);
        g
    }

    fn build(g: &DiGraph, j0: usize, threads: usize) -> PrsimIndex {
        let pi = reverse_pagerank(g, SQRT_C, 1e-10, 64);
        let hubs: Vec<NodeId> = rank_by_pagerank(&pi).into_iter().take(j0).collect();
        PrsimIndex::build(g, hubs, SQRT_C, 1e-4, 64, threads)
    }

    #[test]
    fn contains_exactly_the_hubs() {
        let g = graph();
        let idx = build(&g, 20, 1);
        assert_eq!(idx.hub_count(), 20);
        let hubs: std::collections::HashSet<_> = idx.hubs().iter().copied().collect();
        for v in g.nodes() {
            assert_eq!(idx.contains(v), hubs.contains(&v));
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let g = graph();
        let a = build(&g, 24, 1);
        let b = build(&g, 24, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn level_lists_match_direct_backward_search() {
        let g = graph();
        let idx = build(&g, 8, 2);
        let r_max = 1e-4;
        for &w in idx.hubs() {
            let direct = crate::backward::backward_search(&g, SQRT_C, w, r_max, 64);
            for (l, level) in direct.levels.iter().enumerate() {
                let expect: Vec<(NodeId, f64)> = level
                    .iter()
                    .copied()
                    .filter(|&(_, psi)| psi > r_max)
                    .collect();
                let got = idx.level_list(w, l).unwrap_or(&[]);
                assert_eq!(got, expect.as_slice(), "hub {w} level {l}");
            }
        }
    }

    #[test]
    fn empty_index_contains_nothing() {
        let idx = PrsimIndex::empty(10);
        assert_eq!(idx.hub_count(), 0);
        assert_eq!(idx.entry_count(), 0);
        assert!(!idx.contains(3));
        assert!(idx.level_list(3, 0).is_none());
    }

    #[test]
    fn dirty_tracking_repairs_to_fresh_build() {
        // Apply a random-ish edit stream; after each edit, repairing only
        // the dirty hubs must reproduce a from-scratch tracked build's
        // reserve lists exactly (same hub set, same graph).
        use prsim_graph::delta::DeltaGraph;
        let g = graph();
        let r_max = 1e-3;
        let pi = reverse_pagerank(&g, SQRT_C, 1e-10, 64);
        let hubs: Vec<NodeId> = rank_by_pagerank(&pi).into_iter().take(16).collect();
        let (mut idx, mut touch) =
            PrsimIndex::build_tracked(&g, hubs.clone(), SQRT_C, r_max, 64, 2);
        assert_eq!(touch.hub_count(), 16);
        assert!(touch.entry_count() > 0);

        let mut prev = g.clone();
        let mut d = DeltaGraph::new(g);
        let edits = [(5u32, 150u32, true), (0, 199, true), (1, 0, false)];
        for (a, b, insert) in edits {
            let changed = if insert {
                d.insert_edge(a, b)
            } else {
                d.delete_edge(a, b)
            };
            if !changed {
                continue;
            }
            let old_din_b = if (b as usize) < prev.node_count() {
                prev.in_degree(b)
            } else {
                0
            };
            let dirty = touch.plan_update(a, b, old_din_b, insert, SQRT_C, r_max);
            let snap = d.snapshot();
            idx.repair_hubs(&snap, &dirty, &mut touch, SQRT_C, r_max, 64, 2);
            // The repaired index must equal a from-scratch build exactly:
            // dirty hubs are re-searched and clean hubs are unchanged by
            // construction of the dirty rule.
            let (fresh, fresh_touch) =
                PrsimIndex::build_tracked(&snap, hubs.clone(), SQRT_C, r_max, 64, 1);
            assert_eq!(idx, fresh, "after edit ({a}, {b}, insert={insert})");
            // Stored records must dominate the fresh search's residues
            // (they are maintained as sound upper bounds on clean hubs
            // and recomputed exactly on repaired ones).
            for rank in 0..touch.hub_count() {
                for &(v, rf) in &fresh_touch.per_hub[rank] {
                    let stored = touch.max_residue(rank, v);
                    assert!(
                        stored >= rf - 1e-12 * rf.abs(),
                        "hub rank {rank}, node {v}: stored bound {stored} < fresh residue {rf}"
                    );
                }
            }
            prev = snap;
        }
    }

    #[test]
    fn ensure_nodes_extends_non_hub_universe() {
        let g = graph();
        let mut idx = build(&g, 8, 1);
        let n = g.node_count();
        idx.ensure_nodes(n + 5);
        assert!(!idx.contains((n + 4) as NodeId));
        assert!(idx.level_list((n + 4) as NodeId, 0).is_none());
        // Shrinking is a no-op.
        idx.ensure_nodes(1);
        assert!(idx.contains(idx.hubs()[0]));
    }

    #[test]
    fn serialization_round_trip() {
        let g = graph();
        let idx = build(&g, 16, 2);
        let bytes = idx.to_bytes();
        let back = PrsimIndex::from_bytes(&bytes, g.node_count()).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn serialization_rejects_corruption() {
        let g = graph();
        let idx = build(&g, 4, 1);
        let bytes = idx.to_bytes().to_vec();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(PrsimIndex::from_bytes(&bad, g.node_count()).is_err());
        // Truncations at every prefix boundary we care about.
        for cut in [5usize, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                PrsimIndex::from_bytes(&bytes[..cut], g.node_count()).is_err(),
                "cut {cut} accepted"
            );
        }
    }

    #[test]
    fn size_grows_with_hub_count() {
        let g = graph();
        let small = build(&g, 4, 1);
        let large = build(&g, 64, 1);
        assert!(large.entry_count() > small.entry_count());
        assert!(large.size_bytes() > small.size_bytes());
    }

    #[test]
    fn smaller_r_max_stores_more() {
        let g = graph();
        let pi = reverse_pagerank(&g, SQRT_C, 1e-10, 64);
        let hubs: Vec<NodeId> = rank_by_pagerank(&pi).into_iter().take(10).collect();
        let coarse = PrsimIndex::build(&g, hubs.clone(), SQRT_C, 1e-2, 64, 1);
        let fine = PrsimIndex::build(&g, hubs, SQRT_C, 1e-5, 64, 1);
        assert!(fine.entry_count() > coarse.entry_count());
    }
}
