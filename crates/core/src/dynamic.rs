//! Dynamic-graph support (paper §3.5).
//!
//! The paper observes that PRSim's index — `j₀` backward-search results —
//! can be maintained under edge insertions/deletions with amortized cost
//! `O(j₀ + m/(ε·k))` per update when `k` updates are batched. This module
//! implements exactly that amortization contract: updates are buffered,
//! and the engine (graph CSR, reverse PageRank, hub set and all backward
//! searches) is rebuilt once per batch, either explicitly via
//! [`DynamicPrsim::refresh`] or lazily on the first query after the batch
//! threshold is reached.
//!
//! Rebuild-on-batch keeps every query answer *identical* to a fresh
//! build — there is no staleness window beyond the configured batch — at
//! the amortized cost the paper quotes. (A fully incremental backward-push
//! repair per [Zhang, Lofgren & Goel, KDD 2016] is noted by the paper as
//! out of scope; the batching contract is what its §3.5 analyzes.)

use prsim_graph::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;
use std::collections::BTreeSet;

use crate::config::PrsimConfig;
use crate::query::{Prsim, QueryStats};
use crate::scores::SimRankScores;
use crate::PrsimError;

/// A PRSim engine over an evolving edge set.
pub struct DynamicPrsim {
    edges: BTreeSet<(NodeId, NodeId)>,
    n: usize,
    config: PrsimConfig,
    engine: Option<Prsim>,
    /// Updates applied since the engine was last built.
    pending: usize,
    /// Rebuild after this many buffered updates (the paper's batch `k`).
    batch: usize,
    /// Total rebuilds performed (observability / amortization tests).
    pub rebuilds: usize,
}

impl DynamicPrsim {
    /// Creates a dynamic engine from an initial graph. `batch` is the
    /// update count after which queries trigger a rebuild (`k` in the
    /// paper's amortized bound); it must be at least 1.
    pub fn new(graph: &DiGraph, config: PrsimConfig, batch: usize) -> Result<Self, PrsimError> {
        config.validate()?;
        if batch == 0 {
            return Err(PrsimError::InvalidConfig("batch must be at least 1".into()));
        }
        let edges: BTreeSet<(NodeId, NodeId)> = graph.edges().collect();
        Ok(DynamicPrsim {
            edges,
            n: graph.node_count(),
            config,
            engine: None,
            pending: 1, // any nonzero value forces the initial build on first query
            batch,
            rebuilds: 0,
        })
    }

    /// Number of nodes (grows automatically with inserted edges).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Buffered updates since the last rebuild.
    pub fn pending_updates(&self) -> usize {
        if self.engine.is_none() {
            self.pending.max(1)
        } else {
            self.pending
        }
    }

    /// Inserts edge `u → v`; returns false if it already existed.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let added = self.edges.insert((u, v));
        if added {
            self.n = self.n.max(u as usize + 1).max(v as usize + 1);
            self.pending = self.pending.saturating_add(1);
        }
        added
    }

    /// Deletes edge `u → v`; returns false if it was absent.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let removed = self.edges.remove(&(u, v));
        if removed {
            self.pending = self.pending.saturating_add(1);
        }
        removed
    }

    /// True when buffered updates will trigger a rebuild on next query.
    pub fn is_stale(&self) -> bool {
        self.engine.is_none() || self.pending >= self.batch
    }

    /// Rebuilds the engine now, clearing the update buffer.
    pub fn refresh(&mut self) -> Result<(), PrsimError> {
        let mut b = GraphBuilder::with_capacity(self.edges.len());
        b.ensure_nodes(self.n);
        for &(u, v) in &self.edges {
            b.add_edge(u, v);
        }
        let engine = Prsim::build(b.build(), self.config.clone())?;
        self.engine = Some(engine);
        self.pending = 0;
        self.rebuilds += 1;
        Ok(())
    }

    /// Answers a single-source query, rebuilding first if stale.
    pub fn single_source<R: Rng + ?Sized>(
        &mut self,
        u: NodeId,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        if self.is_stale() {
            self.refresh()?;
        }
        self.engine
            .as_ref()
            .expect("engine built by refresh")
            .try_single_source(u, rng)
    }

    /// The current engine, if built (None before the first query/refresh).
    pub fn engine(&self) -> Option<&Prsim> {
        self.engine.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QueryParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> PrsimConfig {
        PrsimConfig {
            eps: 0.1,
            query: QueryParams::Explicit { dr: 2_000, fr: 1 },
            ..Default::default()
        }
    }

    #[test]
    fn matches_fresh_build_after_updates() {
        let g0 = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(80, 5.0, 2.0, 3));
        let mut dyn_engine = DynamicPrsim::new(&g0, config(), 1).unwrap();
        // Apply some edits.
        dyn_engine.insert_edge(0, 79);
        dyn_engine.insert_edge(79, 0);
        let (&(du, dv), _) =
            (g0.edges().collect::<Vec<_>>().first().map(|e| (e, ()))).expect("graph has edges");
        dyn_engine.delete_edge(du, dv);

        // Fresh engine over the same final edge set.
        let mut b = GraphBuilder::new();
        b.ensure_nodes(80);
        for &(u, v) in dyn_engine.edges.iter() {
            b.add_edge(u, v);
        }
        let fresh = Prsim::build(b.build(), config()).unwrap();

        let (scores_dyn, _) = dyn_engine
            .single_source(5, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let scores_fresh = fresh.single_source(5, &mut StdRng::seed_from_u64(9));
        assert_eq!(scores_dyn.max_abs_diff(&scores_fresh), 0.0);
    }

    #[test]
    fn batching_amortizes_rebuilds() {
        let g0 = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 5));
        let mut engine = DynamicPrsim::new(&g0, config(), 10).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = engine.single_source(0, &mut rng).unwrap(); // initial build
        assert_eq!(engine.rebuilds, 1);
        for i in 0..9u32 {
            engine.insert_edge(i, 59 - i);
            let _ = engine.single_source(0, &mut rng).unwrap();
        }
        // 9 updates < batch of 10: no rebuild yet.
        assert_eq!(engine.rebuilds, 1);
        engine.insert_edge(40, 41);
        let _ = engine.single_source(0, &mut rng).unwrap();
        assert_eq!(engine.rebuilds, 2);
        assert_eq!(engine.pending_updates(), 0);
    }

    #[test]
    fn duplicate_and_missing_edges_are_noops() {
        let g0 = prsim_gen::toys::cycle(5);
        let mut engine = DynamicPrsim::new(&g0, config(), 3).unwrap();
        assert!(!engine.insert_edge(0, 1)); // already present
        assert!(!engine.delete_edge(2, 4)); // absent
        assert!(engine.insert_edge(0, 2));
        assert!(engine.delete_edge(0, 2));
        assert_eq!(engine.edge_count(), 5);
    }

    #[test]
    fn node_universe_grows() {
        let g0 = prsim_gen::toys::cycle(4);
        let mut engine = DynamicPrsim::new(&g0, config(), 1).unwrap();
        engine.insert_edge(3, 10);
        assert_eq!(engine.node_count(), 11);
        let (scores, _) = engine
            .single_source(10, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(scores.get(10), 1.0);
    }

    #[test]
    fn similarity_responds_to_edits() {
        // star_out: leaves share the hub as only in-neighbor, s = c.
        // After deleting a leaf's in-edge its similarity must drop to 0.
        let g0 = prsim_gen::toys::star_out(5);
        let mut engine = DynamicPrsim::new(&g0, config(), 1).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let (before, _) = engine.single_source(1, &mut rng).unwrap();
        assert!((before.get(2) - 0.6).abs() < 0.06);
        engine.delete_edge(0, 2);
        let (after, _) = engine.single_source(1, &mut rng).unwrap();
        assert_eq!(after.get(2), 0.0, "node 2 lost its only in-neighbor");
    }

    #[test]
    fn invalid_batch_rejected() {
        let g0 = prsim_gen::toys::cycle(3);
        assert!(DynamicPrsim::new(&g0, config(), 0).is_err());
    }
}
