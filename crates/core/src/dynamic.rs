//! Dynamic-graph support (paper §3.5): incremental index maintenance.
//!
//! The paper observes that PRSim's index — `j₀` backward-search results
//! plus the reverse-PageRank vector — can be maintained under edge
//! insertions/deletions at amortized cost `O(j₀ + m/(ε·k))`, and names
//! the backward-push repair of Zhang, Lofgren & Goel (KDD 2016) as the
//! natural fully-incremental extension. This module implements that
//! extension as [`UpdateMode::Incremental`], with the paper's literal
//! rebuild-on-batch contract retained as [`UpdateMode::RebuildOnBatch`]
//! (it is the differential baseline the test harness and the
//! `dynamic_hot` benchmark compare against).
//!
//! ## The incremental pipeline
//!
//! One applied edge update `(a, b)` runs four repairs — the expensive,
//! super-linear parts of a full `Prsim::build` (the `j₀` backward
//! searches and the cold PageRank solve) shrink to the touched subset,
//! while the graph snapshot and the warm refinement remain cheap linear
//! passes:
//!
//! 1. **Graph**: the [`DeltaGraph`] overlay absorbs the mutation in
//!    `O(d_out + log k)`; a query-ready CSR snapshot is a linear merge, and the
//!    overlay is folded into the base once it exceeds
//!    `compact_threshold`.
//! 2. **Reverse PageRank**: warm-start Richardson refinement from the
//!    previous vector ([`refine_reverse_pagerank`]); after one edge the
//!    initial residual is tiny, so a handful of iterations reach `pr_tol`.
//! 3. **Hub index**: only hubs whose backward search the edge can
//!    actually have changed are re-searched ([`HubTouchSets::plan_update`]
//!    — a sound filter built on per-node residue bounds, see
//!    [`crate::backward::BackwardSearchResult::touched`]). Clean hubs
//!    keep byte-identical reserve lists and just have the target
//!    endpoint's bound rescaled in place.
//! 4. **Drift accounting**: π refinement keeps the *values* exact, but
//!    the hub *selection* (top-`j₀` by π) slowly drifts away from
//!    optimal. The accumulated L1 π-change is charged against
//!    `drift_budget`; exceeding it triggers one full rebuild that
//!    re-selects hubs. Drift never affects correctness — any hub set
//!    answers within ε — only query efficiency.
//!
//! Every query therefore sees a fully fresh engine: there is no
//! staleness window at all in incremental mode. Per-update cost is a
//! small number of linear passes plus repair work proportional to the
//! touched hub searches — `O(n + m)` with a small constant, far below a
//! rebuild (see `BENCH_dynamic.json`), though not sub-linear; a
//! CSR-patching/sparse-push variant is the natural next step if linear
//! passes ever dominate.

use prsim_graph::delta::DeltaGraph;
use prsim_graph::{DiGraph, EdgeUpdate, NodeId};
use rand::Rng;

use crate::config::{DynamicParams, PrsimConfig};
use crate::index::{HubTouchSets, PrsimIndex};
use crate::pagerank::{rank_by_pagerank, refine_reverse_pagerank};
use crate::query::{Prsim, QueryStats};
use crate::scores::SimRankScores;
use crate::PrsimError;

/// Maintenance strategy of a [`DynamicPrsim`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UpdateMode {
    /// Repair incrementally on every applied update (no staleness).
    Incremental(DynamicParams),
    /// Buffer updates and rebuild the whole engine from scratch once
    /// `batch` of them have accumulated (the paper's amortized contract;
    /// queries between rebuilds may see a stale graph).
    RebuildOnBatch {
        /// Updates buffered before a rebuild (`k` in the paper's bound).
        batch: usize,
    },
}

/// Per-update report of what one [`DynamicPrsim::apply`] call did.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateStats {
    /// Whether the update changed the graph (duplicate inserts and
    /// absent deletes are no-ops and skip all maintenance).
    pub applied: bool,
    /// Hubs whose touched sets contained an endpoint (repair candidates).
    pub touched_hubs: usize,
    /// Hub count at the time of the update.
    pub hub_count: usize,
    /// `touched_hubs / hub_count` (0 when index-free).
    pub repair_fraction: f64,
    /// Warm-start PageRank iterations spent.
    pub pr_iterations: usize,
    /// Whether this update tripped the drift budget (or batch) and
    /// caused a full rebuild.
    pub rebuilt: bool,
    /// Whether the delta overlay was compacted into its CSR base.
    pub compacted: bool,
    /// Whether the repair tripped a postings-arena compaction (tombstoned
    /// runs outnumbered live postings).
    pub index_compacted: bool,
    /// Walk-cache pools this update invalidated and refilled (pools whose
    /// walks can traverse the changed adjacency; 0 when the cache is
    /// disabled or the update was absorbed by a full rebuild).
    pub cache_invalidated_pools: usize,
}

/// Lifetime totals of a [`DynamicPrsim`] (observability / benchmarks).
#[derive(Clone, Copy, Debug, Default)]
pub struct DynamicTotals {
    /// Updates that changed the graph.
    pub applied_updates: usize,
    /// Updates that were no-ops.
    pub noop_updates: usize,
    /// Hub searches repaired incrementally.
    pub repaired_hubs: usize,
    /// Full engine rebuilds.
    pub rebuilds: usize,
    /// Delta-overlay compactions.
    pub compactions: usize,
    /// Postings-arena compactions inside the hub index.
    pub index_compactions: usize,
    /// Walk-cache pool invalidations (pools refilled across all updates).
    pub cache_invalidations: usize,
}

/// A PRSim engine over an evolving edge set.
pub struct DynamicPrsim {
    delta: DeltaGraph,
    config: PrsimConfig,
    mode: UpdateMode,
    /// `None` only in rebuild mode between a buffered update and the next
    /// query; incremental mode keeps the engine perpetually fresh.
    engine: Option<Prsim>,
    /// Per-hub touched sets (incremental mode only).
    touch: HubTouchSets,
    /// Accumulated L1 π-drift since the last full (re)build.
    drift: f64,
    /// Buffered updates since the last rebuild (rebuild mode).
    pending: usize,
    totals: DynamicTotals,
}

impl DynamicPrsim {
    /// Creates a dynamic engine over an initial graph with the given
    /// maintenance strategy. The initial build happens eagerly in
    /// incremental mode and lazily (first query) in rebuild mode.
    pub fn new(graph: &DiGraph, config: PrsimConfig, mode: UpdateMode) -> Result<Self, PrsimError> {
        config.validate()?;
        let delta = match mode {
            UpdateMode::Incremental(params) => {
                params.validate()?;
                DeltaGraph::with_threshold(graph.clone(), params.compact_threshold)
            }
            UpdateMode::RebuildOnBatch { batch } => {
                if batch == 0 {
                    return Err(PrsimError::InvalidConfig("batch must be at least 1".into()));
                }
                DeltaGraph::new(graph.clone())
            }
        };
        let mut engine = DynamicPrsim {
            delta,
            config,
            mode,
            engine: None,
            touch: HubTouchSets::default(),
            drift: 0.0,
            pending: 1, // forces the lazy initial build in rebuild mode
            totals: DynamicTotals::default(),
        };
        if matches!(mode, UpdateMode::Incremental(_)) {
            engine.rebuild()?;
        }
        Ok(engine)
    }

    /// Convenience: incremental mode with [`DynamicParams::default`].
    pub fn new_incremental(graph: &DiGraph, config: PrsimConfig) -> Result<Self, PrsimError> {
        Self::new(
            graph,
            config,
            UpdateMode::Incremental(DynamicParams::default()),
        )
    }

    /// Number of nodes (grows automatically with inserted edges).
    pub fn node_count(&self) -> usize {
        self.delta.node_count()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.delta.edge_count()
    }

    /// The maintenance strategy.
    pub fn mode(&self) -> UpdateMode {
        self.mode
    }

    /// Lifetime maintenance totals.
    pub fn totals(&self) -> DynamicTotals {
        DynamicTotals {
            compactions: self.delta.compactions(),
            ..self.totals
        }
    }

    /// Full engine rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.totals.rebuilds
    }

    /// Accumulated L1 reverse-PageRank drift since the last rebuild
    /// (always 0 in rebuild mode).
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// Buffered updates since the last rebuild (rebuild mode; always 0 in
    /// incremental mode, which never buffers).
    pub fn pending_updates(&self) -> usize {
        if self.engine.is_none() {
            self.pending.max(1)
        } else {
            self.pending
        }
    }

    /// True when a query would first trigger a rebuild (rebuild mode's
    /// staleness window; incremental engines are never stale).
    pub fn is_stale(&self) -> bool {
        match self.mode {
            UpdateMode::Incremental(_) => self.engine.is_none(),
            UpdateMode::RebuildOnBatch { batch } => self.engine.is_none() || self.pending >= batch,
        }
    }

    /// Inserts edge `u → v`; returns stats whose `applied` is false if it
    /// already existed (or is a self loop).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateStats, PrsimError> {
        self.apply(EdgeUpdate::Insert(u, v))
    }

    /// Deletes edge `u → v`; returns stats whose `applied` is false if it
    /// was absent.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateStats, PrsimError> {
        self.apply(EdgeUpdate::Delete(u, v))
    }

    /// Applies one edge update under the configured maintenance mode.
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<UpdateStats, PrsimError> {
        let (a, b) = update.endpoints();
        // Dirty hubs are judged against the *pre-update* touched sets; the
        // rule is symmetric in old/new graph, so either side works, but
        // the sets describe the searches currently stored.
        let params = match self.mode {
            UpdateMode::Incremental(p) => Some(p),
            UpdateMode::RebuildOnBatch { .. } => None,
        };
        if !self.delta.apply(update) {
            self.totals.noop_updates += 1;
            return Ok(UpdateStats {
                hub_count: self.touch.hub_count(),
                ..UpdateStats::default()
            });
        }
        self.totals.applied_updates += 1;

        let Some(params) = params else {
            // Rebuild mode: just buffer.
            self.pending = self.pending.saturating_add(1);
            return Ok(UpdateStats {
                applied: true,
                ..UpdateStats::default()
            });
        };

        let mut stats = UpdateStats {
            applied: true,
            hub_count: self.touch.hub_count(),
            ..UpdateStats::default()
        };

        // Classify against the stored searches: `d_in(b)` is read from the
        // engine's graph, which is exactly the graph those searches ran on.
        let old_din_b = {
            let g = self
                .engine
                .as_ref()
                .expect("incremental engine is always built")
                .graph();
            if (b as usize) < g.node_count() {
                g.in_degree(b)
            } else {
                0
            }
        };
        let dirty = self.touch.plan_update(
            a,
            b,
            old_din_b,
            update.is_insert(),
            self.config.sqrt_c(),
            self.config.r_max(),
        );
        stats.touched_hubs = dirty.len();
        if stats.hub_count > 0 {
            stats.repair_fraction = dirty.len() as f64 / stats.hub_count as f64;
        }

        let compactions_before = self.delta.compactions();
        let snapshot = self.delta.snapshot();
        stats.compacted = self.delta.compactions() > compactions_before;

        let (_, mut pi, mut index, config, mut cache) = self
            .engine
            .take()
            .expect("incremental engine is always built")
            .into_parts();
        let n = snapshot.node_count();
        index.ensure_nodes(n);

        let outcome = refine_reverse_pagerank(
            &snapshot,
            config.sqrt_c(),
            params.pr_tol,
            params.pr_max_iter,
            &mut pi,
        );
        stats.pr_iterations = outcome.iterations;
        self.drift += outcome.l1_change;

        if self.drift > params.drift_budget {
            // Too much π movement since the hubs were selected: re-pick
            // hubs and rebuild every search (the amortized escape hatch).
            // The walk cache follows the same escape hatch: drop it and
            // let the reassembly redraw pools for the re-ranked top-π.
            stats.rebuilt = true;
            index = self.rebuild_index_for(&snapshot, &pi);
            cache = None;
        } else {
            if !dirty.is_empty() {
                let compactions_before = index.stats().compactions;
                index.repair_hubs(
                    &snapshot,
                    &dirty,
                    &mut self.touch,
                    config.sqrt_c(),
                    config.r_max(),
                    config.max_level,
                    config.build_threads,
                );
                let compacted = index.stats().compactions - compactions_before;
                stats.index_compacted = compacted > 0;
                self.totals.index_compactions += compacted;
                self.totals.repaired_hubs += dirty.len();
            }
            if let Some(cache) = cache.as_mut() {
                // Invalidate against the *pre-update* reachability masks
                // (the exact dirty criterion for inserts and deletes
                // alike — see walkcache's module docs), then fold an
                // inserted edge into the masks and refill the dirty
                // pools against the updated snapshot.
                cache.ensure_nodes(n);
                let dirty_pools = cache.dirty_pools(b);
                stats.cache_invalidated_pools = dirty_pools.len();
                self.totals.cache_invalidations += dirty_pools.len();
                if update.is_insert() {
                    cache.note_insert(&snapshot, a, b);
                }
                if !dirty_pools.is_empty() {
                    let geom = crate::walk::GeomLenTable::new(config.sqrt_c(), config.max_level);
                    cache.refill(&snapshot, &geom, &dirty_pools);
                }
            }
        }

        let mut engine = Prsim::from_parts_full(snapshot, pi, index, config, cache, None)?;
        engine.ensure_cache_masks();
        self.engine = Some(engine);
        Ok(stats)
    }

    /// Rebuilds the engine from scratch now: re-solves π, re-selects
    /// hubs, re-runs every backward search, clears drift and buffers.
    pub fn refresh(&mut self) -> Result<(), PrsimError> {
        self.rebuild()
    }

    /// Re-selects the top-`j₀` hubs from an already-refined `pi`, rebuilds
    /// every backward search with tracking, and resets the drift clock.
    /// Shared by the drift-budget fallback and the incremental
    /// (re)build; the returned index pairs with the updated `self.touch`.
    fn rebuild_index_for(&mut self, snapshot: &DiGraph, pi: &[f64]) -> PrsimIndex {
        let j0 = self.config.hubs.resolve(
            snapshot.node_count(),
            snapshot.avg_degree(),
            self.config.eps,
        );
        let hubs: Vec<NodeId> = rank_by_pagerank(pi).into_iter().take(j0).collect();
        let (index, touch) = PrsimIndex::build_tracked_with(
            snapshot,
            hubs,
            self.config.sqrt_c(),
            self.config.r_max(),
            self.config.max_level,
            self.config.build_threads,
            self.config.reserve_precision,
        );
        self.touch = touch;
        self.drift = 0.0;
        self.totals.rebuilds += 1;
        index
    }

    fn rebuild(&mut self) -> Result<(), PrsimError> {
        let snapshot = self.delta.snapshot();
        match self.mode {
            UpdateMode::Incremental(params) => {
                let mut pi = Vec::new();
                refine_reverse_pagerank(
                    &snapshot,
                    self.config.sqrt_c(),
                    params.pr_tol,
                    params.pr_max_iter.max(256),
                    &mut pi,
                );
                let index = self.rebuild_index_for(&snapshot, &pi);
                let mut engine =
                    Prsim::from_parts_full(snapshot, pi, index, self.config.clone(), None, None)?;
                engine.ensure_cache_masks();
                self.engine = Some(engine);
            }
            UpdateMode::RebuildOnBatch { .. } => {
                self.engine = Some(Prsim::build(snapshot, self.config.clone())?);
                self.touch = HubTouchSets::default();
                self.drift = 0.0;
                self.totals.rebuilds += 1;
            }
        }
        self.pending = 0;
        Ok(())
    }

    /// Answers a single-source query. In incremental mode the engine is
    /// always fresh; in rebuild mode a stale engine is rebuilt first.
    pub fn single_source<R: Rng + ?Sized>(
        &mut self,
        u: NodeId,
        rng: &mut R,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        if self.is_stale() {
            self.rebuild()?;
        }
        self.engine
            .as_ref()
            .expect("engine built by rebuild")
            .try_single_source(u, rng)
    }

    /// The current engine, if built (None before the first query/refresh
    /// in rebuild mode).
    pub fn engine(&self) -> Option<&Prsim> {
        self.engine.as_ref()
    }

    /// Demotes the engine's postings arena to a paged on-disk file under
    /// a hard memory budget ([`Prsim::page_out_index`]). No-op when no
    /// engine is built yet (rebuild mode before the first refresh); the
    /// next rebuild produces a resident index the caller can demote
    /// again.
    pub fn page_out_index(
        &mut self,
        storage: std::sync::Arc<dyn prsim_storage::Storage>,
        path: &std::path::Path,
        opts: &crate::paging::PagedOptions,
    ) -> Result<(), PrsimError> {
        match self.engine.as_mut() {
            Some(engine) => engine.page_out_index(storage, path, opts),
            None => Ok(()),
        }
    }

    /// Overrides the query back-half plan for every engine this wrapper
    /// builds or has built — the dynamic analogue of
    /// [`Prsim::set_query_plan`]. Like it, this exists for measurement
    /// and differential testing; the `Auto` default is correct.
    pub fn set_query_plan(&mut self, plan: crate::QueryPlan) {
        self.config.plan = plan;
        if let Some(engine) = self.engine.as_mut() {
            engine.set_query_plan(plan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QueryParams;
    use prsim_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> PrsimConfig {
        PrsimConfig {
            eps: 0.1,
            query: QueryParams::Explicit { dr: 2_000, fr: 1 },
            ..Default::default()
        }
    }

    fn incremental(graph: &DiGraph, params: DynamicParams) -> DynamicPrsim {
        DynamicPrsim::new(graph, config(), UpdateMode::Incremental(params)).unwrap()
    }

    /// Fresh engine over the dynamic engine's current edge set.
    fn fresh_engine(engine: &DynamicPrsim) -> Prsim {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(engine.node_count());
        for (u, v) in engine.engine().expect("built").graph().edges() {
            b.add_edge(u, v);
        }
        Prsim::build(b.build(), config()).unwrap()
    }

    #[test]
    fn incremental_matches_fresh_build_after_updates() {
        let g0 = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(80, 5.0, 2.0, 3));
        let mut dyn_engine = DynamicPrsim::new_incremental(&g0, config()).unwrap();
        dyn_engine.insert_edge(0, 79).unwrap();
        dyn_engine.insert_edge(79, 0).unwrap();
        let (du, dv) = g0.edges().next().expect("graph has edges");
        assert!(dyn_engine.delete_edge(du, dv).unwrap().applied);

        // Without a drift rebuild the hub set matches a fresh build
        // exactly, and answers agree within the Monte-Carlo budget (the
        // CSR merge orders in-neighbors differently than a from-scratch
        // build, so the two engines consume their RNGs differently —
        // same estimator distribution, different realization).
        assert_eq!(dyn_engine.rebuilds(), 1, "initial build only");
        let fresh = fresh_engine(&dyn_engine);
        assert_eq!(
            fresh.index().hubs(),
            dyn_engine.engine().unwrap().index().hubs(),
            "hub sets agree without drift rebuild"
        );
        let (scores_dyn, _) = dyn_engine
            .single_source(5, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let scores_fresh = fresh.single_source(5, &mut StdRng::seed_from_u64(9));
        let diff = scores_dyn.max_abs_diff(&scores_fresh);
        assert!(diff < 0.1, "incremental vs fresh diff {diff}");
    }

    #[test]
    fn update_stats_report_repairs() {
        let g0 = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(100, 5.0, 2.0, 17));
        let mut engine = DynamicPrsim::new_incremental(&g0, config()).unwrap();
        let stats = engine.insert_edge(3, 97).unwrap();
        assert!(stats.applied);
        assert_eq!(stats.hub_count, 10); // ceil(sqrt(100))
        assert!(stats.repair_fraction <= 1.0);
        assert_eq!(
            stats.touched_hubs as f64 / stats.hub_count as f64,
            stats.repair_fraction
        );
        assert!(!stats.rebuilt);
        // No-ops skip maintenance entirely.
        let noop = engine.insert_edge(3, 97).unwrap();
        assert!(!noop.applied);
        assert_eq!(noop.pr_iterations, 0);
        assert_eq!(engine.totals().noop_updates, 1);
        assert_eq!(engine.totals().applied_updates, 1);
    }

    #[test]
    fn drift_budget_triggers_full_rebuild() {
        let g0 = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 5));
        let params = DynamicParams {
            drift_budget: 1e-12, // any movement trips it
            ..Default::default()
        };
        let mut engine = incremental(&g0, params);
        let before = engine.rebuilds();
        let stats = engine.insert_edge(0, 59).unwrap();
        assert!(stats.rebuilt);
        assert_eq!(engine.rebuilds(), before + 1);
        assert_eq!(engine.drift(), 0.0, "rebuild resets drift");

        // A generous budget never rebuilds across a long stream. (On a
        // 60-node graph each edge moves a visible fraction of the total π
        // mass, so this must be far above the large-graph default.)
        let mut lazy = incremental(
            &g0,
            DynamicParams {
                drift_budget: 100.0,
                ..Default::default()
            },
        );
        for i in 0..20u32 {
            lazy.insert_edge(i % 60, (i * 7 + 1) % 60).unwrap();
        }
        assert_eq!(lazy.rebuilds(), 1, "only the initial build");
        assert!(lazy.drift() > 0.0);
    }

    #[test]
    fn rebuild_mode_batching_amortizes() {
        let g0 = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 5));
        let mut engine =
            DynamicPrsim::new(&g0, config(), UpdateMode::RebuildOnBatch { batch: 10 }).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = engine.single_source(0, &mut rng).unwrap(); // initial build
        assert_eq!(engine.rebuilds(), 1);
        for i in 0..9u32 {
            engine.insert_edge(i, 59 - i).unwrap();
            let _ = engine.single_source(0, &mut rng).unwrap();
        }
        // 9 updates < batch of 10: no rebuild yet.
        assert_eq!(engine.rebuilds(), 1);
        engine.insert_edge(40, 41).unwrap();
        let _ = engine.single_source(0, &mut rng).unwrap();
        assert_eq!(engine.rebuilds(), 2);
        assert_eq!(engine.pending_updates(), 0);
    }

    #[test]
    fn duplicate_and_missing_edges_are_noops() {
        let g0 = prsim_gen::toys::cycle(5);
        let mut engine = DynamicPrsim::new_incremental(&g0, config()).unwrap();
        assert!(!engine.insert_edge(0, 1).unwrap().applied); // already present
        assert!(!engine.delete_edge(2, 4).unwrap().applied); // absent
        assert!(engine.insert_edge(0, 2).unwrap().applied);
        assert!(engine.delete_edge(0, 2).unwrap().applied);
        assert_eq!(engine.edge_count(), 5);
    }

    #[test]
    fn node_universe_grows() {
        let g0 = prsim_gen::toys::cycle(4);
        let mut engine = DynamicPrsim::new_incremental(&g0, config()).unwrap();
        engine.insert_edge(3, 10).unwrap();
        assert_eq!(engine.node_count(), 11);
        let (scores, _) = engine
            .single_source(10, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(scores.get(10), 1.0);
        // Querying the new node range works in rebuild mode too.
        let g0 = prsim_gen::toys::cycle(4);
        let mut engine =
            DynamicPrsim::new(&g0, config(), UpdateMode::RebuildOnBatch { batch: 1 }).unwrap();
        engine.insert_edge(3, 10).unwrap();
        let (scores, _) = engine
            .single_source(10, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(scores.get(10), 1.0);
    }

    #[test]
    fn similarity_responds_to_edits() {
        // star_out: leaves share the hub as only in-neighbor, s = c.
        // After deleting a leaf's in-edge its similarity must drop to 0.
        // dr is raised beyond the other tests' budget because cached
        // queries share their source pool's realization: the pool draw
        // adds a correlated noise term on top of the per-query window,
        // and the 0.06 tolerance needs both comfortably inside 4σ.
        let g0 = prsim_gen::toys::star_out(5);
        let cfg = PrsimConfig {
            query: QueryParams::Explicit { dr: 8_000, fr: 1 },
            ..config()
        };
        let mut engine = DynamicPrsim::new_incremental(&g0, cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let (before, _) = engine.single_source(1, &mut rng).unwrap();
        assert!((before.get(2) - 0.6).abs() < 0.06);
        engine.delete_edge(0, 2).unwrap();
        let (after, _) = engine.single_source(1, &mut rng).unwrap();
        assert_eq!(after.get(2), 0.0, "node 2 lost its only in-neighbor");
    }

    #[test]
    fn compaction_threshold_is_respected() {
        let g0 = prsim_gen::toys::cycle(8);
        let params = DynamicParams {
            compact_threshold: 3,
            ..Default::default()
        };
        let mut engine = incremental(&g0, params);
        let mut compactions = 0;
        for i in 0..9u32 {
            let stats = engine.insert_edge(i % 8, (i + 3) % 8).unwrap();
            if stats.applied && stats.compacted {
                compactions += 1;
            }
        }
        assert!(compactions >= 1, "threshold 3 must compact within 9 edits");
        assert_eq!(engine.totals().compactions, compactions);
    }

    #[test]
    fn cache_invalidation_counters_report_dirty_pools() {
        // star_out(5): hub 0 feeds leaves 1..4; walks from a leaf visit
        // only {leaf, 0}. With every node cached, an edge into leaf 2
        // dirties exactly the pools whose walks can visit 2 — pool 2
        // itself (plus any node that out-reaches 2; here none but 2).
        let g0 = prsim_gen::toys::star_out(5);
        let cfg = PrsimConfig {
            walk_cache_budget: 8,
            ..config()
        };
        // Permissive drift budget: a drift rebuild redraws the whole
        // cache (and legitimately reports 0 invalidations), which is not
        // the path under test here.
        let params = DynamicParams {
            drift_budget: 1e9,
            ..Default::default()
        };
        let mut engine = DynamicPrsim::new(&g0, cfg, UpdateMode::Incremental(params)).unwrap();
        let eng = engine.engine().unwrap();
        let cache = eng.walk_cache().expect("cache enabled");
        assert!(cache.has_masks(), "dynamic engine must build masks");
        assert_eq!(cache.pool_count(), 5);

        let stats = engine.insert_edge(1, 2).unwrap();
        assert!(stats.applied);
        assert_eq!(
            stats.cache_invalidated_pools, 1,
            "only node 2's own pool can walk through node 2"
        );
        // An edge into the hub 0 dirties every pool: all leaves' walks
        // traverse 0.
        let stats = engine.insert_edge(3, 0).unwrap();
        assert!(stats.applied);
        assert_eq!(stats.cache_invalidated_pools, 5);
        assert_eq!(engine.totals().cache_invalidations, 6);
        // No-op updates skip cache maintenance entirely.
        let noop = engine.insert_edge(1, 2).unwrap();
        assert!(!noop.applied);
        assert_eq!(noop.cache_invalidated_pools, 0);
        assert_eq!(engine.totals().cache_invalidations, 6);
        // Cache disabled: counters stay zero across applied updates.
        let mut plain = DynamicPrsim::new(
            &prsim_gen::toys::star_out(5),
            PrsimConfig {
                walk_cache_budget: 0,
                ..config()
            },
            UpdateMode::Incremental(params),
        )
        .unwrap();
        let stats = plain.insert_edge(1, 2).unwrap();
        assert!(stats.applied);
        assert_eq!(stats.cache_invalidated_pools, 0);
        assert_eq!(plain.totals().cache_invalidations, 0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let g0 = prsim_gen::toys::cycle(3);
        assert!(DynamicPrsim::new(&g0, config(), UpdateMode::RebuildOnBatch { batch: 0 }).is_err());
        let bad = DynamicParams {
            drift_budget: -1.0,
            ..Default::default()
        };
        assert!(DynamicPrsim::new(&g0, config(), UpdateMode::Incremental(bad)).is_err());
    }
}
