//! # prsim-core
//!
//! From-scratch implementation of **PRSim** (Wei et al., SIGMOD 2019):
//! sublinear-time approximate single-source SimRank queries on power-law
//! graphs.
//!
//! ## The algorithm in one paragraph
//!
//! SimRank admits the √c-walk formulation: `s(u,v)` is the probability
//! that two *reverse √c-discounted random walks* started at `u` and `v`
//! meet. PRSim rewrites this (paper Eq. 6) through ℓ-hop reverse
//! personalized PageRank (RPPR):
//!
//! ```text
//! s(u,v) = 1/(1−√c)² · Σ_ℓ Σ_w  π_ℓ(u,w) · π_ℓ(v,w) · η(w)
//! ```
//!
//! where `π_ℓ(u,w)` is the probability a √c-walk from `u` terminates at
//! `w` after exactly `ℓ` steps and `η(w)` is the probability two √c-walks
//! from `w` never meet again. The query algorithm (Algorithm 4) estimates
//! `η(w)·π_ℓ(u,w)` jointly by sampling, reads `π_ℓ(v,w)` for *hub* nodes
//! `w` from a precomputed index (Algorithm 1), and estimates it for
//! non-hub `w` with the Variance Bounded Backward Walk (Algorithm 3).
//! Hubs are the `j₀` nodes with the largest reverse PageRank, which is
//! what ties the query cost to the reverse-PageRank distribution and
//! yields sublinear time on power-law graphs (Theorem 3.12).
//!
//! ## Module map
//!
//! | paper artifact | module |
//! |---|---|
//! | √c-walks, meeting probability | [`walk`] |
//! | reverse PageRank / RPPR | [`pagerank`] |
//! | Algorithm 1 (level-wise backward search) | [`backward`] |
//! | Algorithms 2 & 3 (backward walks) | [`vbbw`] |
//! | hub index, serialization | [`index`] |
//! | Algorithm 4 (query) | [`query`] |
//!
//! ## Dangling nodes
//!
//! A √c-walk that survives its termination flip but sits at a node with
//! no in-neighbors *dies*: it terminates nowhere and contributes to no
//! estimator. This keeps the identity `π_ℓ(u,w) = (1−√c)·h_ℓ(u,w)` exact
//! on every graph (see DESIGN.md §3), matching SimRank's `s(u,v) = 0`
//! whenever `I(u) = ∅, u ≠ v`.
//!
//! ## Quickstart
//!
//! ```
//! use prsim_core::{Prsim, PrsimConfig};
//! use prsim_graph::DiGraph;
//! use rand::SeedableRng;
//!
//! // A 4-cycle: every node plays the same role.
//! let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let engine = Prsim::build(g, PrsimConfig::default()).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let scores = engine.single_source(0, &mut rng);
//! assert_eq!(scores.get(0), 1.0); // s(u,u) = 1 by definition
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backward;
pub mod config;
pub mod dynamic;
pub mod index;
pub mod pagerank;
pub mod paging;
pub mod query;
pub mod scores;
pub mod topk;
pub mod vbbw;
pub mod walk;
pub mod walkcache;
pub mod workspace;

pub use config::{DynamicParams, HubCount, PrsimConfig, QueryParams, QueryPlan};
pub use dynamic::{DynamicPrsim, DynamicTotals, UpdateMode, UpdateStats};
pub use index::{HubTouchSets, IndexStats, Postings, PrsimIndex, ReservePrecision};
pub use paging::{BufferPool, PageScrub, PagedOptions, PagingStats, PostingsScratch};
pub use query::{Prsim, QueryStats};
pub use scores::SimRankScores;
pub use topk::{TopKParams, TopKResult};
pub use walkcache::WalkCache;
pub use workspace::QueryWorkspace;

/// Errors produced while building or querying a PRSim engine.
#[derive(Debug)]
pub enum PrsimError {
    /// Configuration parameter out of range.
    InvalidConfig(String),
    /// A query named a node id `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The graph's node count.
        n: usize,
    },
    /// Index deserialization failed.
    CorruptIndex(String),
    /// A paged-arena page could not be read and verified within the
    /// bounded retry budget (I/O fault, checksum mismatch, or a full
    /// frame table). Queries catch this and degrade to a live backward
    /// walk; serialization and maintenance paths surface it.
    PageFault(String),
}

impl std::fmt::Display for PrsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrsimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PrsimError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            PrsimError::CorruptIndex(msg) => write!(f, "corrupt index: {msg}"),
            PrsimError::PageFault(msg) => write!(f, "page fault: {msg}"),
        }
    }
}

impl std::error::Error for PrsimError {}
