//! Level-wise backward search (the inner loop of paper Algorithm 1).
//!
//! Given a target node `w`, the search computes deterministic estimates
//! `ψ_ℓ(v, w)` of the ℓ-hop RPPR `π_ℓ(v, w)` for every source `v` and
//! level `ℓ`, with per-entry error below the residue threshold `r_max`
//! (Lemma 3.1 / Lofgren et al. \[27\]).
//!
//! Mechanics: node `v` holds a *residue* `r_ℓ(v,w)` — unconverted
//! `h_ℓ(v,w)` hitting-probability mass. Pushing `v` at level `ℓ` converts
//! `(1−√c)·r` into the *reserve* `ψ_ℓ(v,w)` (the walk terminates at `v`)
//! and forwards `√c·r/d_in(z)` to every out-neighbor `z` at level `ℓ+1`
//! (the walk from `z` steps to `v`). Residues at or below `r_max` are
//! abandoned, bounding both work and error. Because pushes from level `ℓ`
//! only feed level `ℓ+1`, a single pass per level suffices and the search
//! ends at the first level with no residue above threshold.

use prsim_graph::{DiGraph, NodeId};

/// Output of a backward search from one target node.
#[derive(Clone, Debug)]
pub struct BackwardSearchResult {
    /// `levels[ℓ]` lists `(v, ψ_ℓ(v,w))` with `ψ > 0`, sorted by `v`.
    pub levels: Vec<Vec<(NodeId, f64)>>,
    /// Every node that held residue at any level, with its **maximum
    /// residue over all levels**, sorted by node id. This is the search's
    /// *dependence record*: an edge update `(a, b)` perturbs only `b`'s
    /// residues — the divisor `d_in(b)` changes from `k` to `k'`, scaling
    /// every inflow of `b` at every level by exactly `k/k'`, and the flow
    /// `√c·r_a/k'` from `a` appears (insert) or disappears (delete).
    /// Nothing else in the search moves unless `b`'s push status (residue
    /// vs `r_max`) or pushed values change, so `max(r_b, r_b·k/k' +
    /// √c·r_a/k') ≤ r_max` guarantees the stored reserves are
    /// bit-identical on the mutated graph. The dynamic engine's dirty-hub
    /// tracking ([`crate::index::HubTouchSets`]) is built on exactly this
    /// invariant.
    pub touched: Vec<(NodeId, f64)>,
    /// Number of residue pushes performed (cost instrumentation).
    pub pushes: usize,
    /// Total edge traversals performed (cost instrumentation).
    pub edge_traversals: usize,
}

impl BackwardSearchResult {
    /// Reserve `ψ_ℓ(v, w)` (0.0 when absent).
    pub fn reserve(&self, level: usize, v: NodeId) -> f64 {
        self.levels
            .get(level)
            .and_then(|lv| {
                lv.binary_search_by_key(&v, |&(node, _)| node)
                    .ok()
                    .map(|i| lv[i].1)
            })
            .unwrap_or(0.0)
    }

    /// Total number of stored `(v, ℓ)` entries.
    pub fn entry_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// Runs the backward search from target `w` with residue threshold
/// `r_max`, exploring at most `max_level` levels.
///
/// Every stored reserve satisfies `|ψ_ℓ(v,w) − π_ℓ(v,w)| < r_max·(1−√c)⁻¹`
/// in the worst case and `< r_max` under the paper's accounting
/// (Lemma 3.1); the property tests check against the exact oracle.
pub fn backward_search(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    r_max: f64,
    max_level: usize,
) -> BackwardSearchResult {
    let alpha = 1.0 - sqrt_c;
    let mut result = BackwardSearchResult {
        levels: Vec::new(),
        touched: Vec::new(),
        pushes: 0,
        edge_traversals: 0,
    };

    // The per-level state is kept as reused *coalesced sorted vectors*
    // rather than hash maps: frontiers hold `O(n·π(w))` nodes, where
    // sorted appends + merges beat hashing and keep the build/repair path
    // allocation-light. `frontier` is sorted by node id with unique keys;
    // pushes append to `next_log`, which a stable sort + linear coalesce
    // turns into the next frontier. Within one node the append order is
    // chronological (frontier is processed in id order), so the float
    // accumulation order — and hence every reserve, bit for bit — matches
    // a dense per-node accumulator.
    let mut touched: Vec<(NodeId, f64)> = vec![(w, 1.0)];
    let mut touched_scratch: Vec<(NodeId, f64)> = Vec::new();
    let mut frontier: Vec<(NodeId, f64)> = vec![(w, 1.0)];
    let mut next_log: Vec<(NodeId, f64)> = Vec::new();
    let mut coalesced: Vec<(NodeId, f64)> = Vec::new();
    let use_inline_degs = g.is_out_sorted_by_in_degree();

    for _level in 0..=max_level {
        let mut reserves: Vec<(NodeId, f64)> = Vec::new();
        let mut any_pushed = false;
        next_log.clear();

        for &(v, r) in &frontier {
            if r <= r_max {
                continue; // abandoned residue: bounded error
            }
            any_pushed = true;
            result.pushes += 1;
            reserves.push((v, alpha * r));
            if use_inline_degs {
                // Sorted graphs carry the targets' in-degrees inline with
                // the out-adjacency: one sequential stream, no random
                // in_degrees probe per neighbor.
                let (neigh, degs) = g.out_neighbors_with_in_degrees(v);
                for (&z, &dz) in neigh.iter().zip(degs) {
                    result.edge_traversals += 1;
                    debug_assert!(dz >= 1, "out-neighbor must have an in-edge");
                    next_log.push((z, sqrt_c * r / dz as f64));
                }
            } else {
                for &z in g.out_neighbors(v) {
                    result.edge_traversals += 1;
                    let din = g.in_degree(z) as f64;
                    debug_assert!(din >= 1.0, "out-neighbor must have an in-edge");
                    next_log.push((z, sqrt_c * r / din));
                }
            }
        }

        // The frontier is sorted, so `reserves` is born sorted by v.
        result.levels.push(reserves);

        if !any_pushed {
            result.levels.pop(); // last level produced nothing
            break;
        }
        // Stable sort: equal ids keep chronological (push) order, fixing
        // the accumulation order of each node's inflows.
        next_log.sort_by_key(|&(z, _)| z);
        coalesced.clear();
        for &(z, delta) in next_log.iter() {
            match coalesced.last_mut() {
                Some(last) if last.0 == z => last.1 += delta,
                _ => coalesced.push((z, delta)),
            }
        }
        merge_max_residues(&mut touched, &coalesced, &mut touched_scratch);
        std::mem::swap(&mut frontier, &mut coalesced);
    }

    // Drop trailing empty levels for compactness.
    while result.levels.last().is_some_and(Vec::is_empty) {
        result.levels.pop();
    }
    result.touched = touched;
    result
}

/// Merges one level's residues into the running per-node maxima (both
/// sides sorted by node id, unique). `scratch` is the ping-pong output
/// buffer, swapped into `touched` on return — reused across levels so
/// the merge allocates only on growth.
fn merge_max_residues(
    touched: &mut Vec<(NodeId, f64)>,
    level: &[(NodeId, f64)],
    scratch: &mut Vec<(NodeId, f64)>,
) {
    scratch.clear();
    scratch.reserve(touched.len() + level.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < touched.len() && j < level.len() {
        match touched[i].0.cmp(&level[j].0) {
            std::cmp::Ordering::Less => {
                scratch.push(touched[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                scratch.push(level[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                scratch.push((touched[i].0, touched[i].1.max(level[j].1)));
                i += 1;
                j += 1;
            }
        }
    }
    scratch.extend_from_slice(&touched[i..]);
    scratch.extend_from_slice(&level[j..]);
    std::mem::swap(touched, scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::exact_lhop_rppr_to;

    const SQRT_C: f64 = 0.774_596_669_241_483_4;

    #[test]
    fn tiny_threshold_recovers_exact_values_on_path() {
        let g = prsim_gen::toys::path(4); // walks flow 3 -> 2 -> 1 -> 0
        let res = backward_search(&g, SQRT_C, 0, 1e-12, 32);
        let alpha = 1.0 - SQRT_C;
        assert!((res.reserve(0, 0) - alpha).abs() < 1e-9);
        assert!((res.reserve(1, 1) - alpha * SQRT_C).abs() < 1e-9);
        assert!((res.reserve(2, 2) - alpha * SQRT_C.powi(2)).abs() < 1e-9);
        assert!((res.reserve(3, 3) - alpha * SQRT_C.powi(3)).abs() < 1e-9);
        // Nothing beyond the path end.
        assert!(res.levels.len() <= 4);
    }

    #[test]
    fn reserves_close_to_exact_on_random_graph() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(150, 5.0, 2.0, 4));
        let r_max = 1e-4;
        for w in [0u32, 3, 75] {
            let res = backward_search(&g, SQRT_C, w, r_max, 64);
            let exact = exact_lhop_rppr_to(&g, SQRT_C, w, res.levels.len().max(1));
            for (l, level) in res.levels.iter().enumerate() {
                for &(v, psi) in level {
                    let truth = exact[l][v as usize];
                    // ψ never exceeds π and the deficit is bounded by the
                    // abandoned residue mass; empirically well under r_max
                    // scaled by the level count.
                    assert!(psi <= truth + 1e-12, "ψ {psi} > π {truth}");
                    assert!(
                        truth - psi < 50.0 * r_max,
                        "level {l}, node {v}: ψ={psi}, π={truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn larger_threshold_costs_less() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(400, 8.0, 2.0, 7));
        let cheap = backward_search(&g, SQRT_C, 0, 1e-2, 64);
        let costly = backward_search(&g, SQRT_C, 0, 1e-5, 64);
        assert!(cheap.pushes < costly.pushes);
        assert!(cheap.entry_count() <= costly.entry_count());
    }

    #[test]
    fn level_zero_always_contains_target() {
        let g = prsim_gen::toys::cycle(5);
        let res = backward_search(&g, SQRT_C, 2, 1e-3, 64);
        let alpha = 1.0 - SQRT_C;
        assert!((res.reserve(0, 2) - alpha).abs() < 1e-12);
    }

    #[test]
    fn dangling_target_has_only_level_zero_when_unreachable() {
        // star_out: hub 0 -> leaves; target = leaf 1. Walks from any v can
        // reach 1 only if 1 is on an in-path... in-neighbors of 1 = {0};
        // backward search pushes along out-edges of 1: none. So only the
        // self reserve exists.
        let g = prsim_gen::toys::star_out(4);
        let res = backward_search(&g, SQRT_C, 1, 1e-9, 64);
        assert_eq!(res.levels.len(), 1);
        assert_eq!(res.levels[0].len(), 1);
        assert_eq!(res.levels[0][0].0, 1);
    }

    fn touched_residue(res: &BackwardSearchResult, v: NodeId) -> Option<f64> {
        res.touched
            .binary_search_by_key(&v, |&(x, _)| x)
            .ok()
            .map(|i| res.touched[i].1)
    }

    #[test]
    fn touched_covers_all_reserve_nodes_and_their_frontier() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 11));
        let r_max = 1e-3;
        let alpha = 1.0 - SQRT_C;
        let res = backward_search(&g, SQRT_C, 7, r_max, 64);
        // Sorted by node, positive residues, target present with max 1.
        assert!(res.touched.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(res.touched.iter().all(|&(_, r)| r > 0.0));
        assert_eq!(touched_residue(&res, 7), Some(1.0));
        // Every node with a stored reserve was pushed (residue > r_max),
        // so its recorded max residue exceeds r_max and matches the
        // largest reserve/α; every out-neighbor received residue.
        for level in &res.levels {
            for &(v, psi) in level {
                let r = touched_residue(&res, v).expect("reserve node is touched");
                assert!(r > r_max, "pushed node {v} max residue {r}");
                assert!(r >= psi / alpha - 1e-12, "residue {r} < ψ/α for {v}");
                for &z in g.out_neighbors(v) {
                    assert!(
                        touched_residue(&res, z).is_some(),
                        "frontier node {z} of pushed {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn untouched_edge_updates_leave_search_invariant() {
        // The dirty rule's contract: if neither endpoint of a changed edge
        // is in `touched`, re-running the search on the mutated graph
        // yields identical levels AND identical touched records.
        use prsim_graph::delta::DeltaGraph;
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 4.0, 2.2, 13));
        let w = 3;
        let before = backward_search(&g, SQRT_C, w, 1e-3, 64);
        // Find an edge with both endpoints untouched.
        let edge = g.edges().find(|&(u, v)| {
            touched_residue(&before, u).is_none() && touched_residue(&before, v).is_none()
        });
        let Some((u, v)) = edge else {
            // Search touched everything; nothing to assert on this graph.
            return;
        };
        let mut d = DeltaGraph::new(g);
        assert!(d.delete_edge(u, v));
        let after = backward_search(&d.snapshot(), SQRT_C, w, 1e-3, 64);
        assert_eq!(before.levels, after.levels);
        assert_eq!(before.touched, after.touched);
    }

    #[test]
    fn clean_endpoint_updates_rescale_residues_exactly() {
        // The self-preservation half of the dirty rule: when neither
        // endpoint is pushed (max residue ≤ r_max before and after the
        // d_in rescale), the reserves are unchanged and every residue of
        // the target endpoint scales by exactly k/k'.
        use prsim_graph::delta::DeltaGraph;
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(250, 5.0, 2.1, 29));
        let w = 5;
        let r_max = 1e-3;
        let before = backward_search(&g, SQRT_C, w, r_max, 64);
        // A clean insert target: b touched but far from pushed, source
        // untouched entirely.
        let pick = g.nodes().find_map(|a| {
            if touched_residue(&before, a).is_some() {
                return None;
            }
            before
                .touched
                .iter()
                .find(|&&(b, r)| b != a && r <= 0.25 * r_max && !g.out_neighbors(a).contains(&b))
                .map(|&(b, _)| (a, b))
        });
        let Some((a, b)) = pick else { return };
        let k = g.in_degree(b) as f64;
        let mut d = DeltaGraph::new(g);
        assert!(d.insert_edge(a, b));
        let after = backward_search(&d.snapshot(), SQRT_C, w, r_max, 64);
        assert_eq!(before.levels, after.levels, "reserves must not change");
        let rb_before = touched_residue(&before, b).unwrap();
        let rb_after = touched_residue(&after, b).unwrap();
        let expect = rb_before * k / (k + 1.0);
        assert!(
            (rb_after - expect).abs() <= 1e-12 * expect.max(1e-300),
            "residue {rb_before} should rescale to {expect}, got {rb_after}"
        );
    }

    #[test]
    fn respects_max_level() {
        let g = prsim_gen::toys::cycle(4);
        let res = backward_search(&g, SQRT_C, 0, 1e-15, 5);
        assert!(res.levels.len() <= 6);
    }

    #[test]
    fn monotone_error_in_threshold() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 6.0, 2.5, 9));
        let exact = exact_lhop_rppr_to(&g, SQRT_C, 5, 20);
        let mut prev_err = f64::INFINITY;
        for r_max in [1e-2, 1e-3, 1e-4, 1e-5] {
            let res = backward_search(&g, SQRT_C, 5, r_max, 20);
            // Max error over the exact table's support.
            let mut err: f64 = 0.0;
            for (l, level) in exact.iter().enumerate() {
                for (v, &truth) in level.iter().enumerate() {
                    if truth > 0.0 {
                        err = err.max((truth - res.reserve(l, v as u32)).abs());
                    }
                }
            }
            assert!(
                err <= prev_err + 1e-12,
                "error should shrink with r_max: {err} > {prev_err}"
            );
            prev_err = err;
        }
    }
}
