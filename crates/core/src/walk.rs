//! Reverse √c-discounted random walks (√c-walks).
//!
//! A √c-walk from `u` (paper §2) starts at `u` and at every step either
//! *terminates at the current node* with probability `1 − √c` or moves to
//! a uniformly random **in**-neighbor with probability `√c`. A walk that
//! survives its flip at a node with no in-neighbors **dies**: it
//! terminates nowhere (see the crate docs for why this convention keeps
//! `π_ℓ = (1−√c)·h_ℓ` exact).
//!
//! Two walks **meet at step i ≥ 1** when both are alive at step `i` and
//! occupy the same node; `s(u,v)` equals the probability that walks from
//! `u ≠ v` meet at some step.

use prsim_graph::{DiGraph, NodeId};
use rand::Rng;

/// Where (and whether) a √c-walk terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// The walk terminated at `node` after exactly `level` steps.
    At {
        /// Terminal node `w`.
        node: NodeId,
        /// Number of steps `ℓ` taken before terminating.
        level: u32,
    },
    /// The walk died at a dangling node (survived its flip but had no
    /// in-neighbor to move to) or hit the length cap.
    Died,
}

/// A sampled √c-walk: the sequence of visited nodes plus its terminal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Walk {
    /// Visited nodes `v_0 = source, v_1, …, v_L`; the walk was alive at
    /// step `i` when it occupied `path[i]`.
    pub path: Vec<NodeId>,
    /// How the walk ended.
    pub terminal: Terminal,
}

impl Walk {
    /// The node occupied at step `i`, if the walk lived that long.
    #[inline]
    pub fn at_step(&self, i: usize) -> Option<NodeId> {
        self.path.get(i).copied()
    }

    /// Number of steps the walk stayed alive (`path.len() − 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.path.len() - 1
    }

    /// True iff the walk never left its source.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.path.len() == 1
    }
}

/// Samples a full √c-walk from `source`, recording the visited path.
///
/// `max_len` caps the number of steps as a safety valve; survival past
/// level `L` has probability `(√c)^L`, so a cap of 64 is lossless for all
/// practical purposes (the cap records [`Terminal::Died`]).
pub fn sample_walk<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    source: NodeId,
    max_len: usize,
    rng: &mut R,
) -> Walk {
    let mut path = Vec::with_capacity(8);
    path.push(source);
    let mut cur = source;
    for level in 0..=max_len {
        if rng.gen::<f64>() >= sqrt_c {
            return Walk {
                path,
                terminal: Terminal::At {
                    node: cur,
                    level: level as u32,
                },
            };
        }
        let ins = g.in_neighbors(cur);
        if ins.is_empty() || level == max_len {
            return Walk {
                path,
                terminal: Terminal::Died,
            };
        }
        cur = ins[rng.gen_range(0..ins.len())];
        path.push(cur);
    }
    unreachable!("loop always returns")
}

/// Samples only the terminal of a √c-walk (no path allocation) — the
/// fast path used by Algorithm 4 to draw from `π_ℓ(u, ·)`.
pub fn sample_terminal<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    source: NodeId,
    max_len: usize,
    rng: &mut R,
) -> Terminal {
    let mut cur = source;
    for level in 0..=max_len {
        if rng.gen::<f64>() >= sqrt_c {
            return Terminal::At {
                node: cur,
                level: level as u32,
            };
        }
        let ins = g.in_neighbors(cur);
        if ins.is_empty() || level == max_len {
            return Terminal::Died;
        }
        cur = ins[rng.gen_range(0..ins.len())];
    }
    unreachable!("loop always returns")
}

/// True iff two walks meet at some step `i ≥ min_step` (both alive at the
/// same node at the same step).
pub fn walks_meet(w1: &Walk, w2: &Walk, min_step: usize) -> bool {
    let upto = w1.path.len().min(w2.path.len());
    (min_step..upto).any(|i| w1.path[i] == w2.path[i])
}

/// Samples two √c-walks from `w` and reports whether they meet at some
/// step `i ≥ 1` — the complement of this event has probability `η(w)`,
/// the paper's last-meeting probability (Definition 2.1).
pub fn sample_pair_meets<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    max_len: usize,
    rng: &mut R,
) -> bool {
    // Walk the two chains in lockstep without materializing paths.
    let mut a = Some(w);
    let mut b = Some(w);
    for step in 0..=max_len {
        // Advance each walk one step (None = terminated/died earlier).
        a = match a {
            Some(x) if rng.gen::<f64>() < sqrt_c => {
                let ins = g.in_neighbors(x);
                if ins.is_empty() {
                    None
                } else {
                    Some(ins[rng.gen_range(0..ins.len())])
                }
            }
            _ => None,
        };
        b = match b {
            Some(x) if rng.gen::<f64>() < sqrt_c => {
                let ins = g.in_neighbors(x);
                if ins.is_empty() {
                    None
                } else {
                    Some(ins[rng.gen_range(0..ins.len())])
                }
            }
            _ => None,
        };
        let _ = step;
        match (a, b) {
            (Some(x), Some(y)) if x == y => return true,
            (None, _) | (_, None) => return false,
            _ => {}
        }
    }
    false
}

/// Monte-Carlo estimate of the last-meeting probability `η(w)` from `nr`
/// walk pairs. Exposed for tests and for the SLING baseline's
/// preprocessing (which is exactly this, per node).
pub fn estimate_eta<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    nr: usize,
    max_len: usize,
    rng: &mut R,
) -> f64 {
    let mut no_meet = 0usize;
    for _ in 0..nr {
        if !sample_pair_meets(g, sqrt_c, w, max_len, rng) {
            no_meet += 1;
        }
    }
    no_meet as f64 / nr as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SQRT_C: f64 = 0.774_596_669_241_483_4; // sqrt(0.6)

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn walk_on_isolated_node_terminates_or_dies_at_source() {
        let g = prsim_graph::DiGraph::from_edges(1, &[]);
        let mut r = rng();
        for _ in 0..100 {
            let w = sample_walk(&g, SQRT_C, 0, 64, &mut r);
            assert_eq!(w.path, vec![0]);
            match w.terminal {
                Terminal::At { node, level } => {
                    assert_eq!((node, level), (0, 0));
                }
                Terminal::Died => {}
            }
        }
    }

    #[test]
    fn terminal_distribution_on_cycle() {
        // On a directed cycle every node has exactly one in-neighbor, so a
        // walk from 0 terminates at level l at node (0 - l) mod n with
        // probability (√c)^l (1-√c).
        let n = 5usize;
        let g = prsim_gen::toys::cycle(n);
        let mut r = rng();
        let trials = 200_000;
        let mut died = 0usize;
        let mut level_counts = [0usize; 10];
        for _ in 0..trials {
            match sample_terminal(&g, SQRT_C, 0, 64, &mut r) {
                Terminal::At { node, level } => {
                    if (level as usize) < level_counts.len() {
                        level_counts[level as usize] += 1;
                        // Deterministic position on the cycle.
                        let want =
                            ((n as i64 - level as i64 % n as i64) % n as i64) as u32 % n as u32;
                        assert_eq!(node, want, "level {level}");
                    }
                }
                Terminal::Died => died += 1,
            }
        }
        assert_eq!(died, 0, "no dangling nodes on a cycle");
        for (l, &count) in level_counts.iter().enumerate().take(6) {
            let want = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            let got = count as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.01,
                "level {l}: got {got:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn dangling_death_probability() {
        // Path 0 <- nothing; walk from 1 on edge (0, 1): from 1 moves to 0
        // w.p. √c, then 0 has no in-neighbor: dies w.p. √c there.
        let g = prsim_graph::DiGraph::from_edges(2, &[(0, 1)]);
        let mut r = rng();
        let trials = 100_000;
        let mut died = 0usize;
        for _ in 0..trials {
            if sample_terminal(&g, SQRT_C, 1, 64, &mut r) == Terminal::Died {
                died += 1;
            }
        }
        let want = SQRT_C * SQRT_C; // survive at 1, then survive at 0
        let got = died as f64 / trials as f64;
        assert!((got - want).abs() < 0.01, "died {got:.4}, want {want:.4}");
    }

    #[test]
    fn walk_path_never_exceeds_cap() {
        let g = prsim_gen::toys::cycle(3);
        let mut r = rng();
        for _ in 0..1000 {
            let w = sample_walk(&g, 0.99, 0, 16, &mut r);
            assert!(w.len() <= 16);
            if w.len() == 16 {
                // Hitting the cap exactly can be either a flip termination
                // at step 16 or a Died cap record; both are acceptable.
            }
        }
    }

    #[test]
    fn meeting_requires_same_step() {
        let w1 = Walk {
            path: vec![0, 1, 2],
            terminal: Terminal::Died,
        };
        let w2 = Walk {
            path: vec![3, 2, 1],
            terminal: Terminal::Died,
        };
        // They cross but never occupy the same node at the same step.
        assert!(!walks_meet(&w1, &w2, 1));
        let w3 = Walk {
            path: vec![3, 1],
            terminal: Terminal::Died,
        };
        assert!(walks_meet(&w1, &w3, 1));
        // Step 0 ignored when min_step = 1.
        let w4 = Walk {
            path: vec![0, 5],
            terminal: Terminal::Died,
        };
        assert!(!walks_meet(&w1, &w4, 1));
        assert!(walks_meet(&w1, &w4, 0));
    }

    #[test]
    fn eta_is_one_on_a_path_graph() {
        // On 0 -> 1 -> 2 (edges (0,1),(1,2)), in-neighbors are unique, so
        // two walks from any node move in lockstep deterministically...
        // they'd always meet. Instead check the star: leaves have a single
        // in-path of length 0 (no in-neighbors) so walks from the hub can
        // only meet at a leaf.
        let g = prsim_gen::toys::star_in(4); // leaves 1..3 point at hub 0
        let mut r = rng();
        // From a leaf: no in-neighbors, walks never move, never meet: η=1.
        let eta_leaf = estimate_eta(&g, SQRT_C, 1, 20_000, 64, &mut r);
        assert!((eta_leaf - 1.0).abs() < 1e-9);
        // From the hub: both walks survive their flips w.p. c and then
        // pick among 3 leaves; meeting prob = c/3.
        let eta_hub = estimate_eta(&g, SQRT_C, 0, 100_000, 64, &mut r);
        let want = 1.0 - 0.6 / 3.0;
        assert!(
            (eta_hub - want).abs() < 0.01,
            "eta {eta_hub:.4}, want {want:.4}"
        );
    }

    #[test]
    fn pair_meeting_on_two_triangles_never_crosses_components() {
        let g = prsim_gen::toys::two_triangles();
        let mut r = rng();
        // Walks from 0 stay in {0,1,2}: meeting of walks from 0 and from 3
        // is impossible; here we just verify sample_pair_meets from one
        // component is deterministic-safe (single in-neighbor: always meet
        // when both survive).
        let mut meets = 0;
        let trials = 50_000;
        for _ in 0..trials {
            if sample_pair_meets(&g, SQRT_C, 0, 64, &mut r) {
                meets += 1;
            }
        }
        // Both survive the first flip w.p. c and then deterministically
        // land on the same unique in-neighbor: meet prob = c + c²(...)
        // — at every step both-alive implies same node, so meet prob is
        // just P(both survive step 1) = c.
        let got = meets as f64 / trials as f64;
        assert!((got - 0.6).abs() < 0.01, "meet rate {got:.4}, want 0.6");
    }
}
