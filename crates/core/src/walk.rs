//! Reverse √c-discounted random walks (√c-walks).
//!
//! A √c-walk from `u` (paper §2) starts at `u` and at every step either
//! *terminates at the current node* with probability `1 − √c` or moves to
//! a uniformly random **in**-neighbor with probability `√c`. A walk that
//! survives its flip at a node with no in-neighbors **dies**: it
//! terminates nowhere (see the crate docs for why this convention keeps
//! `π_ℓ = (1−√c)·h_ℓ` exact).
//!
//! Two walks **meet at step i ≥ 1** when both are alive at step `i` and
//! occupy the same node; `s(u,v)` equals the probability that walks from
//! `u ≠ v` meet at some step.
//!
//! ## Geometric length sampling
//!
//! Instead of flipping a `1 − √c` termination coin at every step, the
//! samplers draw the walk length once: the step count of a √c-walk is
//! geometric with `P(len ≥ k) = (√c)^k`, so `len = ⌊ln(u)/ln(√c)⌋` for
//! `u ~ U(0,1)` has exactly the right law (`u < (√c)^k ⟺ len ≥ k`).
//! One uniform draw plus a logarithm replaces `len + 1` coin flips, and
//! the per-step work drops to just the in-neighbor pick. Death semantics
//! are unchanged: a walk whose drawn length would carry it *past* a node
//! with no in-neighbors (or past `max_len`) dies, because the per-step
//! sampler would have survived its flip there and found nowhere to go.
//! [`sample_terminal_per_step`] keeps the literal per-step transcription
//! as a reference implementation; the equivalence of the two level
//! distributions is asserted statistically in this module's tests and in
//! `tests/determinism.rs`.

use prsim_graph::{DiGraph, NodeId};
use rand::Rng;

/// Draws the step count of one √c-walk: geometric with
/// `P(len ≥ k) = (√c)^k`. Returns `None` when the walk would outlive
/// `max_len` (the caller records [`Terminal::Died`], matching the
/// per-step sampler's cap behavior). `ln_sqrt_c` is `sqrt_c.ln()`,
/// hoisted by callers that sample many walks.
#[inline]
fn sample_geometric_len<R: Rng + ?Sized>(
    ln_sqrt_c: f64,
    max_len: usize,
    rng: &mut R,
) -> Option<usize> {
    let u: f64 = rng.gen();
    if u <= 0.0 {
        return None; // ln(0) = -inf: survives past any cap
    }
    let len = u.ln() / ln_sqrt_c;
    if len >= (max_len + 1) as f64 {
        None
    } else {
        Some(len as usize)
    }
}

/// Precomputed survival table for geometric walk-length draws:
/// `pow[k] = (√c)^k` for `k = 0..=cap+1`.
///
/// `sample_len` inverts the survival function by scanning the table —
/// expected `√c/(1−√c) + 1 ≈ 4.4` L1-resident comparisons for `c = 0.6`,
/// cheaper than the `ln` the table-free path pays, and exactly the same
/// sequence of survival events the per-step sampler realizes one flip at
/// a time. Build once per engine (one table per `(√c, max_level)`), reuse
/// for every walk.
#[derive(Clone, Debug)]
pub struct GeomLenTable {
    pow: Vec<f64>,
    cap: usize,
}

impl GeomLenTable {
    /// Builds the table for decay `sqrt_c` and length cap `cap`.
    pub fn new(sqrt_c: f64, cap: usize) -> Self {
        let mut pow = Vec::with_capacity(cap + 2);
        let mut p = 1.0f64;
        for _ in 0..=cap + 1 {
            pow.push(p);
            p *= sqrt_c;
        }
        GeomLenTable { pow, cap }
    }

    /// The length cap (`max_level`) this table was built for.
    #[inline]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Draws one walk length; `None` means the walk outlives the cap
    /// (dies there). `u < pow[k] ⟺ len ≥ k`.
    #[inline]
    pub fn sample_len<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let u: f64 = rng.gen();
        let mut k = 0usize;
        while k <= self.cap {
            if u >= self.pow[k + 1] {
                return Some(k);
            }
            k += 1;
        }
        None
    }

    /// [`Self::sample_len`] truncated to the cap: a draw that outlives
    /// the cap is reported as exactly `cap` steps.
    ///
    /// This is the **meeting-window** convention every lockstep pair
    /// kernel uses: a capped walk is still alive through step `cap` —
    /// it dies *at* the cap — so for any event decided within the first
    /// `cap` steps (two walks meeting at some step `i ≤ cap`) the
    /// truncation is exact, matching the per-step sampler flip for flip
    /// (`len_or_cap_matches_per_step_at_the_cap` pins this). It must
    /// **not** be used where the distinction between "terminated at level
    /// `cap`" and "died at the cap" matters, i.e. terminal sampling —
    /// those callers take [`Self::sample_len`]'s `Option` directly.
    #[inline]
    pub fn len_or_cap<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_len(rng).unwrap_or(self.cap)
    }
}

/// [`sample_terminal`] with a prebuilt [`GeomLenTable`] — the engine's
/// hot path (no per-call `ln`, no per-step coin flips).
pub fn sample_terminal_with_table<R: Rng + ?Sized>(
    g: &DiGraph,
    table: &GeomLenTable,
    source: NodeId,
    rng: &mut R,
) -> Terminal {
    let Some(len) = table.sample_len(rng) else {
        return Terminal::Died;
    };
    let mut cur = source;
    for _ in 0..len {
        let ins = g.in_neighbors(cur);
        if ins.is_empty() {
            return Terminal::Died;
        }
        cur = ins[rng.gen_range(0..ins.len())];
    }
    Terminal::At {
        node: cur,
        level: len as u32,
    }
}

/// Samples `count` √c-walk terminals from `source` with `LANES`-way
/// interleaving: up to eight walks advance round-robin, so their
/// dependent random loads (offsets, then in-neighbor) overlap in the
/// memory pipeline instead of serializing — measured ~2.5x faster than
/// one-walk-at-a-time on graphs larger than the cache. Completed
/// terminals are appended to `out` in completion order (deterministic
/// for a fixed seed, like every consumption order here); the return
/// value counts walks that died. Statistically each walk is exactly a
/// [`sample_terminal_with_table`] draw — only the RNG interleaving
/// differs.
pub fn sample_terminals_interleaved<R: Rng + ?Sized>(
    g: &DiGraph,
    table: &GeomLenTable,
    source: NodeId,
    count: usize,
    out: &mut Vec<(NodeId, u32)>,
    rng: &mut R,
) -> usize {
    const LANES: usize = 8;
    // Lane: (current node, remaining steps, drawn level).
    let mut lanes: [(NodeId, usize, u32); LANES] = [(0, 0, 0); LANES];
    let mut live = 0usize;
    let mut started = 0usize;
    let mut died = 0usize;

    // Activates pending walks until the lanes are full; level-0 and
    // capped walks never occupy a lane.
    macro_rules! refill {
        () => {
            while live < LANES && started < count {
                started += 1;
                match table.sample_len(rng) {
                    None => died += 1,
                    Some(0) => out.push((source, 0)),
                    Some(len) => {
                        lanes[live] = (source, len, len as u32);
                        live += 1;
                    }
                }
            }
        };
    }

    refill!();
    while live > 0 {
        let mut lane = 0usize;
        while lane < live {
            let (cur, rem, level) = lanes[lane];
            let ins = g.in_neighbors(cur);
            if ins.is_empty() {
                died += 1;
                live -= 1;
                lanes[lane] = lanes[live];
                refill!();
                continue; // the swapped-in walk runs this lane index next
            }
            let nxt = ins[rng.gen_range(0..ins.len())];
            if rem == 1 {
                out.push((nxt, level));
                live -= 1;
                lanes[lane] = lanes[live];
                refill!();
            } else {
                lanes[lane] = (nxt, rem - 1, level);
                lane += 1;
            }
        }
    }
    died
}

/// Samples `count` √c-walk terminals from `source` and, for each
/// terminal `(w, ℓ)`, immediately runs its `η(w)` rejection test (one
/// pair of √c-walks from `w`, meeting at some step `i ≥ 1`), all in one
/// `LANES`-way interleaved scheduler. Fusing the two phases matters on
/// graphs larger than the cache: the pair walk's first step reads
/// `in_neighbors(w)`, which the terminal walk's last step just loaded —
/// running the test while that line is still resident removes the
/// coldest access of the old separate pair pass. Completed samples are
/// appended to `out` as `(w, ℓ, met)` in completion order (deterministic
/// for a fixed seed); the return value counts walks that died.
/// Statistically each sample is exactly a [`sample_terminal_with_table`]
/// draw followed by an independent [`sample_walks_meet_with_table`] draw
/// from `(w, w)` — only the RNG interleaving differs.
///
/// Status: the faithful-output reference for the engine's
/// [`sample_walk_phase_interleaved`], which extends this scheduler with
/// cache hooks and drops level-0 (diagonal-only) samples. This variant
/// emits every sample and takes no cache, so it remains the right kernel
/// for callers that need the unfiltered `(w, ℓ, met)` stream; any fix to
/// the lane-swap or cap-composition logic here must be mirrored there
/// (and vice versa — the two schedulers are intentionally line-parallel).
pub fn sample_terminals_with_eta_interleaved<R: Rng + ?Sized>(
    g: &DiGraph,
    table: &GeomLenTable,
    source: NodeId,
    count: usize,
    out: &mut Vec<(NodeId, u32, bool)>,
    rng: &mut R,
) -> usize {
    const LANES: usize = 8;
    #[derive(Clone, Copy)]
    struct Lane {
        /// Walk cursor (walk mode) or pair walk a (pair mode).
        a: NodeId,
        /// Pair walk b (pair mode; unused in walk mode).
        b: NodeId,
        /// The terminal node `w` under η test (pair mode only).
        w: NodeId,
        /// Remaining steps of the current mode.
        rem: usize,
        /// The terminal's drawn level ℓ.
        level: u32,
        /// False: sampling the terminal walk; true: running its η pair.
        pair: bool,
    }
    const IDLE: Lane = Lane {
        a: 0,
        b: 0,
        w: 0,
        rem: 0,
        level: 0,
        pair: false,
    };
    let mut lanes = [IDLE; LANES];
    let mut live = 0usize;
    let mut started = 0usize;
    let mut died = 0usize;

    // Starts the η test for terminal (w, level) in the free lane slot
    // `slot`. Zero-step pairs (either walk terminates before moving)
    // resolve inline to "no meeting"; returns whether the slot was taken.
    macro_rules! start_pair {
        ($slot:expr, $w:expr, $level:expr) => {{
            let la = table.len_or_cap(rng);
            let lb = table.len_or_cap(rng);
            let steps = la.min(lb);
            if steps == 0 {
                out.push(($w, $level, false));
                false
            } else {
                lanes[$slot] = Lane {
                    a: $w,
                    b: $w,
                    w: $w,
                    rem: steps,
                    level: $level,
                    pair: true,
                };
                true
            }
        }};
    }

    // Activates pending terminal walks until the lanes are full;
    // level-0 walks go straight to their η test.
    macro_rules! refill {
        () => {
            while live < LANES && started < count {
                started += 1;
                match table.sample_len(rng) {
                    None => died += 1,
                    Some(0) => {
                        if start_pair!(live, source, 0) {
                            live += 1;
                        }
                    }
                    Some(len) => {
                        lanes[live] = Lane {
                            a: source,
                            rem: len,
                            level: len as u32,
                            ..IDLE
                        };
                        live += 1;
                    }
                }
            }
        };
    }

    refill!();
    while live > 0 {
        let mut lane = 0usize;
        while lane < live {
            let Lane {
                a,
                b,
                w,
                rem,
                level,
                pair,
            } = lanes[lane];
            if !pair {
                // Terminal-walk mode: one in-neighbor step.
                let ins = g.in_neighbors(a);
                if ins.is_empty() {
                    died += 1;
                    live -= 1;
                    lanes[lane] = lanes[live];
                    refill!();
                    continue; // the swapped-in walk runs this lane next
                }
                let nxt = ins[rng.gen_range(0..ins.len())];
                if rem == 1 {
                    // Terminal reached: flip the lane into its η test
                    // while nxt's in-list is still cache-hot.
                    if start_pair!(lane, nxt, level) {
                        lane += 1;
                    } else {
                        live -= 1;
                        lanes[lane] = lanes[live];
                        refill!();
                    }
                } else {
                    lanes[lane].a = nxt;
                    lanes[lane].rem = rem - 1;
                    lane += 1;
                }
                continue;
            }
            // Pair mode: advance both walks one step in lockstep.
            let ins_a = g.in_neighbors(a);
            if ins_a.is_empty() {
                out.push((w, level, false));
                live -= 1;
                lanes[lane] = lanes[live];
                refill!();
                continue;
            }
            let na = ins_a[rng.gen_range(0..ins_a.len())];
            // η pairs start at (w, w): reuse the slice on the shared step.
            let ins_b = if b == a { ins_a } else { g.in_neighbors(b) };
            if ins_b.is_empty() {
                out.push((w, level, false));
                live -= 1;
                lanes[lane] = lanes[live];
                refill!();
                continue;
            }
            let nb = ins_b[rng.gen_range(0..ins_b.len())];
            if na == nb || rem == 1 {
                out.push((w, level, na == nb));
                live -= 1;
                lanes[lane] = lanes[live];
                refill!();
            } else {
                lanes[lane].a = na;
                lanes[lane].b = nb;
                lanes[lane].rem = rem - 1;
                lane += 1;
            }
        }
    }
    died
}

/// For every start pair `(a, b)` in `pairs`, samples one √c-walk from
/// each and records in `met_out[i]` whether the walks meet at some step
/// `i ≥ 1` — the interleaved batch form of [`sample_walks_meet`] (walk
/// pairs advance round-robin to overlap their random loads). The query
/// engine now fuses this into
/// [`sample_terminals_with_eta_interleaved`]; the standalone batch form
/// remains for callers that bring their own pair lists.
pub fn sample_pairs_meet_interleaved<R: Rng + ?Sized>(
    g: &DiGraph,
    table: &GeomLenTable,
    pairs: &[(NodeId, NodeId)],
    met_out: &mut Vec<bool>,
    rng: &mut R,
) {
    const LANES: usize = 8;
    met_out.clear();
    met_out.resize(pairs.len(), false);
    // Lane: (walk a, walk b, remaining lockstep steps, pair index).
    let mut lanes: [(NodeId, NodeId, usize, usize); LANES] = [(0, 0, 0, 0); LANES];
    let mut live = 0usize;
    let mut started = 0usize;

    macro_rules! refill {
        () => {
            while live < LANES && started < pairs.len() {
                let idx = started;
                started += 1;
                let la = table.len_or_cap(rng);
                let lb = table.len_or_cap(rng);
                let steps = la.min(lb);
                if steps > 0 {
                    let (a, b) = pairs[idx];
                    lanes[live] = (a, b, steps, idx);
                    live += 1;
                }
                // steps == 0: at least one walk never moves, no meeting.
            }
        };
    }

    refill!();
    while live > 0 {
        let mut lane = 0usize;
        while lane < live {
            let (a, b, rem, idx) = lanes[lane];
            let ins_a = g.in_neighbors(a);
            if ins_a.is_empty() {
                live -= 1;
                lanes[lane] = lanes[live];
                refill!();
                continue;
            }
            let na = ins_a[rng.gen_range(0..ins_a.len())];
            // η pairs start at (w, w): reuse the slice on the shared step.
            let ins_b = if b == a { ins_a } else { g.in_neighbors(b) };
            if ins_b.is_empty() {
                live -= 1;
                lanes[lane] = lanes[live];
                refill!();
                continue;
            }
            let nb = ins_b[rng.gen_range(0..ins_b.len())];
            if na == nb {
                met_out[idx] = true;
                live -= 1;
                lanes[lane] = lanes[live];
                refill!();
            } else if rem == 1 {
                live -= 1;
                lanes[lane] = lanes[live];
                refill!();
            } else {
                lanes[lane] = (na, nb, rem - 1, idx);
                lane += 1;
            }
        }
    }
}

/// One in-flight walk of the sorted-wavefront terminal kernel.
#[derive(Clone, Copy, Debug, Default)]
struct WalkState {
    /// Current node.
    cur: NodeId,
    /// Remaining steps of the drawn length.
    rem: u32,
    /// The drawn total length (= the terminal level when it retires).
    len: u32,
}

/// One in-flight walk pair of the sorted-wavefront pair kernel.
#[derive(Clone, Copy, Debug, Default)]
struct PairState {
    /// Walk a's current node (the sort key — pairs start at `(w, w)`, so
    /// binning by `a` coalesces both walks' reads on the hottest step).
    a: NodeId,
    /// Walk b's current node.
    b: NodeId,
    /// Remaining lockstep steps.
    rem: u32,
    /// Index into the caller's pair list / verdict vector.
    idx: u32,
}

/// Reusable frontier + radix scratch for the wavefront kernels
/// ([`sample_terminals_wavefront`], [`sample_pairs_meet_wavefront`]).
/// Buffers grow to the in-flight walk count on first use and are then
/// allocation-free; [`crate::QueryWorkspace`] carries one per thread.
#[derive(Clone, Debug, Default)]
pub struct WaveScratch {
    walks: Vec<WalkState>,
    walks_next: Vec<WalkState>,
    walks_tmp: Vec<WalkState>,
    pairs: Vec<PairState>,
    pairs_next: Vec<PairState>,
    pairs_tmp: Vec<PairState>,
}

impl WaveScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Stable LSD radix sort of frontier entries by a `NodeId` key
/// (the [`crate::workspace`] pattern, generalized over the entry type).
/// Stability is what keeps RNG consumption deterministic: walks binned
/// to the same node keep their arrival order. 8-bit digits, not the
/// 11-bit of the big one-shot sorts: this sort runs once per wavefront
/// *level* on a few hundred entries, where zeroing a 2048-bucket count
/// table per pass would cost more than the sort — 256 buckets keep the
/// fixed cost a cache line sweep.
fn radix_sort_by_node<T: Copy + Default>(
    data: &mut Vec<T>,
    tmp: &mut Vec<T>,
    key: impl Fn(&T) -> NodeId,
) {
    const CUTOFF: usize = 96;
    const BITS: u32 = 8;
    const BUCKETS: usize = 1 << BITS;
    if data.len() <= CUTOFF {
        data.sort_by_key(&key); // stable
        return;
    }
    let max = data.iter().map(&key).max().expect("len > cutoff");
    tmp.clear();
    tmp.resize(data.len(), T::default());
    let mut shift = 0u32;
    while shift < 32 && (max >> shift) > 0 {
        let mut counts = [0usize; BUCKETS + 1];
        for x in data.iter() {
            counts[((key(x) >> shift) as usize & (BUCKETS - 1)) + 1] += 1;
        }
        for i in 1..=BUCKETS {
            counts[i] += counts[i - 1];
        }
        for &x in data.iter() {
            let d = (key(&x) >> shift) as usize & (BUCKETS - 1);
            tmp[counts[d]] = x;
            counts[d] += 1;
        }
        std::mem::swap(data, tmp);
        shift += BITS;
    }
}

/// Pre-drawn terminal supplier consulted by
/// [`sample_terminals_wavefront`] every time a walk **arrives** at a node
/// (including the source at step 0, *before* the termination flip there).
///
/// By memorylessness of the geometric length, a walk alive on arrival at
/// `x` has a future — remaining step count and terminal — distributed
/// exactly like a fresh √c-walk from `x`, so substituting an independent
/// pre-drawn sample for the remainder leaves the terminal law unchanged
/// (see [`crate::walkcache`] for the full argument and the cache that
/// implements this trait).
pub trait TerminalDraws {
    /// Attempts to consume one pre-drawn sample for a walk arriving at
    /// `node`. `None`: miss, the walk keeps stepping live.
    /// `Some(None)`: the cached walk died. `Some(Some((w, extra)))`: the
    /// remainder terminates at `w` after `extra` further steps.
    fn try_draw<R: Rng + ?Sized>(
        &mut self,
        node: NodeId,
        rng: &mut R,
    ) -> Option<Option<(NodeId, u32)>>;

    /// Attempts to consume one pre-drawn η verdict for terminal `w` —
    /// whether a pair of √c-walks from `w` met at some step `i ≥ 1`.
    /// `None`: miss, the caller runs a live pair.
    fn try_eta<R: Rng + ?Sized>(&mut self, _w: NodeId, _rng: &mut R) -> Option<bool> {
        None
    }
}

/// The cache-free supplier: every lookup misses, so the kernel runs pure
/// live sampling.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDraws;

impl TerminalDraws for NoDraws {
    #[inline]
    fn try_draw<R: Rng + ?Sized>(
        &mut self,
        _node: NodeId,
        _rng: &mut R,
    ) -> Option<Option<(NodeId, u32)>> {
        None
    }
}

/// Instrumentation of one walk-phase kernel run (wavefront or fused
/// interleaved).
#[derive(Clone, Copy, Debug, Default)]
pub struct WaveStats {
    /// Walks that died (dangling node, length cap, or a died cached
    /// sample).
    pub died: usize,
    /// Walks resolved by a cached terminal draw ([`TerminalDraws`] hits).
    pub cache_hits: usize,
    /// η tests resolved by a cached verdict bit
    /// ([`TerminalDraws::try_eta`] hits; fused kernel only — the
    /// wavefront terminal kernel leaves η to its caller).
    pub eta_hits: usize,
    /// Largest frontier the kernel carried across a level (0 for the
    /// interleaved kernel, whose in-flight set is its 8 lanes).
    pub peak_frontier: usize,
    /// Levels the frontier stayed non-empty (0 for the interleaved
    /// kernel).
    pub levels: usize,
    /// Level-0 samples dropped as diagonal-only
    /// ([`sample_walk_phase_interleaved`] only; the wavefront kernels
    /// emit level-0 terminals).
    pub diagonal: usize,
}

/// Samples `count` √c-walk terminals from `source` as a
/// **sorted wavefront**: all in-flight walks advance level-synchronously,
/// and at every level the frontier is radix-binned by current node id so
/// the CSR in-neighbor reads of one level run in ascending node order —
/// sequential sweeps over the adjacency arrays instead of `count`
/// independent pointer chases. Terminals retire into `out` in place as
/// walks finish; the return value reports deaths, cache hits and frontier
/// shape. RNG cost is hoisted out of the memory-bound phase: all walk
/// lengths are drawn in one tight batch up front, and the per-level loop
/// only draws the (Lemire multiply-shift) neighbor picks.
///
/// `cache` is consulted on every node arrival (see [`TerminalDraws`]);
/// pass [`NoDraws`] for pure live sampling, under which every terminal is
/// statistically exactly a [`sample_terminal_with_table`] draw — only the
/// RNG consumption order differs. The retirement order is deterministic
/// for a fixed seed (stable binning), like every consumption order here.
#[allow(clippy::too_many_arguments)] // graph + table + walk spec + scratch
pub fn sample_terminals_wavefront<R: Rng + ?Sized, C: TerminalDraws>(
    g: &DiGraph,
    table: &GeomLenTable,
    source: NodeId,
    count: usize,
    cache: &mut C,
    out: &mut Vec<(NodeId, u32)>,
    ws: &mut WaveScratch,
    rng: &mut R,
) -> WaveStats {
    let cap = table.cap() as u32;
    let mut stats = WaveStats::default();
    ws.walks.clear();
    for _ in 0..count {
        // Arrival at the source, step 0: a cached draw covers the whole
        // walk, including the termination flip at the source itself.
        match cache.try_draw(source, rng) {
            Some(sample) => {
                stats.cache_hits += 1;
                match sample {
                    // Pool samples are drawn under the same cap, so the
                    // composed level `0 + extra` never exceeds it.
                    Some((w, extra)) => out.push((w, extra)),
                    None => stats.died += 1,
                }
            }
            None => match table.sample_len(rng) {
                None => stats.died += 1,
                Some(0) => out.push((source, 0)),
                Some(len) => ws.walks.push(WalkState {
                    cur: source,
                    rem: len as u32,
                    len: len as u32,
                }),
            },
        }
    }
    while !ws.walks.is_empty() {
        stats.levels += 1;
        stats.peak_frontier = stats.peak_frontier.max(ws.walks.len());
        radix_sort_by_node(&mut ws.walks, &mut ws.walks_tmp, |w| w.cur);
        ws.walks_next.clear();
        let mut i = 0usize;
        while i < ws.walks.len() {
            let cur = ws.walks[i].cur;
            // One slice fetch per node group; the group shares the line.
            let ins = g.in_neighbors(cur);
            while i < ws.walks.len() && ws.walks[i].cur == cur {
                let WalkState { rem, len, .. } = ws.walks[i];
                i += 1;
                if ins.is_empty() {
                    stats.died += 1; // survived its flip with nowhere to go
                    continue;
                }
                let nxt = ins[rng.gen_range(0..ins.len())];
                // Steps taken after this move; the walk is alive arriving
                // at nxt, so a cached draw may replace its remainder.
                let taken = len - rem + 1;
                match cache.try_draw(nxt, rng) {
                    Some(sample) => {
                        stats.cache_hits += 1;
                        match sample {
                            Some((w, extra)) if taken + extra <= cap => {
                                out.push((w, taken + extra))
                            }
                            // Died sample, or the composed walk outlives
                            // the cap: dies either way.
                            _ => stats.died += 1,
                        }
                    }
                    None => {
                        if rem == 1 {
                            out.push((nxt, len));
                        } else {
                            ws.walks_next.push(WalkState {
                                cur: nxt,
                                rem: rem - 1,
                                len,
                            });
                        }
                    }
                }
            }
        }
        std::mem::swap(&mut ws.walks, &mut ws.walks_next);
    }
    stats
}

/// For every start pair `(a, b)` in `pairs`, samples one √c-walk from
/// each in lockstep and records in `met_out[i]` whether they meet at some
/// step `i ≥ 1` — the sorted-wavefront form of
/// [`sample_pairs_meet_interleaved`]: all live pairs advance
/// level-synchronously with the frontier radix-binned by walk a's current
/// node (pairs start at `(w, w)`, so on the dominant first step both
/// walks of a pair read the same in-list and groups of pairs from the
/// same terminal coalesce onto one slice). Verdicts are bit-equivalent in
/// distribution to the interleaved kernel; only RNG consumption order
/// differs.
pub fn sample_pairs_meet_wavefront<R: Rng + ?Sized>(
    g: &DiGraph,
    table: &GeomLenTable,
    pairs: &[(NodeId, NodeId)],
    met_out: &mut Vec<bool>,
    ws: &mut WaveScratch,
    rng: &mut R,
) {
    assert!(
        u32::try_from(pairs.len()).is_ok(),
        "pair batch exceeds u32 indexing"
    );
    met_out.clear();
    met_out.resize(pairs.len(), false);
    ws.pairs.clear();
    for (idx, &(a, b)) in pairs.iter().enumerate() {
        let steps = table.len_or_cap(rng).min(table.len_or_cap(rng));
        if steps > 0 {
            ws.pairs.push(PairState {
                a,
                b,
                rem: steps as u32,
                idx: idx as u32,
            });
        }
        // steps == 0: at least one walk never moves, no meeting.
    }
    while !ws.pairs.is_empty() {
        radix_sort_by_node(&mut ws.pairs, &mut ws.pairs_tmp, |p| p.a);
        ws.pairs_next.clear();
        let mut i = 0usize;
        while i < ws.pairs.len() {
            let cur = ws.pairs[i].a;
            let ins_a = g.in_neighbors(cur);
            while i < ws.pairs.len() && ws.pairs[i].a == cur {
                let PairState { b, rem, idx, .. } = ws.pairs[i];
                i += 1;
                if ins_a.is_empty() {
                    continue; // walk a dies: no meeting
                }
                let na = ins_a[rng.gen_range(0..ins_a.len())];
                // η pairs start at (w, w): reuse the slice on shared steps.
                let ins_b = if b == cur { ins_a } else { g.in_neighbors(b) };
                if ins_b.is_empty() {
                    continue;
                }
                let nb = ins_b[rng.gen_range(0..ins_b.len())];
                if na == nb {
                    met_out[idx as usize] = true;
                } else if rem > 1 {
                    ws.pairs_next.push(PairState {
                        a: na,
                        b: nb,
                        rem: rem - 1,
                        idx,
                    });
                }
            }
        }
        std::mem::swap(&mut ws.pairs, &mut ws.pairs_next);
    }
}

/// The engine's fused walk phase: samples `count` √c-walk terminals from
/// `source` and resolves each surviving terminal's η verdict, with
/// `LANES`-way interleaving **and** cache consumption — the
/// [`sample_terminals_with_eta_interleaved`] scheduler extended with
/// [`TerminalDraws`] hooks on every walk arrival (terminal pools) and
/// every terminal (η verdict pools).
///
/// **Level-0 samples are dropped** (counted in
/// [`WaveStats::diagonal`]): a walk that terminates before moving sits
/// at the source, and a `(u, 0)` sample's entire downstream
/// contribution — η test, backward walk or index postings — lands
/// exclusively on the diagonal estimate `ŝ(u, u)`, which the engine
/// pins to 1 by definition. Skipping them changes no off-diagonal
/// estimate and saves ~`1 − √c` of the η phase outright, so this kernel
/// is for callers that also pin the diagonal; the general-purpose
/// samplers above emit level-0 terminals faithfully.
///
/// A cached terminal draw retires the walk on the spot — the pre-drawn
/// sample replaces the entire remaining pointer chase — and a cached η
/// bit skips the pair walk entirely, so on power-law graphs the hottest
/// (top-π) part of the walk mass never touches the adjacency arrays at
/// all. Interleaving keeps up to eight live walks' dependent random
/// loads overlapping in the memory pipeline, which is what wins over
/// one-walk-at-a-time *and* over level-synchronous execution at
/// per-query batch sizes (see [`sample_terminals_wavefront`] for the
/// sorted regime the engine switches to on large frontiers). Completed
/// samples are appended to `out` as `(w, ℓ, met)` in completion order
/// (deterministic for a fixed seed); the kernel draws every walk length
/// in the refill batch, keeping the RNG state hot in registers through
/// the memory-bound stepping loop.
pub fn sample_walk_phase_interleaved<R: Rng + ?Sized, C: TerminalDraws>(
    g: &DiGraph,
    table: &GeomLenTable,
    source: NodeId,
    count: usize,
    cache: &mut C,
    out: &mut Vec<(NodeId, u32, bool)>,
    rng: &mut R,
) -> WaveStats {
    sample_walk_phase_interleaved_impl::<R, C, false>(g, table, source, count, cache, out, rng)
}

/// [`sample_walk_phase_interleaved`] with software prefetch on every
/// lane advance: when a walk steps to `nxt`, the in-offset and in-list
/// lines `nxt` will need on the lane's *next* turn are requested now,
/// so the seven other lanes' work hides the miss instead of the lane
/// stalling on it. Draw-free — the output and the RNG stream are
/// bit-identical to the plain kernel — so the fused query plan can use
/// it while the reference plan keeps the unhinted baseline kernel.
pub fn sample_walk_phase_interleaved_prefetch<R: Rng + ?Sized, C: TerminalDraws>(
    g: &DiGraph,
    table: &GeomLenTable,
    source: NodeId,
    count: usize,
    cache: &mut C,
    out: &mut Vec<(NodeId, u32, bool)>,
    rng: &mut R,
) -> WaveStats {
    sample_walk_phase_interleaved_impl::<R, C, true>(g, table, source, count, cache, out, rng)
}

fn sample_walk_phase_interleaved_impl<R: Rng + ?Sized, C: TerminalDraws, const PF: bool>(
    g: &DiGraph,
    table: &GeomLenTable,
    source: NodeId,
    count: usize,
    cache: &mut C,
    out: &mut Vec<(NodeId, u32, bool)>,
    rng: &mut R,
) -> WaveStats {
    const LANES: usize = 8;
    let cap = table.cap() as u32;
    #[derive(Clone, Copy)]
    struct Lane {
        /// Walk cursor (walk mode) or pair walk a (pair mode).
        a: NodeId,
        /// Pair walk b (pair mode; unused in walk mode).
        b: NodeId,
        /// The terminal node `w` under η test (pair mode only).
        w: NodeId,
        /// Remaining steps of the current mode.
        rem: u32,
        /// The terminal's (drawn or composed) level ℓ.
        level: u32,
        /// False: sampling the terminal walk; true: running its η pair.
        pair: bool,
    }
    const IDLE: Lane = Lane {
        a: 0,
        b: 0,
        w: 0,
        rem: 0,
        level: 0,
        pair: false,
    };
    let mut lanes = [IDLE; LANES];
    let mut live = 0usize;
    let mut started = 0usize;
    let mut stats = WaveStats::default();

    // Resolves terminal (w, level): a cached η bit retires it inline;
    // otherwise the η pair test starts in lane slot `slot` (zero-step
    // pairs resolve inline to "no meeting"). Returns whether the slot
    // was taken.
    macro_rules! resolve_terminal {
        ($slot:expr, $w:expr, $level:expr) => {{
            match cache.try_eta($w, rng) {
                Some(met) => {
                    stats.eta_hits += 1;
                    out.push(($w, $level, met));
                    false
                }
                None => {
                    let steps = table.len_or_cap(rng).min(table.len_or_cap(rng));
                    if steps == 0 {
                        out.push(($w, $level, false));
                        false
                    } else {
                        if PF {
                            g.prefetch_in_offsets($w);
                            g.prefetch_in_lists($w);
                        }
                        lanes[$slot] = Lane {
                            a: $w,
                            b: $w,
                            w: $w,
                            rem: steps as u32,
                            level: $level,
                            pair: true,
                        };
                        true
                    }
                }
            }
        }};
    }

    // Activates pending walks until the lanes are full. Every walk first
    // offers its source arrival to the cache (the pre-drawn sample covers
    // the termination flip at the source itself); misses draw a length
    // and enter a lane. Level-0 outcomes — drawn or cached — are
    // diagonal-only and dropped on the spot (see the kernel docs).
    macro_rules! refill {
        () => {
            while live < LANES && started < count {
                started += 1;
                match cache.try_draw(source, rng) {
                    Some(sample) => {
                        stats.cache_hits += 1;
                        match sample {
                            Some((_, 0)) => stats.diagonal += 1,
                            Some((w, extra)) => {
                                if resolve_terminal!(live, w, extra) {
                                    live += 1;
                                }
                            }
                            None => stats.died += 1,
                        }
                    }
                    None => match table.sample_len(rng) {
                        None => stats.died += 1,
                        Some(0) => stats.diagonal += 1,
                        Some(len) => {
                            lanes[live] = Lane {
                                a: source,
                                rem: len as u32,
                                level: len as u32,
                                ..IDLE
                            };
                            live += 1;
                        }
                    },
                }
            }
        };
    }

    macro_rules! retire_lane {
        ($lane:expr) => {{
            live -= 1;
            lanes[$lane] = lanes[live];
            refill!();
        }};
    }

    refill!();
    while live > 0 {
        let mut lane = 0usize;
        while lane < live {
            let Lane {
                a,
                b,
                w,
                rem,
                level,
                pair,
            } = lanes[lane];
            if !pair {
                // Terminal-walk mode: one in-neighbor step.
                let ins = g.in_neighbors(a);
                if ins.is_empty() {
                    stats.died += 1;
                    retire_lane!(lane);
                    continue; // the swapped-in walk runs this lane next
                }
                let nxt = ins[rng.gen_range(0..ins.len())];
                // Steps taken after this move; the walk arrives alive,
                // so a cached draw may replace its remainder.
                let taken = level - rem + 1;
                match cache.try_draw(nxt, rng) {
                    Some(sample) => {
                        stats.cache_hits += 1;
                        match sample {
                            Some((tw, extra)) if taken + extra <= cap => {
                                if resolve_terminal!(lane, tw, taken + extra) {
                                    lane += 1;
                                } else {
                                    retire_lane!(lane);
                                }
                            }
                            // Died sample, or the composed walk outlives
                            // the cap: dies either way.
                            _ => {
                                stats.died += 1;
                                retire_lane!(lane);
                            }
                        }
                    }
                    None => {
                        if rem == 1 {
                            // Terminal reached: resolve η while nxt's
                            // in-list is still cache-hot.
                            if resolve_terminal!(lane, nxt, level) {
                                lane += 1;
                            } else {
                                retire_lane!(lane);
                            }
                        } else {
                            if PF {
                                g.prefetch_in_offsets(nxt);
                                g.prefetch_in_lists(nxt);
                            }
                            lanes[lane].a = nxt;
                            lanes[lane].rem = rem - 1;
                            lane += 1;
                        }
                    }
                }
                continue;
            }
            // Pair mode: advance both walks one step in lockstep.
            let ins_a = g.in_neighbors(a);
            if ins_a.is_empty() {
                out.push((w, level, false));
                retire_lane!(lane);
                continue;
            }
            let na = ins_a[rng.gen_range(0..ins_a.len())];
            // η pairs start at (w, w): reuse the slice on the shared step.
            let ins_b = if b == a { ins_a } else { g.in_neighbors(b) };
            if ins_b.is_empty() {
                out.push((w, level, false));
                retire_lane!(lane);
                continue;
            }
            let nb = ins_b[rng.gen_range(0..ins_b.len())];
            if na == nb || rem == 1 {
                out.push((w, level, na == nb));
                retire_lane!(lane);
            } else {
                if PF {
                    g.prefetch_in_offsets(na);
                    g.prefetch_in_lists(na);
                    g.prefetch_in_offsets(nb);
                    g.prefetch_in_lists(nb);
                }
                lanes[lane].a = na;
                lanes[lane].b = nb;
                lanes[lane].rem = rem - 1;
                lane += 1;
            }
        }
    }
    stats
}

/// [`sample_walks_meet`] with a prebuilt [`GeomLenTable`].
pub fn sample_walks_meet_with_table<R: Rng + ?Sized>(
    g: &DiGraph,
    table: &GeomLenTable,
    u: NodeId,
    v: NodeId,
    rng: &mut R,
) -> bool {
    let la = table.len_or_cap(rng);
    let lb = table.len_or_cap(rng);
    let steps = la.min(lb);
    let mut a = u;
    let mut b = v;
    for _ in 0..steps {
        let ins_a = g.in_neighbors(a);
        if ins_a.is_empty() {
            return false;
        }
        a = ins_a[rng.gen_range(0..ins_a.len())];
        let ins_b = g.in_neighbors(b);
        if ins_b.is_empty() {
            return false;
        }
        b = ins_b[rng.gen_range(0..ins_b.len())];
        if a == b {
            return true;
        }
    }
    false
}

/// Where (and whether) a √c-walk terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// The walk terminated at `node` after exactly `level` steps.
    At {
        /// Terminal node `w`.
        node: NodeId,
        /// Number of steps `ℓ` taken before terminating.
        level: u32,
    },
    /// The walk died at a dangling node (survived its flip but had no
    /// in-neighbor to move to) or hit the length cap.
    Died,
}

/// A sampled √c-walk: the sequence of visited nodes plus its terminal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Walk {
    /// Visited nodes `v_0 = source, v_1, …, v_L`; the walk was alive at
    /// step `i` when it occupied `path[i]`.
    pub path: Vec<NodeId>,
    /// How the walk ended.
    pub terminal: Terminal,
}

impl Walk {
    /// The node occupied at step `i`, if the walk lived that long.
    #[inline]
    pub fn at_step(&self, i: usize) -> Option<NodeId> {
        self.path.get(i).copied()
    }

    /// Number of steps the walk stayed alive (`path.len() − 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.path.len() - 1
    }

    /// True iff the walk never left its source.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.path.len() == 1
    }
}

/// Samples a full √c-walk from `source`, recording the visited path.
///
/// `max_len` caps the number of steps as a safety valve; survival past
/// level `L` has probability `(√c)^L`, so a cap of 64 is lossless for all
/// practical purposes (the cap records [`Terminal::Died`]).
pub fn sample_walk<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    source: NodeId,
    max_len: usize,
    rng: &mut R,
) -> Walk {
    let drawn = sample_geometric_len(sqrt_c.ln(), max_len, rng);
    // A capped walk is still alive (and recordable) for max_len steps —
    // it dies at the cap, exactly like the per-step sampler.
    let steps = drawn.unwrap_or(max_len);
    let mut path = Vec::with_capacity(steps.min(8) + 1);
    path.push(source);
    let mut cur = source;
    for _ in 0..steps {
        let ins = g.in_neighbors(cur);
        if ins.is_empty() {
            return Walk {
                path,
                terminal: Terminal::Died,
            };
        }
        cur = ins[rng.gen_range(0..ins.len())];
        path.push(cur);
    }
    match drawn {
        Some(level) => Walk {
            path,
            terminal: Terminal::At {
                node: cur,
                level: level as u32,
            },
        },
        None => Walk {
            path,
            terminal: Terminal::Died,
        },
    }
}

/// Samples only the terminal of a √c-walk (no path allocation) — the
/// fast path used by Algorithm 4 to draw from `π_ℓ(u, ·)`.
pub fn sample_terminal<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    source: NodeId,
    max_len: usize,
    rng: &mut R,
) -> Terminal {
    let Some(len) = sample_geometric_len(sqrt_c.ln(), max_len, rng) else {
        return Terminal::Died;
    };
    let mut cur = source;
    for _ in 0..len {
        let ins = g.in_neighbors(cur);
        if ins.is_empty() {
            return Terminal::Died;
        }
        cur = ins[rng.gen_range(0..ins.len())];
    }
    Terminal::At {
        node: cur,
        level: len as u32,
    }
}

/// The literal per-step transcription of the √c-walk terminal sampler:
/// one termination flip per level. Kept as the reference implementation
/// that [`sample_terminal`]'s geometric-length optimization is validated
/// against (identical terminal distribution, fewer RNG draws); prefer
/// [`sample_terminal`] everywhere else.
pub fn sample_terminal_per_step<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    source: NodeId,
    max_len: usize,
    rng: &mut R,
) -> Terminal {
    let mut cur = source;
    for level in 0..=max_len {
        if rng.gen::<f64>() >= sqrt_c {
            return Terminal::At {
                node: cur,
                level: level as u32,
            };
        }
        let ins = g.in_neighbors(cur);
        if ins.is_empty() || level == max_len {
            return Terminal::Died;
        }
        cur = ins[rng.gen_range(0..ins.len())];
    }
    unreachable!("loop always returns")
}

/// True iff two walks meet at some step `i ≥ min_step` (both alive at the
/// same node at the same step).
pub fn walks_meet(w1: &Walk, w2: &Walk, min_step: usize) -> bool {
    let upto = w1.path.len().min(w2.path.len());
    (min_step..upto).any(|i| w1.path[i] == w2.path[i])
}

/// Samples two √c-walks from `w` and reports whether they meet at some
/// step `i ≥ 1` — the complement of this event has probability `η(w)`,
/// the paper's last-meeting probability (Definition 2.1).
pub fn sample_pair_meets<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    max_len: usize,
    rng: &mut R,
) -> bool {
    sample_walks_meet(g, sqrt_c, w, w, max_len, rng)
}

/// Samples one √c-walk from `u` and one from `v` in lockstep (no paths
/// materialized) and reports whether they meet at some step `i ≥ 1`.
/// With `u == v` this is the `η(w)` complement event of
/// [`sample_pair_meets`]; with `u ≠ v` the meeting probability is
/// `s(u,v)` itself, which makes this the allocation-free single-pair
/// estimator kernel.
pub fn sample_walks_meet<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    u: NodeId,
    v: NodeId,
    max_len: usize,
    rng: &mut R,
) -> bool {
    let ln_sqrt_c = sqrt_c.ln();
    // A capped (None) walk stays alive through step max_len before dying,
    // so within the meeting window it behaves like a max_len-step walk.
    let la = sample_geometric_len(ln_sqrt_c, max_len, rng).unwrap_or(max_len);
    let lb = sample_geometric_len(ln_sqrt_c, max_len, rng).unwrap_or(max_len);
    // Meetings require both walks alive at the same step.
    let steps = la.min(lb);
    let mut a = u;
    let mut b = v;
    for _ in 0..steps {
        let ins_a = g.in_neighbors(a);
        if ins_a.is_empty() {
            return false; // walk a dies mid-flight
        }
        a = ins_a[rng.gen_range(0..ins_a.len())];
        let ins_b = g.in_neighbors(b);
        if ins_b.is_empty() {
            return false;
        }
        b = ins_b[rng.gen_range(0..ins_b.len())];
        if a == b {
            return true;
        }
    }
    false
}

/// Monte-Carlo estimate of the last-meeting probability `η(w)` from `nr`
/// walk pairs. Exposed for tests and for the SLING baseline's
/// preprocessing (which is exactly this, per node).
pub fn estimate_eta<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    nr: usize,
    max_len: usize,
    rng: &mut R,
) -> f64 {
    let mut no_meet = 0usize;
    for _ in 0..nr {
        if !sample_pair_meets(g, sqrt_c, w, max_len, rng) {
            no_meet += 1;
        }
    }
    no_meet as f64 / nr as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SQRT_C: f64 = 0.774_596_669_241_483_4; // sqrt(0.6)

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn walk_on_isolated_node_terminates_or_dies_at_source() {
        let g = prsim_graph::DiGraph::from_edges(1, &[]);
        let mut r = rng();
        for _ in 0..100 {
            let w = sample_walk(&g, SQRT_C, 0, 64, &mut r);
            assert_eq!(w.path, vec![0]);
            match w.terminal {
                Terminal::At { node, level } => {
                    assert_eq!((node, level), (0, 0));
                }
                Terminal::Died => {}
            }
        }
    }

    #[test]
    fn terminal_distribution_on_cycle() {
        // On a directed cycle every node has exactly one in-neighbor, so a
        // walk from 0 terminates at level l at node (0 - l) mod n with
        // probability (√c)^l (1-√c).
        let n = 5usize;
        let g = prsim_gen::toys::cycle(n);
        let mut r = rng();
        let trials = 200_000;
        let mut died = 0usize;
        let mut level_counts = [0usize; 10];
        for _ in 0..trials {
            match sample_terminal(&g, SQRT_C, 0, 64, &mut r) {
                Terminal::At { node, level } => {
                    if (level as usize) < level_counts.len() {
                        level_counts[level as usize] += 1;
                        // Deterministic position on the cycle.
                        let want =
                            ((n as i64 - level as i64 % n as i64) % n as i64) as u32 % n as u32;
                        assert_eq!(node, want, "level {level}");
                    }
                }
                Terminal::Died => died += 1,
            }
        }
        assert_eq!(died, 0, "no dangling nodes on a cycle");
        for (l, &count) in level_counts.iter().enumerate().take(6) {
            let want = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            let got = count as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.01,
                "level {l}: got {got:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn geometric_sampler_matches_per_step_reference() {
        // Satellite determinism test (ii): on a cycle the terminal node is
        // a deterministic function of the level, so matching the per-level
        // distribution of the per-step sampler is matching the full
        // terminal distribution. Two independent seeded streams, same
        // trial count; per-level frequencies must agree within Monte-Carlo
        // noise (~5σ at 120k trials is < 0.006 for p ≤ 0.25).
        let n = 5usize;
        let g = prsim_gen::toys::cycle(n);
        let trials = 120_000;
        let mut geo_counts = [0usize; 8];
        let mut ref_counts = [0usize; 8];
        let mut geo_rng = StdRng::seed_from_u64(0xA11CE);
        let mut ref_rng = StdRng::seed_from_u64(0xB0B);
        for _ in 0..trials {
            if let Terminal::At { node, level } = sample_terminal(&g, SQRT_C, 0, 64, &mut geo_rng) {
                if (level as usize) < geo_counts.len() {
                    geo_counts[level as usize] += 1;
                    let want = ((n as i64 - level as i64 % n as i64) % n as i64) as u32;
                    assert_eq!(node, want, "geometric sampler landed off-cycle");
                }
            }
            if let Terminal::At { level, .. } =
                sample_terminal_per_step(&g, SQRT_C, 0, 64, &mut ref_rng)
            {
                if (level as usize) < ref_counts.len() {
                    ref_counts[level as usize] += 1;
                }
            }
        }
        for l in 0..geo_counts.len() {
            let geo = geo_counts[l] as f64 / trials as f64;
            let per_step = ref_counts[l] as f64 / trials as f64;
            let exact = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            assert!(
                (geo - per_step).abs() < 0.008,
                "level {l}: geometric {geo:.4} vs per-step {per_step:.4}"
            );
            assert!(
                (geo - exact).abs() < 0.008,
                "level {l}: geometric {geo:.4} vs exact {exact:.4}"
            );
        }
    }

    #[test]
    fn geometric_sampler_matches_per_step_death_rate() {
        // Dangling-death semantics must survive the geometric rewrite:
        // walk from 1 on the single edge (0, 1) dies iff its drawn length
        // is >= 2 (it would survive its flip at dangling node 0), which is
        // the same c = √c·√c the per-step sampler produces.
        let g = prsim_graph::DiGraph::from_edges(2, &[(0, 1)]);
        let trials = 100_000;
        let mut geo_died = 0usize;
        let mut ref_died = 0usize;
        let mut geo_rng = StdRng::seed_from_u64(1);
        let mut ref_rng = StdRng::seed_from_u64(2);
        for _ in 0..trials {
            if sample_terminal(&g, SQRT_C, 1, 64, &mut geo_rng) == Terminal::Died {
                geo_died += 1;
            }
            if sample_terminal_per_step(&g, SQRT_C, 1, 64, &mut ref_rng) == Terminal::Died {
                ref_died += 1;
            }
        }
        let geo = geo_died as f64 / trials as f64;
        let per_step = ref_died as f64 / trials as f64;
        assert!(
            (geo - per_step).abs() < 0.01,
            "death rates diverge: geometric {geo:.4} vs per-step {per_step:.4}"
        );
    }

    #[test]
    fn table_sampler_matches_geometric_law() {
        let table = GeomLenTable::new(SQRT_C, 64);
        assert_eq!(table.cap(), 64);
        let trials = 120_000;
        let mut counts = [0usize; 8];
        let mut r = rng();
        for _ in 0..trials {
            if let Some(len) = table.sample_len(&mut r) {
                if len < counts.len() {
                    counts[len] += 1;
                }
            }
        }
        for (l, &count) in counts.iter().enumerate() {
            let want = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            let got = count as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.008,
                "len {l}: table {got:.4} vs geometric {want:.4}"
            );
        }
        // Terminal sampling through the table agrees with the ln path on
        // a deterministic topology.
        let g = prsim_gen::toys::cycle(5);
        let mut meets = 0usize;
        for _ in 0..trials {
            if let Terminal::At { node, level } = sample_terminal_with_table(&g, &table, 0, &mut r)
            {
                let want = ((5i64 - level as i64 % 5) % 5) as u32;
                assert_eq!(node, want);
                meets += 1;
            }
        }
        assert_eq!(meets, trials, "no deaths on a cycle");
    }

    #[test]
    fn table_pair_meets_matches_plain_pair_meets() {
        let g = prsim_gen::toys::star_in(4);
        let table = GeomLenTable::new(SQRT_C, 64);
        let mut r = rng();
        let trials = 100_000;
        let (mut plain, mut tabled) = (0usize, 0usize);
        for _ in 0..trials {
            if sample_pair_meets(&g, SQRT_C, 0, 64, &mut r) {
                plain += 1;
            }
            if sample_walks_meet_with_table(&g, &table, 0, 0, &mut r) {
                tabled += 1;
            }
        }
        let (p, t) = (plain as f64 / trials as f64, tabled as f64 / trials as f64);
        assert!((p - t).abs() < 0.01, "plain {p:.4} vs table {t:.4}");
        assert!((t - 0.2).abs() < 0.01, "hub meet rate must be c/3 = 0.2");
    }

    #[test]
    fn interleaved_terminals_match_sequential_distribution() {
        let n = 5usize;
        let g = prsim_gen::toys::cycle(n);
        let table = GeomLenTable::new(SQRT_C, 64);
        let mut r = rng();
        let trials = 120_000usize;
        let mut out = Vec::new();
        let died = sample_terminals_interleaved(&g, &table, 0, trials, &mut out, &mut r);
        assert_eq!(died + out.len(), trials, "every walk must be accounted for");
        assert_eq!(died, 0, "no dangling nodes on a cycle");
        let mut level_counts = [0usize; 8];
        for &(node, level) in &out {
            let want = ((n as i64 - level as i64 % n as i64) % n as i64) as u32;
            assert_eq!(node, want, "interleaving must not corrupt walk state");
            if (level as usize) < level_counts.len() {
                level_counts[level as usize] += 1;
            }
        }
        for (l, &count) in level_counts.iter().enumerate() {
            let want = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            let got = count as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.008,
                "level {l}: interleaved {got:.4} vs geometric {want:.4}"
            );
        }
        // Empty batch and dangling source behave.
        out.clear();
        assert_eq!(
            sample_terminals_interleaved(&g, &table, 0, 0, &mut out, &mut r),
            0
        );
        assert!(out.is_empty());
        let lonely = prsim_graph::DiGraph::from_edges(1, &[]);
        out.clear();
        let died = sample_terminals_interleaved(&lonely, &table, 0, 10_000, &mut out, &mut r);
        assert!(out.iter().all(|&(node, level)| node == 0 && level == 0));
        assert_eq!(died + out.len(), 10_000);
    }

    #[test]
    fn fused_terminal_eta_sampler_matches_separate_phases() {
        // On a cycle the terminal node is a deterministic function of the
        // level and both η walks move in lockstep through the unique
        // in-neighbor, so they meet iff both survive step 1: P(met) = c.
        let n = 5usize;
        let g = prsim_gen::toys::cycle(n);
        let table = GeomLenTable::new(SQRT_C, 64);
        let mut r = rng();
        let trials = 120_000usize;
        let mut out = Vec::new();
        let died = sample_terminals_with_eta_interleaved(&g, &table, 0, trials, &mut out, &mut r);
        assert_eq!(died + out.len(), trials, "every walk must be accounted for");
        assert_eq!(died, 0, "no dangling nodes on a cycle");
        let mut level_counts = [0usize; 8];
        let mut met = 0usize;
        for &(node, level, m) in &out {
            let want = ((n as i64 - level as i64 % n as i64) % n as i64) as u32;
            assert_eq!(node, want, "fused scheduler must not corrupt walk state");
            if (level as usize) < level_counts.len() {
                level_counts[level as usize] += 1;
            }
            met += m as usize;
        }
        for (l, &count) in level_counts.iter().enumerate() {
            let want = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            let got = count as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.008,
                "level {l}: fused {got:.4} vs geometric {want:.4}"
            );
        }
        let met_rate = met as f64 / out.len() as f64;
        assert!(
            (met_rate - 0.6).abs() < 0.008,
            "lockstep meet rate {met_rate:.4}, want c = 0.6"
        );
        // Dangling source: all terminals are level-0 (or died), none meet.
        let lonely = prsim_graph::DiGraph::from_edges(1, &[]);
        out.clear();
        let died =
            sample_terminals_with_eta_interleaved(&lonely, &table, 0, 10_000, &mut out, &mut r);
        assert!(out
            .iter()
            .all(|&(node, level, m)| node == 0 && level == 0 && !m));
        assert_eq!(died + out.len(), 10_000);
    }

    #[test]
    fn interleaved_pair_meets_match_sequential_rate() {
        // star_in hub: both walks survive step 1 w.p. c and pick among 3
        // leaves — meet probability c/3 = 0.2.
        let g = prsim_gen::toys::star_in(4);
        let table = GeomLenTable::new(SQRT_C, 64);
        let mut r = rng();
        let trials = 100_000usize;
        let pairs = vec![(0u32, 0u32); trials];
        let mut met = Vec::new();
        sample_pairs_meet_interleaved(&g, &table, &pairs, &mut met, &mut r);
        assert_eq!(met.len(), trials);
        let rate = met.iter().filter(|&&m| m).count() as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.01, "interleaved meet rate {rate:.4}");
        // Distinct sources: s(1,2) on star_out is c.
        let g = prsim_gen::toys::star_out(6);
        let pairs = vec![(1u32, 2u32); trials];
        sample_pairs_meet_interleaved(&g, &table, &pairs, &mut met, &mut r);
        let rate = met.iter().filter(|&&m| m).count() as f64 / trials as f64;
        assert!((rate - 0.6).abs() < 0.01, "two-source meet rate {rate:.4}");
    }

    #[test]
    fn two_source_meeting_rate_is_simrank() {
        // star_out leaves share the hub as their only in-neighbor:
        // s(1,2) = c. The path-free two-source kernel must reproduce it.
        let g = prsim_gen::toys::star_out(6);
        let mut r = rng();
        let trials = 100_000;
        let mut meets = 0usize;
        for _ in 0..trials {
            if sample_walks_meet(&g, SQRT_C, 1, 2, 64, &mut r) {
                meets += 1;
            }
        }
        let got = meets as f64 / trials as f64;
        assert!((got - 0.6).abs() < 0.01, "meet rate {got:.4}, want 0.6");
    }

    #[test]
    fn dangling_death_probability() {
        // Path 0 <- nothing; walk from 1 on edge (0, 1): from 1 moves to 0
        // w.p. √c, then 0 has no in-neighbor: dies w.p. √c there.
        let g = prsim_graph::DiGraph::from_edges(2, &[(0, 1)]);
        let mut r = rng();
        let trials = 100_000;
        let mut died = 0usize;
        for _ in 0..trials {
            if sample_terminal(&g, SQRT_C, 1, 64, &mut r) == Terminal::Died {
                died += 1;
            }
        }
        let want = SQRT_C * SQRT_C; // survive at 1, then survive at 0
        let got = died as f64 / trials as f64;
        assert!((got - want).abs() < 0.01, "died {got:.4}, want {want:.4}");
    }

    #[test]
    fn walk_path_never_exceeds_cap() {
        let g = prsim_gen::toys::cycle(3);
        let mut r = rng();
        for _ in 0..1000 {
            let w = sample_walk(&g, 0.99, 0, 16, &mut r);
            assert!(w.len() <= 16);
            if w.len() == 16 {
                // Hitting the cap exactly can be either a flip termination
                // at step 16 or a Died cap record; both are acceptable.
            }
        }
    }

    #[test]
    fn meeting_requires_same_step() {
        let w1 = Walk {
            path: vec![0, 1, 2],
            terminal: Terminal::Died,
        };
        let w2 = Walk {
            path: vec![3, 2, 1],
            terminal: Terminal::Died,
        };
        // They cross but never occupy the same node at the same step.
        assert!(!walks_meet(&w1, &w2, 1));
        let w3 = Walk {
            path: vec![3, 1],
            terminal: Terminal::Died,
        };
        assert!(walks_meet(&w1, &w3, 1));
        // Step 0 ignored when min_step = 1.
        let w4 = Walk {
            path: vec![0, 5],
            terminal: Terminal::Died,
        };
        assert!(!walks_meet(&w1, &w4, 1));
        assert!(walks_meet(&w1, &w4, 0));
    }

    #[test]
    fn eta_is_one_on_a_path_graph() {
        // On 0 -> 1 -> 2 (edges (0,1),(1,2)), in-neighbors are unique, so
        // two walks from any node move in lockstep deterministically...
        // they'd always meet. Instead check the star: leaves have a single
        // in-path of length 0 (no in-neighbors) so walks from the hub can
        // only meet at a leaf.
        let g = prsim_gen::toys::star_in(4); // leaves 1..3 point at hub 0
        let mut r = rng();
        // From a leaf: no in-neighbors, walks never move, never meet: η=1.
        let eta_leaf = estimate_eta(&g, SQRT_C, 1, 20_000, 64, &mut r);
        assert!((eta_leaf - 1.0).abs() < 1e-9);
        // From the hub: both walks survive their flips w.p. c and then
        // pick among 3 leaves; meeting prob = c/3.
        let eta_hub = estimate_eta(&g, SQRT_C, 0, 100_000, 64, &mut r);
        let want = 1.0 - 0.6 / 3.0;
        assert!(
            (eta_hub - want).abs() < 0.01,
            "eta {eta_hub:.4}, want {want:.4}"
        );
    }

    #[test]
    fn wavefront_terminals_match_sequential_distribution() {
        let n = 5usize;
        let g = prsim_gen::toys::cycle(n);
        let table = GeomLenTable::new(SQRT_C, 64);
        let mut r = rng();
        let trials = 120_000usize;
        let mut out = Vec::new();
        let mut ws = WaveScratch::new();
        let stats = sample_terminals_wavefront(
            &g,
            &table,
            0,
            trials,
            &mut NoDraws,
            &mut out,
            &mut ws,
            &mut r,
        );
        assert_eq!(
            stats.died + out.len(),
            trials,
            "every walk must be accounted for"
        );
        assert_eq!(stats.died, 0, "no dangling nodes on a cycle");
        assert_eq!(stats.cache_hits, 0, "NoDraws never hits");
        assert!(stats.peak_frontier > 0 && stats.peak_frontier <= trials);
        let mut level_counts = [0usize; 8];
        for &(node, level) in &out {
            let want = ((n as i64 - level as i64 % n as i64) % n as i64) as u32;
            assert_eq!(node, want, "wavefront must not corrupt walk state");
            if (level as usize) < level_counts.len() {
                level_counts[level as usize] += 1;
            }
        }
        for (l, &count) in level_counts.iter().enumerate() {
            let want = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            let got = count as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.008,
                "level {l}: wavefront {got:.4} vs geometric {want:.4}"
            );
        }
        // Empty batch and dangling source behave.
        out.clear();
        let stats =
            sample_terminals_wavefront(&g, &table, 0, 0, &mut NoDraws, &mut out, &mut ws, &mut r);
        assert_eq!(stats.died, 0);
        assert!(out.is_empty());
        let lonely = prsim_graph::DiGraph::from_edges(1, &[]);
        out.clear();
        let stats = sample_terminals_wavefront(
            &lonely,
            &table,
            0,
            10_000,
            &mut NoDraws,
            &mut out,
            &mut ws,
            &mut r,
        );
        assert!(out.iter().all(|&(node, level)| node == 0 && level == 0));
        assert_eq!(stats.died + out.len(), 10_000);
    }

    #[test]
    fn wavefront_terminals_deterministic_for_fixed_seed() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 5.0, 2.0, 3));
        let table = GeomLenTable::new(SQRT_C, 64);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut ws = WaveScratch::new();
        let sa = sample_terminals_wavefront(
            &g,
            &table,
            7,
            5_000,
            &mut NoDraws,
            &mut a,
            &mut ws,
            &mut StdRng::seed_from_u64(5),
        );
        // A reused scratch must not leak state into the next run.
        let sb = sample_terminals_wavefront(
            &g,
            &table,
            7,
            5_000,
            &mut NoDraws,
            &mut b,
            &mut ws,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(a, b, "same seed, same retirement order");
        assert_eq!(sa.died, sb.died);
        assert_eq!(sa.peak_frontier, sb.peak_frontier);
    }

    #[test]
    fn wavefront_pairs_match_sequential_rate() {
        // star_in hub: both walks survive step 1 w.p. c and pick among 3
        // leaves — meet probability c/3 = 0.2.
        let g = prsim_gen::toys::star_in(4);
        let table = GeomLenTable::new(SQRT_C, 64);
        let mut r = rng();
        let trials = 100_000usize;
        let pairs = vec![(0u32, 0u32); trials];
        let mut met = Vec::new();
        let mut ws = WaveScratch::new();
        sample_pairs_meet_wavefront(&g, &table, &pairs, &mut met, &mut ws, &mut r);
        assert_eq!(met.len(), trials);
        let rate = met.iter().filter(|&&m| m).count() as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.01, "wavefront meet rate {rate:.4}");
        // Distinct sources: s(1,2) on star_out is c.
        let g = prsim_gen::toys::star_out(6);
        let pairs = vec![(1u32, 2u32); trials];
        sample_pairs_meet_wavefront(&g, &table, &pairs, &mut met, &mut ws, &mut r);
        let rate = met.iter().filter(|&&m| m).count() as f64 / trials as f64;
        assert!((rate - 0.6).abs() < 0.01, "two-source meet rate {rate:.4}");
        // Empty batch.
        sample_pairs_meet_wavefront(&g, &table, &[], &mut met, &mut ws, &mut r);
        assert!(met.is_empty());
    }

    #[test]
    fn fused_walk_phase_drops_diagonal_and_keeps_the_law() {
        // On a cycle the terminal node is a deterministic function of the
        // level and both η walks move in lockstep, meeting iff both
        // survive step 1 (P = c). The engine kernel drops level-0
        // (diagonal-only) samples; everything else must keep the
        // geometric law conditional on level ≥ 1.
        let n = 5usize;
        let g = prsim_gen::toys::cycle(n);
        let table = GeomLenTable::new(SQRT_C, 64);
        let mut r = rng();
        let trials = 120_000usize;
        let mut out = Vec::new();
        let stats =
            sample_walk_phase_interleaved(&g, &table, 0, trials, &mut NoDraws, &mut out, &mut r);
        assert_eq!(
            stats.died + stats.diagonal + out.len(),
            trials,
            "every walk must be accounted for"
        );
        assert_eq!(stats.died, 0, "no dangling nodes on a cycle");
        assert_eq!(stats.cache_hits, 0);
        let diag_rate = stats.diagonal as f64 / trials as f64;
        assert!(
            (diag_rate - (1.0 - SQRT_C)).abs() < 0.008,
            "diagonal (level-0) rate {diag_rate:.4}, want 1-sqrt(c)"
        );
        let mut level_counts = [0usize; 8];
        let mut met = 0usize;
        for &(node, level, m) in &out {
            assert!(level >= 1, "level-0 samples must be dropped");
            let want = ((n as i64 - level as i64 % n as i64) % n as i64) as u32;
            assert_eq!(node, want, "fused kernel must not corrupt walk state");
            if (level as usize) < level_counts.len() {
                level_counts[level as usize] += 1;
            }
            met += m as usize;
        }
        for (l, &count) in level_counts.iter().enumerate().skip(1) {
            let want = SQRT_C.powi(l as i32) * (1.0 - SQRT_C);
            let got = count as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.008,
                "level {l}: fused {got:.4} vs geometric {want:.4}"
            );
        }
        let met_rate = met as f64 / out.len() as f64;
        assert!(
            (met_rate - 0.6).abs() < 0.008,
            "lockstep meet rate {met_rate:.4}, want c = 0.6"
        );
        // Dangling source: level-0 dropped, the rest die.
        let lonely = prsim_graph::DiGraph::from_edges(1, &[]);
        out.clear();
        let stats = sample_walk_phase_interleaved(
            &lonely,
            &table,
            0,
            10_000,
            &mut NoDraws,
            &mut out,
            &mut r,
        );
        assert!(out.is_empty());
        assert_eq!(stats.died + stats.diagonal, 10_000);
    }

    #[test]
    fn len_or_cap_matches_per_step_at_the_cap() {
        // Satellite pin: with a tiny cap the truncation path fires
        // constantly; P(len_or_cap = k) must match what the per-step
        // sampler realizes one flip at a time, where "reaching the cap"
        // aggregates terminate-at-cap and die-at-cap — exactly the
        // len-or-cap convention. Exact law: P(k) = (√c)^k(1−√c) for
        // k < cap, P(cap) = (√c)^cap.
        const CAP: usize = 3;
        let table = GeomLenTable::new(SQRT_C, CAP);
        let trials = 200_000usize;
        let mut table_counts = [0usize; CAP + 1];
        let mut step_counts = [0usize; CAP + 1];
        let mut tr = StdRng::seed_from_u64(0x11);
        let mut sr = StdRng::seed_from_u64(0x22);
        for _ in 0..trials {
            let k = table.len_or_cap(&mut tr);
            assert!(k <= CAP, "len_or_cap must never exceed the cap");
            table_counts[k] += 1;
            // Per-step reference: flip survival coins until a flip fails
            // or the cap is reached.
            let mut steps = 0usize;
            while steps < CAP && sr.gen::<f64>() < SQRT_C {
                steps += 1;
            }
            step_counts[steps] += 1;
        }
        for k in 0..=CAP {
            let exact = if k < CAP {
                SQRT_C.powi(k as i32) * (1.0 - SQRT_C)
            } else {
                SQRT_C.powi(CAP as i32)
            };
            let t = table_counts[k] as f64 / trials as f64;
            let s = step_counts[k] as f64 / trials as f64;
            assert!(
                (t - exact).abs() < 0.006,
                "k = {k}: len_or_cap {t:.4} vs exact {exact:.4}"
            );
            assert!(
                (t - s).abs() < 0.008,
                "k = {k}: len_or_cap {t:.4} vs per-step {s:.4}"
            );
        }
    }

    #[test]
    fn pair_meeting_on_two_triangles_never_crosses_components() {
        let g = prsim_gen::toys::two_triangles();
        let mut r = rng();
        // Walks from 0 stay in {0,1,2}: meeting of walks from 0 and from 3
        // is impossible; here we just verify sample_pair_meets from one
        // component is deterministic-safe (single in-neighbor: always meet
        // when both survive).
        let mut meets = 0;
        let trials = 50_000;
        for _ in 0..trials {
            if sample_pair_meets(&g, SQRT_C, 0, 64, &mut r) {
                meets += 1;
            }
        }
        // Both survive the first flip w.p. c and then deterministically
        // land on the same unique in-neighbor: meet prob = c + c²(...)
        // — at every step both-alive implies same node, so meet prob is
        // just P(both survive step 1) = c.
        let got = meets as f64 / trials as f64;
        assert!((got - 0.6).abs() < 0.01, "meet rate {got:.4}, want 0.6");
    }
}
