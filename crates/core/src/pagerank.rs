//! Reverse PageRank and ℓ-hop reverse personalized PageRank (RPPR).
//!
//! The reverse PageRank `π(w)` (paper §2) is the probability that a
//! √c-walk from a *uniformly random* source terminates at `w`; it equals
//! ordinary PageRank with damping `√c` on the transposed graph. The hub
//! selection of Algorithm 1, the complexity bounds of Theorems 3.11/3.12
//! and the second-moment hardness measure `Σ_w π(w)²` all live here.

use prsim_graph::{DiGraph, NodeId};
use rand::Rng;
use std::collections::HashMap;

use crate::walk::{sample_terminal, Terminal};

/// Computes the reverse PageRank vector `π` by forward propagation of the
/// walk-occupancy distribution (exact up to the truncation tolerance).
///
/// Iteration: let `p_t(x)` be the probability that a √c-walk from a
/// uniform source is alive at step `t` at node `x`. Then
/// `π(w) = (1−√c)·Σ_t p_t(w)` and
/// `p_{t+1}(z) = √c · Σ_{x ∈ O(z)} p_t(x)/d_in(x)` (the walk moves from
/// `x` to one of its in-neighbors, i.e. `z` receives from nodes `x` it
/// points to). Mass that survives its flip at a dangling node dies, which
/// is why `Σ_w π(w) ≤ 1` with equality iff no dangling node is reachable.
///
/// Stops when the total live mass drops below `tol` or after `max_iter`
/// levels. With survival rate `√c`, live mass at level `t` is at most
/// `(√c)^t`, so `max_iter = log(tol)/log(√c)` always suffices.
pub fn reverse_pagerank(g: &DiGraph, sqrt_c: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let alpha = 1.0 - sqrt_c;
    let mut p = vec![1.0 / n as f64; n];
    let mut pi = vec![0.0; n];
    let mut next = vec![0.0; n];
    for _ in 0..max_iter {
        let mut live = 0.0;
        for x in 0..n {
            let mass = p[x];
            if mass == 0.0 {
                continue;
            }
            pi[x] += alpha * mass;
            let moving = sqrt_c * mass;
            let ins = g.in_neighbors(x as NodeId);
            if ins.is_empty() {
                continue; // dangling: moving mass dies
            }
            let share = moving / ins.len() as f64;
            for &z in ins {
                next[z as usize] += share;
                live += share;
            }
        }
        std::mem::swap(&mut p, &mut next);
        next.iter_mut().for_each(|x| *x = 0.0);
        if live < tol {
            break;
        }
    }
    // Flush whatever live mass remains (truncation-level termination).
    for x in 0..n {
        pi[x] += alpha * p[x];
    }
    pi
}

/// Outcome of a warm-start reverse-PageRank refinement.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefineOutcome {
    /// Richardson iterations performed.
    pub iterations: usize,
    /// L1 norm of the residual before any iteration (how stale the
    /// warm-start vector was).
    pub initial_residual: f64,
    /// L1 norm of the residual when iteration stopped.
    pub final_residual: f64,
    /// Total L1 mass moved in `π` by this refinement — the drift signal
    /// the dynamic engine accumulates against its rebuild budget.
    pub l1_change: f64,
}

/// Refines a reverse-PageRank vector in place toward the exact solution
/// for the (possibly mutated) graph `g`, warm-starting from the previous
/// vector.
///
/// The exact vector solves the linear system `π/α = p₀ + A·(π/α)` where
/// `p₀` is uniform `1/n` and `(A·x)(z) = √c · Σ_{v ∈ O(z)} x(v)/d_in(v)`
/// (the occupancy-propagation operator of [`reverse_pagerank`], whose L1
/// operator norm is at most `√c`). Refinement is Richardson iteration on
/// the *residual*: with `g = π/α` and `r = p₀ + A·g − g`, repeatedly
/// `g += r; r ← A·r` until `‖r‖₁ < tol`. Each step contracts the
/// residual by `√c`, so after `k` edge updates the warm start converges
/// in `O(log(‖r₀‖/tol))` iterations — `‖r₀‖` is tiny when few edges
/// changed, which is the whole point.
///
/// `pi` is resized (with zeros) when `g` has grown new nodes. Passing an
/// all-zero vector computes the PageRank from scratch, which is how the
/// equivalence tests pin this against [`reverse_pagerank`].
pub fn refine_reverse_pagerank(
    g: &DiGraph,
    sqrt_c: f64,
    tol: f64,
    max_iter: usize,
    pi: &mut Vec<f64>,
) -> RefineOutcome {
    let n = g.node_count();
    pi.resize(n, 0.0);
    if n == 0 {
        return RefineOutcome::default();
    }
    let alpha = 1.0 - sqrt_c;
    let inv_n = 1.0 / n as f64;

    // Occupancy g = π/α and per-node x/d_in scratch.
    let mut occ: Vec<f64> = pi.iter().map(|&x| x / alpha).collect();
    let mut scaled: Vec<f64> = vec![0.0; n];
    let in_degrees = g.in_degrees();

    // (A·x)(z) = √c Σ_{v ∈ O(z)} x(v)/d_in(v), reading `scaled[v]`.
    let apply = |scaled: &[f64], out: &mut Vec<f64>| {
        out.clear();
        for z in 0..n as NodeId {
            let mut acc = 0.0;
            for &v in g.out_neighbors(z) {
                acc += scaled[v as usize];
            }
            out.push(sqrt_c * acc);
        }
    };

    // r = p0 + A·occ − occ.
    for (slot, (&x, &d)) in scaled.iter_mut().zip(occ.iter().zip(in_degrees)) {
        *slot = if d == 0 { 0.0 } else { x / d as f64 };
    }
    let mut r: Vec<f64> = Vec::with_capacity(n);
    apply(&scaled, &mut r);
    for (slot, &x) in r.iter_mut().zip(occ.iter()) {
        *slot += inv_n - x;
    }

    let mut outcome = RefineOutcome {
        initial_residual: r.iter().map(|x| x.abs()).sum(),
        ..Default::default()
    };
    let mut residual_l1 = outcome.initial_residual;
    let mut next_r: Vec<f64> = Vec::with_capacity(n);
    while residual_l1 >= tol && outcome.iterations < max_iter {
        outcome.iterations += 1;
        outcome.l1_change += alpha * residual_l1;
        for v in 0..n {
            occ[v] += r[v];
            let d = in_degrees[v];
            scaled[v] = if d == 0 { 0.0 } else { r[v] / d as f64 };
        }
        apply(&scaled, &mut next_r);
        std::mem::swap(&mut r, &mut next_r);
        residual_l1 = r.iter().map(|x| x.abs()).sum();
    }
    outcome.final_residual = residual_l1;

    for (slot, &o) in pi.iter_mut().zip(occ.iter()) {
        *slot = alpha * o;
    }
    outcome
}

/// Monte-Carlo estimate of reverse PageRank from `nr` walks per the
/// definition — used to cross-validate [`reverse_pagerank`] in tests.
pub fn reverse_pagerank_monte_carlo<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    nr: usize,
    max_len: usize,
    rng: &mut R,
) -> Vec<f64> {
    let n = g.node_count();
    let mut counts = vec![0usize; n];
    for _ in 0..nr {
        let src = rng.gen_range(0..n) as NodeId;
        if let Terminal::At { node, .. } = sample_terminal(g, sqrt_c, src, max_len, rng) {
            counts[node as usize] += 1;
        }
    }
    counts.into_iter().map(|c| c as f64 / nr as f64).collect()
}

/// Exact ℓ-hop RPPR `π_ℓ(·, w)` *to* a fixed target `w` for all sources,
/// by dense level-wise propagation of Eq. (3):
/// `π_{ℓ+1}(y,w) = Σ_{x ∈ I(y)} √c/d_in(y) · π_ℓ(x,w)`.
///
/// Returns `table[ℓ][v] = π_ℓ(v, w)` for `ℓ = 0..=levels`. Cost is
/// `O(levels · m)` — this is the brute-force oracle the backward-walk
/// estimators are tested against; production code uses
/// [`crate::backward`] / [`crate::vbbw`].
pub fn exact_lhop_rppr_to(g: &DiGraph, sqrt_c: f64, w: NodeId, levels: usize) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let alpha = 1.0 - sqrt_c;
    // h[ℓ][v] = Pr[walk from v is alive at step ℓ at w]; π_ℓ = α·h_ℓ.
    let mut h = vec![0.0; n];
    h[w as usize] = 1.0;
    let mut out = Vec::with_capacity(levels + 1);
    out.push(h.iter().map(|&x| alpha * x).collect::<Vec<_>>());
    for _ in 0..levels {
        let mut nh = vec![0.0; n];
        for (y, slot) in nh.iter_mut().enumerate() {
            let din = g.in_degree(y as NodeId);
            if din == 0 {
                continue;
            }
            let mut acc = 0.0;
            for &x in g.in_neighbors(y as NodeId) {
                acc += h[x as usize];
            }
            *slot = sqrt_c * acc / din as f64;
        }
        h = nh;
        out.push(h.iter().map(|&x| alpha * x).collect::<Vec<_>>());
    }
    out
}

/// Second moment `Σ_w π(w)²` of a reverse-PageRank vector — the paper's
/// hardness measure for SimRank computation (Theorem 3.11).
pub fn second_moment(pi: &[f64]) -> f64 {
    pi.iter().map(|&x| x * x).sum()
}

/// Returns node ids sorted by descending reverse PageRank (ties broken by
/// node id for determinism) — the hub order of Algorithm 1.
pub fn rank_by_pagerank(pi: &[f64]) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..pi.len() as NodeId).collect();
    order.sort_by(|&a, &b| {
        pi[b as usize]
            .partial_cmp(&pi[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Exact single-source RPPR distribution `π_ℓ(u, ·)` *from* a fixed source
/// as a sparse per-level map — the forward analogue of
/// [`exact_lhop_rppr_to`], used by tests of the η·π estimator.
pub fn exact_lhop_rppr_from(
    g: &DiGraph,
    sqrt_c: f64,
    u: NodeId,
    levels: usize,
) -> Vec<HashMap<NodeId, f64>> {
    let alpha = 1.0 - sqrt_c;
    // occupancy[x] = Pr[walk alive at current step at x]
    let mut occ: HashMap<NodeId, f64> = HashMap::new();
    occ.insert(u, 1.0);
    let mut out = Vec::with_capacity(levels + 1);
    out.push(occ.iter().map(|(&k, &v)| (k, alpha * v)).collect());
    for _ in 0..levels {
        let mut next: HashMap<NodeId, f64> = HashMap::new();
        for (&x, &mass) in &occ {
            let ins = g.in_neighbors(x);
            if ins.is_empty() {
                continue;
            }
            let share = sqrt_c * mass / ins.len() as f64;
            for &z in ins {
                *next.entry(z).or_insert(0.0) += share;
            }
        }
        occ = next;
        out.push(occ.iter().map(|(&k, &v)| (k, alpha * v)).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SQRT_C: f64 = 0.774_596_669_241_483_4;

    #[test]
    fn pagerank_uniform_on_cycle() {
        let g = prsim_gen::toys::cycle(6);
        let pi = reverse_pagerank(&g, SQRT_C, 1e-12, 200);
        for &x in &pi {
            assert!(
                (x - 1.0 / 6.0).abs() < 1e-9,
                "cycle should be uniform, got {x}"
            );
        }
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_sums_below_one_with_dangling() {
        // star_in: hub 0 has in-degree n-1; leaves dangling.
        let g = prsim_gen::toys::star_in(5);
        let pi = reverse_pagerank(&g, SQRT_C, 1e-12, 200);
        let total: f64 = pi.iter().sum();
        assert!(
            total < 1.0,
            "dangling death should lose mass, total = {total}"
        );
        // Exact: walk from hub: terminates at hub w.p. 1-√c, else moves to
        // a leaf and terminates there w.p. 1-√c (or dies).
        // π(hub) = (1/5)(1-√c). π(leaf ℓ) = (1/5)[(1-√c)          (start there)
        //   + √c·(1/4)·(1-√c)]                                     (from hub)
        let alpha = 1.0 - SQRT_C;
        assert!((pi[0] - alpha / 5.0).abs() < 1e-9);
        let want = (alpha + SQRT_C * alpha / 4.0) / 5.0;
        for &leaf_pi in &pi[1..5] {
            assert!((leaf_pi - want).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_matches_monte_carlo() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(300, 6.0, 2.0, 5));
        let exact = reverse_pagerank(&g, SQRT_C, 1e-12, 200);
        let mut rng = StdRng::seed_from_u64(9);
        let mc = reverse_pagerank_monte_carlo(&g, SQRT_C, 2_000_000, 64, &mut rng);
        // Compare the head (largest values) within generous MC tolerance.
        let order = rank_by_pagerank(&exact);
        for &w in order.iter().take(10) {
            let e = exact[w as usize];
            let m = mc[w as usize];
            assert!(
                (e - m).abs() < 0.1 * e + 5e-4,
                "node {w}: exact {e:.5} vs mc {m:.5}"
            );
        }
    }

    #[test]
    fn refine_from_zero_matches_direct_computation() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(150, 5.0, 2.0, 21));
        let direct = reverse_pagerank(&g, SQRT_C, 1e-12, 300);
        let mut pi = Vec::new();
        let out = refine_reverse_pagerank(&g, SQRT_C, 1e-12, 300, &mut pi);
        assert!(out.iterations > 0);
        assert!(out.final_residual < 1e-12);
        for (v, (&a, &b)) in direct.iter().zip(pi.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "node {v}: {a} vs {b}");
        }
    }

    #[test]
    fn warm_refine_tracks_edge_updates_cheaply() {
        use prsim_graph::delta::DeltaGraph;
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(200, 6.0, 2.0, 22));
        let mut pi = reverse_pagerank(&g, SQRT_C, 1e-12, 300);

        let mut d = DeltaGraph::new(g);
        let (du, dv) = d.edges().next().unwrap();
        assert!(d.delete_edge(du, dv));
        assert!(d.insert_edge(0, 190));
        let g2 = d.snapshot();

        let fresh = reverse_pagerank(&g2, SQRT_C, 1e-12, 300);
        let mut cold = Vec::new();
        let cold_out = refine_reverse_pagerank(&g2, SQRT_C, 1e-10, 300, &mut cold);
        let warm_out = refine_reverse_pagerank(&g2, SQRT_C, 1e-10, 300, &mut pi);

        for (v, (&a, &b)) in fresh.iter().zip(pi.iter()).enumerate() {
            assert!((a - b).abs() < 1e-8, "node {v}: fresh {a} vs warm {b}");
        }
        // Warm start must start much closer (and so converge in fewer
        // iterations) than the cold solve.
        assert!(warm_out.initial_residual < 0.1 * cold_out.initial_residual);
        assert!(warm_out.iterations < cold_out.iterations);
        assert!(warm_out.l1_change < 0.1, "two edits move little mass");
    }

    #[test]
    fn refine_grows_with_node_universe() {
        use prsim_graph::delta::DeltaGraph;
        let g = prsim_gen::toys::cycle(5);
        let mut pi = reverse_pagerank(&g, SQRT_C, 1e-12, 200);
        let mut d = DeltaGraph::new(g);
        assert!(d.insert_edge(4, 9)); // grows n to 10
        let g2 = d.snapshot();
        refine_reverse_pagerank(&g2, SQRT_C, 1e-12, 300, &mut pi);
        let fresh = reverse_pagerank(&g2, SQRT_C, 1e-12, 300);
        assert_eq!(pi.len(), 10);
        for (v, (&a, &b)) in fresh.iter().zip(pi.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "node {v}: {a} vs {b}");
        }
    }

    #[test]
    fn refine_empty_graph_is_a_noop() {
        let g = prsim_graph::DiGraph::from_edges(0, &[]);
        let mut pi = Vec::new();
        let out = refine_reverse_pagerank(&g, SQRT_C, 1e-9, 10, &mut pi);
        assert!(pi.is_empty());
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn lhop_rppr_to_matches_hand_computation_on_path() {
        // Graph 0 -> 1 -> 2. Walks move along in-edges: from 2 to 1 to 0.
        let g = prsim_gen::toys::path(3);
        let alpha = 1.0 - SQRT_C;
        let table = exact_lhop_rppr_to(&g, SQRT_C, 0, 3);
        // π_0(0,0) = α; π_1(1,0) = α√c; π_2(2,0) = α·c.
        assert!((table[0][0] - alpha).abs() < 1e-12);
        assert!((table[1][1] - alpha * SQRT_C).abs() < 1e-12);
        assert!((table[2][2] - alpha * SQRT_C * SQRT_C).abs() < 1e-12);
        // Everything else at those levels is zero.
        assert_eq!(table[0][1], 0.0);
        assert_eq!(table[1][0], 0.0);
        assert_eq!(table[2][0], 0.0);
    }

    #[test]
    fn lhop_sums_equal_n_pi() {
        // Σ_ℓ Σ_v π_ℓ(v,w) = n·π(w) (paper Eq. 4).
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 3));
        let n = g.node_count();
        let pi = reverse_pagerank(&g, SQRT_C, 1e-14, 300);
        for w in [0u32, 5, 77] {
            let table = exact_lhop_rppr_to(&g, SQRT_C, w, 200);
            let total: f64 = table.iter().flat_map(|lv| lv.iter()).sum();
            let want = n as f64 * pi[w as usize];
            assert!(
                (total - want).abs() < 1e-6,
                "node {w}: Σπ_ℓ = {total:.8} vs n·π = {want:.8}"
            );
        }
    }

    #[test]
    fn forward_and_backward_lhop_agree() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(80, 4.0, 2.0, 8));
        let levels = 12;
        let from = exact_lhop_rppr_from(&g, SQRT_C, 3, levels);
        for w in [0u32, 7, 40] {
            let to = exact_lhop_rppr_to(&g, SQRT_C, w, levels);
            for l in 0..=levels {
                let f = from[l].get(&w).copied().unwrap_or(0.0);
                let t = to[l][3];
                assert!((f - t).abs() < 1e-12, "π_{l}(3,{w}) mismatch: {f} vs {t}");
            }
        }
    }

    #[test]
    fn forward_levels_sum_to_at_most_one() {
        let g =
            prsim_gen::chung_lu_directed(prsim_gen::ChungLuConfig::new(100, 5.0, 1.8, 2), 2.2, 3);
        let from = exact_lhop_rppr_from(&g, SQRT_C, 10, 100);
        let total: f64 = from.iter().flat_map(|m| m.values()).sum();
        assert!(total <= 1.0 + 1e-9, "probability mass {total} exceeds 1");
        assert!(total > 0.2, "walk must terminate somewhere: {total}");
    }

    #[test]
    fn second_moment_bounds() {
        // Uniform distribution minimizes the second moment at 1/n.
        let uni = vec![0.25; 4];
        assert!((second_moment(&uni) - 0.25).abs() < 1e-12);
        let point = vec![1.0, 0.0, 0.0, 0.0];
        assert!((second_moment(&point) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_deterministic_and_descending() {
        let pi = vec![0.1, 0.5, 0.5, 0.2];
        let order = rank_by_pagerank(&pi);
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn empty_graph_pagerank() {
        let g = prsim_graph::DiGraph::from_edges(0, &[]);
        assert!(reverse_pagerank(&g, SQRT_C, 1e-9, 10).is_empty());
    }
}
