//! Backward walks: randomized, unbiased ℓ-hop RPPR estimators.
//!
//! Paper §3.4. Both algorithms estimate `π_ℓ(v, w)` for **all** `v`
//! simultaneously in `O(n·π(w))` expected time, exploiting the out-lists
//! sorted by in-degree (they only scan the prefix of each list that can
//! receive mass):
//!
//! * [`simple_backward_walk`] — Algorithm 2. Unbiased, optimal expected
//!   cost, but the estimator can reach `(1−√c)·n` on the two-level gadget
//!   (`prsim_gen::toys::two_level_gadget`) and its variance is
//!   unbounded, so no concentration bound applies.
//! * [`variance_bounded_backward_walk`] — Algorithm 3. Same unbiasedness
//!   and cost, plus `Var[π̂_ℓ(v,w)] ≤ π_ℓ(v,w)` (Lemma 3.5), which lets
//!   Algorithm 4 apply Chebyshev + the median trick.
//!
//! Both algorithms run on [`BackwardWorkspace`] reusable frontiers
//! (coalesced sorted vectors — see [`crate::workspace`]) instead of
//! per-level hash maps. The frontier is always iterated in ascending
//! node-id order, which fixes RNG-consumption order: for a fixed seed
//! the `*_with_workspace` variants and the allocating wrappers produce
//! bit-identical estimates. The degree-threshold scans read the targets'
//! in-degrees *inline with the out-adjacency*
//! ([`DiGraph::out_neighbors_with_in_degrees`]) — one sequential stream
//! instead of a random per-neighbor probe. The query engine calls
//! [`variance_bounded_backward_walk_with_workspace`] once per non-hub
//! terminal; [`variance_bounded_backward_walks_interleaved`] is the
//! batched 8-lane variant for latency-bound hosts, currently *not* on
//! the engine's hot path (the phase-separated loop measured faster on
//! the benchmark box — see `BENCH_query.json`).

use prsim_graph::{DiGraph, NodeId};
use rand::Rng;

use crate::workspace::BackwardWorkspace;

/// Sparse estimates produced by one backward walk.
#[derive(Clone, Debug, Default)]
pub struct BackwardWalkOutput {
    /// Non-zero estimates `(v, π̂_ℓ(v,w))`, sorted by node id.
    pub estimates: Vec<(NodeId, f64)>,
    /// Number of neighbor visits performed (cost instrumentation).
    pub cost: usize,
}

impl BackwardWalkOutput {
    /// Estimate for `v` (0.0 when absent). Binary search over the
    /// id-sorted estimate list.
    pub fn get(&self, v: NodeId) -> f64 {
        self.estimates
            .binary_search_by_key(&v, |&(node, _)| node)
            .map(|i| self.estimates[i].1)
            .unwrap_or(0.0)
    }
}

/// Borrowed view of one backward walk's estimates, live inside a
/// [`BackwardWorkspace`] until its next use. Entries are sorted by node
/// id.
pub struct BackwardEstimates<'a> {
    entries: &'a [(NodeId, f64)],
    cost: usize,
}

impl BackwardEstimates<'_> {
    /// Number of neighbor visits performed (cost instrumentation).
    #[inline]
    pub fn cost(&self) -> usize {
        self.cost
    }

    /// Number of non-zero estimates.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when every estimate is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimate for `v` (0.0 when absent). Binary search.
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        self.entries
            .binary_search_by_key(&v, |&(node, _)| node)
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Iterates `(v, π̂_ℓ(v,w))` pairs in ascending node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Copies the estimates out into an owned [`BackwardWalkOutput`].
    pub fn to_output(&self) -> BackwardWalkOutput {
        BackwardWalkOutput {
            estimates: self.entries.to_vec(),
            cost: self.cost,
        }
    }
}

fn assert_sorted(g: &DiGraph) {
    assert!(
        g.is_out_sorted_by_in_degree(),
        "backward walks require out-adjacency sorted by in-degree \
         (call prsim_graph::ordering::sort_out_by_in_degree first)"
    );
}

/// Algorithm 2: the simple backward walk (unbounded variance).
///
/// From each node `x` holding estimate mass at level `i`, draw
/// `r ~ U(0,1)` and add the full mass to every out-neighbor `y` with
/// `d_in(y) ≤ √c / r` — an inclusion event of probability
/// `min(1, √c/d_in(y))` giving expectation `√c·mass/d_in(y)`, matching
/// the RPPR recurrence.
///
/// Allocating wrapper over [`simple_backward_walk_with_workspace`].
pub fn simple_backward_walk<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    level: usize,
    rng: &mut R,
) -> BackwardWalkOutput {
    let mut ws = BackwardWorkspace::new();
    simple_backward_walk_with_workspace(g, sqrt_c, w, level, &mut ws, rng).to_output()
}

/// Workspace-reusing form of [`simple_backward_walk`]: no per-call
/// allocation once `ws` has grown to the graph size.
pub fn simple_backward_walk_with_workspace<'ws, R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    level: usize,
    ws: &'ws mut BackwardWorkspace,
    rng: &mut R,
) -> BackwardEstimates<'ws> {
    assert_sorted(g);
    let alpha = 1.0 - sqrt_c;
    ws.cur.clear();
    ws.cur.push((w, alpha));
    ws.next.clear();
    let mut cost = 1usize;

    for _ in 0..level {
        // `cur` is sorted and unique: RNG consumption (and therefore the
        // whole estimate) is reproducible for a fixed seed.
        for i in 0..ws.cur.len() {
            let (x, mass) = ws.cur[i];
            cost += 1;
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let bound = sqrt_c / r;
            let (neigh, degs) = g.out_neighbors_with_in_degrees(x);
            for (&y, &d) in neigh.iter().zip(degs) {
                if d as f64 > bound {
                    break; // sorted: nothing further qualifies
                }
                cost += 1;
                ws.next.push((y, mass));
            }
        }
        ws.coalesce_next_into_cur();
        if ws.cur.is_empty() {
            break;
        }
    }

    BackwardEstimates {
        entries: &ws.cur,
        cost,
    }
}

/// Algorithm 3: the Variance Bounded Backward Walk.
///
/// With probability `√c` the mass at `x` is propagated in two phases over
/// the in-degree-sorted out-list:
///
/// 1. **deterministic**: every `y` with `d_in(y) ≤ mass/(1−√c)` receives
///    `mass/d_in(y)` (each such increment is at least `1−√c`);
/// 2. **sampled tail**: draw `r ~ U(0,1)`; every `y` with
///    `mass/(1−√c) < d_in(y) ≤ mass/(r(1−√c))` receives exactly `1−√c`.
///
/// Both phases give expectation `√c·mass/d_in(y)` per neighbor, keeping
/// the estimator unbiased (Lemma 3.3) while capping increments, which is
/// what bounds the variance by the true value (Lemma 3.5).
///
/// Allocating wrapper over
/// [`variance_bounded_backward_walk_with_workspace`].
pub fn variance_bounded_backward_walk<R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    level: usize,
    rng: &mut R,
) -> BackwardWalkOutput {
    let mut ws = BackwardWorkspace::new();
    variance_bounded_backward_walk_with_workspace(g, sqrt_c, w, level, &mut ws, rng).to_output()
}

/// Workspace-reusing form of [`variance_bounded_backward_walk`]: no
/// per-call allocation once `ws` has grown to the graph size. This is the
/// form the query engine drives, one call per non-hub terminal.
pub fn variance_bounded_backward_walk_with_workspace<'ws, R: Rng + ?Sized>(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    level: usize,
    ws: &'ws mut BackwardWorkspace,
    rng: &mut R,
) -> BackwardEstimates<'ws> {
    assert_sorted(g);
    let alpha = 1.0 - sqrt_c;
    ws.cur.clear();
    ws.cur.push((w, alpha));
    ws.next.clear();
    let mut cost = 1usize;

    for _ in 0..level {
        // Deterministic frontier order (see simple_backward_walk).
        for i in 0..ws.cur.len() {
            let (x, mass) = ws.cur[i];
            cost += 1;
            if rng.gen::<f64>() >= sqrt_c {
                continue; // the walk mass at x stops here
            }
            // Parallel (target, in-degree) streams: the degree threshold
            // scan reads sequentially instead of probing in_degrees[y].
            let (neigh, degs) = g.out_neighbors_with_in_degrees(x);
            let det_bound = mass / alpha;
            let mut idx = 0usize;
            while idx < neigh.len() {
                let d = degs[idx] as f64;
                if d > det_bound {
                    break;
                }
                cost += 1;
                ws.next.push((neigh[idx], mass / d));
                idx += 1;
            }
            if idx == neigh.len() {
                continue; // whole out-list took the deterministic phase
            }
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let tail_bound = mass / (r * alpha);
            while idx < neigh.len() {
                if degs[idx] as f64 > tail_bound {
                    break;
                }
                cost += 1;
                ws.next.push((neigh[idx], alpha));
                idx += 1;
            }
        }
        ws.coalesce_next_into_cur();
        if ws.cur.is_empty() {
            break;
        }
    }

    BackwardEstimates {
        entries: &ws.cur,
        cost,
    }
}

/// Fold-variant of [`variance_bounded_backward_walk_with_workspace`]:
/// the walk's estimates are handed to `fold(v, π̂_ℓ(v,w))` instead of
/// being materialized as a sorted output, and the next level's CSR lines
/// are prefetched while the current level is still being processed.
/// Returns the neighbor-visit cost. This is the fused query plan's
/// backward kernel ([`crate::QueryPlan::Fused`]).
///
/// Two deliberate contracts versus the materializing walk:
///
/// * **Identical RNG stream.** The frontier sequence through the final
///   level is the same (levels before the last still coalesce into
///   `cur`), so every coin and tail draw is consumed in the same order —
///   a fused query draws bit-for-bit the same walks as a reference
///   query. Prefetches are pure scheduling hints and draw nothing.
/// * **Final level folds raw.** The last level's propagations are
///   emitted in push order without the final coalesce, so a node
///   receiving two increments `d₁, d₂` reaches the accumulator as
///   `s·d₁ + s·d₂` instead of `s·(d₁+d₂)` — the one reassociation the
///   fused plan admits (`QueryPlan` docs; pinned at `1e-9` by the
///   differential suite).
pub fn variance_bounded_backward_walk_fold_with_workspace<R, F>(
    g: &DiGraph,
    sqrt_c: f64,
    w: NodeId,
    level: usize,
    ws: &mut BackwardWorkspace,
    rng: &mut R,
    mut fold: F,
) -> usize
where
    R: Rng + ?Sized,
    F: FnMut(NodeId, f64),
{
    assert_sorted(g);
    let alpha = 1.0 - sqrt_c;
    let mut cost = 1usize;
    if level == 0 {
        // π̂_0 = {w: 1−√c} exactly; no draws, matching the reference walk.
        fold(w, alpha);
        return cost;
    }
    ws.cur.clear();
    ws.cur.push((w, alpha));
    ws.next.clear();

    for depth in (1..=level).rev() {
        let last = depth == 1;
        // Deterministic frontier order (see simple_backward_walk).
        for i in 0..ws.cur.len() {
            let (x, mass) = ws.cur[i];
            cost += 1;
            if rng.gen::<f64>() >= sqrt_c {
                continue; // the walk mass at x stops here
            }
            let (neigh, degs) = g.out_neighbors_with_in_degrees(x);
            let det_bound = mass / alpha;
            let mut idx = 0usize;
            while idx < neigh.len() {
                let d = degs[idx] as f64;
                if d > det_bound {
                    break;
                }
                cost += 1;
                let y = neigh[idx];
                if last {
                    fold(y, mass / d);
                } else {
                    // y is (probably) next level's frontier: start its
                    // offset line toward the cache now.
                    g.prefetch_out_offsets(y);
                    ws.next.push((y, mass / d));
                }
                idx += 1;
            }
            if idx < neigh.len() {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                let tail_bound = mass / (r * alpha);
                while idx < neigh.len() {
                    if degs[idx] as f64 > tail_bound {
                        break;
                    }
                    cost += 1;
                    let y = neigh[idx];
                    if last {
                        fold(y, alpha);
                    } else {
                        g.prefetch_out_offsets(y);
                        ws.next.push((y, alpha));
                    }
                    idx += 1;
                }
            }
        }
        if !last {
            // The offsets prefetched above have had a level's worth of
            // work to arrive: chase them into adjacency-data prefetches,
            // then coalesce — by the time the next level's scan issues
            // its demand loads the lines are in flight.
            for &(y, _) in ws.next.iter() {
                g.prefetch_out_lists(y);
            }
            ws.coalesce_next_into_cur();
            if ws.cur.is_empty() {
                return cost;
            }
        }
    }
    cost
}

/// Runs one Variance Bounded Backward Walk per `(w, ℓ)` request with
/// `LANES`-way interleaving: up to eight walks advance round-robin, one
/// frontier node per turn, so their dependent random loads (out-list
/// offsets, neighbors, in-degrees) overlap in the memory pipeline instead
/// of serializing — the same trick the √c-walk samplers use, applied to
/// the query's per-terminal backward walks. Each completed walk's
/// estimates are handed to `fold(v, π̂_ℓ(v,w))` in completion order
/// (deterministic for a fixed seed). Statistically every walk is exactly
/// a [`variance_bounded_backward_walk`] draw — only the RNG interleaving
/// differs. Returns the total neighbor-visit cost.
///
/// `lanes` holds the per-lane frontier scratch and is grown to eight
/// workspaces on first use (reuse it across calls to stay
/// allocation-free).
///
/// Status: an opt-in kernel for latency-bound hosts. The query engine
/// currently runs the serial per-terminal walk, which measured faster on
/// the benchmark box (see `BENCH_query.json`'s protocol note).
pub fn variance_bounded_backward_walks_interleaved<R, F>(
    g: &DiGraph,
    sqrt_c: f64,
    requests: &[(NodeId, u32)],
    lanes: &mut Vec<BackwardWorkspace>,
    rng: &mut R,
    mut fold: F,
) -> usize
where
    R: Rng + ?Sized,
    F: FnMut(NodeId, f64),
{
    const LANES: usize = 8;
    assert_sorted(g);
    let alpha = 1.0 - sqrt_c;
    if lanes.len() < LANES {
        lanes.resize_with(LANES, BackwardWorkspace::new);
    }
    let mut node_idx = [0usize; LANES];
    let mut levels_left = [0usize; LANES];
    let mut live = 0usize;
    let mut next_req = 0usize;
    let mut cost = 0usize;

    // Activates pending requests until the lanes are full; level-0 walks
    // are exact (`π̂_0 = {w: 1−√c}`) and never occupy a lane.
    macro_rules! refill {
        () => {
            while live < LANES && next_req < requests.len() {
                let (w, level) = requests[next_req];
                next_req += 1;
                cost += 1;
                if level == 0 {
                    fold(w, alpha);
                } else {
                    let ws = &mut lanes[live];
                    ws.cur.clear();
                    ws.cur.push((w, alpha));
                    ws.next.clear();
                    node_idx[live] = 0;
                    levels_left[live] = level as usize;
                    live += 1;
                }
            }
        };
    }

    refill!();
    while live > 0 {
        let mut lane = 0usize;
        while lane < live {
            // One frontier node of this lane's current level.
            let ws = &mut lanes[lane];
            let (x, mass) = ws.cur[node_idx[lane]];
            cost += 1;
            if rng.gen::<f64>() < sqrt_c {
                let (neigh, degs) = g.out_neighbors_with_in_degrees(x);
                let det_bound = mass / alpha;
                let mut idx = 0usize;
                while idx < neigh.len() {
                    let d = degs[idx] as f64;
                    if d > det_bound {
                        break;
                    }
                    cost += 1;
                    ws.next.push((neigh[idx], mass / d));
                    idx += 1;
                }
                if idx < neigh.len() {
                    let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let tail_bound = mass / (r * alpha);
                    while idx < neigh.len() {
                        if degs[idx] as f64 > tail_bound {
                            break;
                        }
                        cost += 1;
                        ws.next.push((neigh[idx], alpha));
                        idx += 1;
                    }
                }
            }
            node_idx[lane] += 1;
            if node_idx[lane] < ws.cur.len() {
                lane += 1;
                continue;
            }
            // Level finished: coalesce and either descend or retire.
            ws.coalesce_next_into_cur();
            levels_left[lane] -= 1;
            node_idx[lane] = 0;
            if levels_left[lane] == 0 || ws.cur.is_empty() {
                if levels_left[lane] == 0 {
                    for &(v, m) in &ws.cur {
                        fold(v, m);
                    }
                }
                live -= 1;
                lanes.swap(lane, live);
                node_idx[lane] = node_idx[live];
                levels_left[lane] = levels_left[live];
                refill!();
                // The swapped-in (or refilled) walk runs this lane next.
            } else {
                lane += 1;
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::exact_lhop_rppr_to;
    use prsim_graph::ordering::sort_out_by_in_degree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    const SQRT_C: f64 = 0.774_596_669_241_483_4;

    fn sorted(mut g: prsim_graph::DiGraph) -> prsim_graph::DiGraph {
        sort_out_by_in_degree(&mut g);
        g
    }

    /// Mean of `trials` estimates of π̂_ℓ(v,w) for every v with truth > 0.
    fn empirical_mean(
        g: &prsim_graph::DiGraph,
        w: NodeId,
        level: usize,
        trials: usize,
        vbbw: bool,
        seed: u64,
    ) -> HashMap<NodeId, f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc: HashMap<NodeId, f64> = HashMap::new();
        for _ in 0..trials {
            let out = if vbbw {
                variance_bounded_backward_walk(g, SQRT_C, w, level, &mut rng)
            } else {
                simple_backward_walk(g, SQRT_C, w, level, &mut rng)
            };
            for (v, x) in out.estimates {
                *acc.entry(v).or_insert(0.0) += x;
            }
        }
        acc.values_mut().for_each(|x| *x /= trials as f64);
        acc
    }

    #[test]
    fn level_zero_is_exact() {
        let g = sorted(prsim_gen::toys::cycle(4));
        let mut rng = StdRng::seed_from_u64(0);
        for f in [
            simple_backward_walk::<StdRng>,
            variance_bounded_backward_walk::<StdRng>,
        ] {
            let out = f(&g, SQRT_C, 2, 0, &mut rng);
            assert_eq!(out.estimates.len(), 1);
            assert_eq!(out.estimates[0].0, 2);
            assert!((out.estimates[0].1 - (1.0 - SQRT_C)).abs() < 1e-12);
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh() {
        // The same seed must yield the same estimates whether the
        // workspace is fresh per call or reused across calls — and the
        // borrowed view must agree with the allocating wrapper.
        let g = sorted(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(120, 5.0, 2.0, 9),
        ));
        let mut reused = BackwardWorkspace::new();
        for (trial, w) in [3u32, 17, 3, 80, 0].into_iter().enumerate() {
            let seed = 100 + trial as u64;
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let fresh = variance_bounded_backward_walk(&g, SQRT_C, w, 4, &mut rng_a);
            let via_ws = variance_bounded_backward_walk_with_workspace(
                &g,
                SQRT_C,
                w,
                4,
                &mut reused,
                &mut rng_b,
            );
            assert_eq!(via_ws.cost(), fresh.cost);
            assert_eq!(via_ws.len(), fresh.estimates.len());
            let collected: Vec<(NodeId, f64)> = via_ws.iter().collect();
            assert_eq!(collected, fresh.estimates, "trial {trial} diverged");
        }
    }

    #[test]
    fn fold_kernel_matches_materialized_walk_and_rng_stream() {
        // The fused query plan consumes the fold kernel; the reference
        // plan materializes. Same seed ⇒ same RNG consumption (checked by
        // drawing one more value afterwards), same cost, and per-node
        // sums equal up to the documented final-level reassociation.
        use rand::RngCore;
        let g = sorted(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(150, 5.0, 2.0, 21),
        ));
        let mut ws_a = BackwardWorkspace::new();
        let mut ws_b = BackwardWorkspace::new();
        for (trial, (w, level)) in [(3u32, 4usize), (17, 1), (3, 6), (90, 3), (0, 0)]
            .into_iter()
            .enumerate()
        {
            let seed = 400 + trial as u64;
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut folded: std::collections::BTreeMap<NodeId, f64> = Default::default();
            let cost_a = variance_bounded_backward_walk_fold_with_workspace(
                &g,
                SQRT_C,
                w,
                level,
                &mut ws_a,
                &mut rng_a,
                |v, x| *folded.entry(v).or_insert(0.0) += x,
            );
            let out = variance_bounded_backward_walk_with_workspace(
                &g, SQRT_C, w, level, &mut ws_b, &mut rng_b,
            );
            assert_eq!(cost_a, out.cost(), "trial {trial} cost diverged");
            assert_eq!(
                rng_a.next_u64(),
                rng_b.next_u64(),
                "trial {trial}: fold must consume the exact RNG stream"
            );
            let materialized: std::collections::BTreeMap<NodeId, f64> = out.iter().collect();
            assert_eq!(
                folded.len(),
                materialized.len(),
                "trial {trial} support diverged"
            );
            for (v, x) in &folded {
                let y = materialized[v];
                assert!(
                    (x - y).abs() <= 1e-12 * x.abs().max(1.0),
                    "trial {trial} node {v}: fold {x} vs materialized {y}"
                );
            }
        }
    }

    #[test]
    fn output_get_uses_sorted_order() {
        let out = BackwardWalkOutput {
            estimates: vec![(2, 0.5), (7, 0.25), (9, 0.125)],
            cost: 0,
        };
        assert_eq!(out.get(2), 0.5);
        assert_eq!(out.get(7), 0.25);
        assert_eq!(out.get(9), 0.125);
        assert_eq!(out.get(0), 0.0);
        assert_eq!(out.get(8), 0.0);
        assert_eq!(out.get(100), 0.0);
    }

    #[test]
    fn both_walks_unbiased_on_random_graph() {
        let g = sorted(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 6),
        ));
        let w = 0u32;
        for level in [1usize, 2, 3] {
            let exact = exact_lhop_rppr_to(&g, SQRT_C, w, level);
            for (vbbw, seed) in [(true, 1u64), (false, 2u64)] {
                let mean = empirical_mean(&g, w, level, 60_000, vbbw, seed);
                for v in 0..g.node_count() as u32 {
                    let truth = exact[level][v as usize];
                    let est = mean.get(&v).copied().unwrap_or(0.0);
                    // ~5σ of the empirical mean (Var ≤ truth for VBBW;
                    // similar magnitude here for the simple walk).
                    let tol = 5.0 * (truth.max(1e-4) / 60_000.0).sqrt() + 0.05 * truth;
                    assert!(
                        (est - truth).abs() < tol,
                        "vbbw={vbbw} level={level} v={v}: est {est:.5} vs {truth:.5}"
                    );
                }
            }
        }
    }

    #[test]
    fn interleaved_batch_is_unbiased_like_serial() {
        // The 8-lane scheduler must realize the same estimator law as the
        // serial VBBW: empirical means over a large batch of identical
        // requests match the exact ℓ-hop RPPR within Monte-Carlo noise.
        let g = sorted(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 6),
        ));
        let w = 0u32;
        let level = 2usize;
        let trials = 60_000usize;
        let exact = exact_lhop_rppr_to(&g, SQRT_C, w, level);
        let requests = vec![(w, level as u32); trials];
        let mut lanes = Vec::new();
        let mut rng = StdRng::seed_from_u64(17);
        let mut acc: HashMap<NodeId, f64> = HashMap::new();
        let cost = variance_bounded_backward_walks_interleaved(
            &g,
            SQRT_C,
            &requests,
            &mut lanes,
            &mut rng,
            |v, m| *acc.entry(v).or_insert(0.0) += m,
        );
        assert!(cost >= trials, "each walk visits at least its root");
        for v in 0..g.node_count() as u32 {
            let truth = exact[level][v as usize];
            let est = acc.get(&v).copied().unwrap_or(0.0) / trials as f64;
            let tol = 5.0 * (truth.max(1e-4) / trials as f64).sqrt() + 0.05 * truth;
            assert!(
                (est - truth).abs() < tol,
                "v={v}: interleaved mean {est:.5} vs exact {truth:.5}"
            );
        }
        // Level-0 requests are exact and never enter a lane.
        let mut out = Vec::new();
        let cost = variance_bounded_backward_walks_interleaved(
            &g,
            SQRT_C,
            &[(7, 0), (9, 0)],
            &mut lanes,
            &mut rng,
            |v, m| out.push((v, m)),
        );
        assert_eq!(cost, 2);
        let alpha = 1.0 - SQRT_C;
        assert_eq!(out, vec![(7, alpha), (9, alpha)]);
    }

    #[test]
    fn vbbw_variance_bounded_by_truth() {
        // Lemma 3.5: Var[π̂] ≤ E[π̂²] ≤ π.
        let g = sorted(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 12),
        ));
        let w = 1u32;
        let level = 2usize;
        let trials = 60_000;
        let exact = exact_lhop_rppr_to(&g, SQRT_C, w, level);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sq: HashMap<NodeId, f64> = HashMap::new();
        for _ in 0..trials {
            let out = variance_bounded_backward_walk(&g, SQRT_C, w, level, &mut rng);
            for (v, x) in out.estimates {
                *sq.entry(v).or_insert(0.0) += x * x;
            }
        }
        for (v, total) in sq {
            let second_moment = total / trials as f64;
            let truth = exact[level][v as usize];
            // Statistical slack: 15% + small absolute.
            assert!(
                second_moment <= truth * 1.15 + 1e-3,
                "v={v}: E[π̂²] = {second_moment:.6} exceeds π = {truth:.6}"
            );
        }
    }

    #[test]
    fn gadget_shows_unbounded_values_and_vbbw_variance_bound() {
        // Paper §3.4: on the two-level gadget all k middle nodes receive
        // π̂₁ = 1−√c simultaneously (one shared r at the source), so the
        // sink estimate π̂₂(v,w) is a sum of up to k copies of (1−√c) —
        // values far above the true π₂ occur regularly, which is why no
        // sub-gaussian tail bound applies to Algorithm 2. The VBBW second
        // moment, in contrast, must respect Lemma 3.5's E[π̂²] ≤ π.
        let k = 64usize;
        let g = sorted(prsim_gen::toys::two_level_gadget(k));
        let w = 0u32; // gadget source
        let v = 1u32; // gadget sink
        let alpha = 1.0 - SQRT_C;
        let trials = 20_000;

        let mut rng = StdRng::seed_from_u64(7);
        let truth = exact_lhop_rppr_to(&g, SQRT_C, w, 2)[2][v as usize];
        let mut max_simple: f64 = 0.0;
        let mut sq_vbbw = 0.0;
        for _ in 0..trials {
            let s = simple_backward_walk(&g, SQRT_C, w, 2, &mut rng).get(v);
            max_simple = max_simple.max(s);
            let b = variance_bounded_backward_walk(&g, SQRT_C, w, 2, &mut rng).get(v);
            sq_vbbw += b * b;
        }
        let second_moment_vbbw = sq_vbbw / trials as f64;

        // π₂(v,w) = (1−√c)·c ≈ 0.135, yet Algorithm 2 regularly outputs
        // multiples of (1−√c): accumulations of 3α or more.
        assert!(
            max_simple >= 3.0 * alpha,
            "expected multi-α accumulation from Algorithm 2, max was {max_simple} (α = {alpha})"
        );
        assert!(
            max_simple > 2.0 * truth,
            "Algorithm 2 max {max_simple} should exceed the true value {truth} by far"
        );
        // Lemma 3.5 for VBBW, with statistical slack.
        assert!(
            second_moment_vbbw <= truth * 1.2 + 1e-3,
            "VBBW E[π̂²] = {second_moment_vbbw} exceeds Lemma 3.5 bound π = {truth}"
        );
    }

    #[test]
    fn cost_scales_with_pagerank_not_n() {
        // Backward-walk cost on w is O(n·π(w)): a low-π leaf must be far
        // cheaper than the global hub.
        let g = sorted(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(3_000, 10.0, 1.6, 21),
        ));
        let pi = crate::pagerank::reverse_pagerank(&g, SQRT_C, 1e-10, 64);
        let order = crate::pagerank::rank_by_pagerank(&pi);
        let hub = order[0];
        let leaf = *order.last().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let avg_cost = |w: NodeId, rng: &mut StdRng| {
            let mut total = 0usize;
            for _ in 0..200 {
                total += variance_bounded_backward_walk(&g, SQRT_C, w, 8, rng).cost;
            }
            total as f64 / 200.0
        };
        let hub_cost = avg_cost(hub, &mut rng);
        let leaf_cost = avg_cost(leaf, &mut rng);
        assert!(
            hub_cost > 3.0 * leaf_cost,
            "hub cost {hub_cost} should dwarf leaf cost {leaf_cost}"
        );
    }

    #[test]
    #[should_panic(expected = "sorted by in-degree")]
    fn unsorted_graph_rejected() {
        let g = prsim_gen::toys::cycle(3); // not sorted
        let mut rng = StdRng::seed_from_u64(0);
        let _ = variance_bounded_backward_walk(&g, SQRT_C, 0, 2, &mut rng);
    }

    #[test]
    fn estimates_nonnegative_and_sorted() {
        let g = sorted(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(100, 5.0, 2.0, 2),
        ));
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let out = variance_bounded_backward_walk(&g, SQRT_C, 4, 3, &mut rng);
            assert!(out.estimates.iter().all(|&(_, x)| x >= 0.0));
            assert!(out.estimates.windows(2).all(|p| p[0].0 < p[1].0));
        }
    }
}
