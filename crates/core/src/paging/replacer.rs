//! LRU-K replacement policy for the buffer pool.
//!
//! Plain LRU is famously fooled by sequential floods — one arena scan
//! evicts the whole hot set. LRU-K (K=2 here) ranks victims by their
//! *backward K-distance*: the age of the K-th most recent access. Pages
//! touched only once have infinite distance and are evicted first (a
//! scan's pages never displace re-referenced ones); among the
//! infinite-distance pages the oldest first access goes first, and ties
//! break on page number so eviction order is fully deterministic.

use std::collections::HashMap;

/// How many historical access timestamps each page keeps.
pub(crate) const LRU_K: usize = 2;

#[derive(Clone, Debug)]
struct PageHistory {
    /// Last [`LRU_K`] access ticks, most recent last.
    accesses: [u64; LRU_K],
    /// How many of `accesses` are real (saturates at [`LRU_K`]).
    count: usize,
    /// Whether the pool currently allows eviction (pin count is zero).
    evictable: bool,
}

impl PageHistory {
    /// Tick of the K-th most recent access, or `None` (infinite
    /// backward distance) with fewer than K accesses.
    fn kth_recent(&self) -> Option<u64> {
        (self.count >= LRU_K).then(|| self.accesses[0])
    }

    /// Tick of the earliest remembered access (the LRU-1 fallback used
    /// to order the infinite-distance class).
    fn earliest(&self) -> u64 {
        self.accesses[LRU_K - self.count.max(1)]
    }
}

/// The pool's eviction policy. Pin/unpin state lives in the pool's
/// frame table; the replacer only sees access history and evictability.
#[derive(Debug, Default)]
pub(crate) struct LruKReplacer {
    tick: u64,
    pages: HashMap<usize, PageHistory>,
}

impl LruKReplacer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `page` (registering it if new; new pages
    /// start non-evictable, matching the pool's pinned-on-fetch state).
    pub fn record_access(&mut self, page: usize) {
        self.tick += 1;
        let tick = self.tick;
        let h = self.pages.entry(page).or_insert(PageHistory {
            accesses: [0; LRU_K],
            count: 0,
            evictable: false,
        });
        h.accesses.rotate_left(1);
        h.accesses[LRU_K - 1] = tick;
        h.count = (h.count + 1).min(LRU_K);
    }

    /// Marks `page` evictable (pin count hit zero) or not.
    pub fn set_evictable(&mut self, page: usize, evictable: bool) {
        if let Some(h) = self.pages.get_mut(&page) {
            h.evictable = evictable;
        }
    }

    /// Forgets `page` entirely (its frame was evicted or invalidated).
    #[cfg(test)]
    pub fn remove(&mut self, page: usize) {
        self.pages.remove(&page);
    }

    /// Number of currently evictable pages.
    #[cfg(test)]
    pub fn evictable_len(&self) -> usize {
        self.pages.values().filter(|h| h.evictable).count()
    }

    /// Picks, removes and returns the eviction victim: the evictable
    /// page with the largest backward K-distance (infinite first, by
    /// earliest access; then oldest K-th access), ties on page number.
    pub fn evict(&mut self) -> Option<usize> {
        let victim = self
            .pages
            .iter()
            .filter(|(_, h)| h.evictable)
            .map(|(&p, h)| {
                // Order key: infinite-distance class strictly precedes the
                // finite class; within a class, older marker ticks first.
                let (class, marker) = match h.kth_recent() {
                    None => (0u8, h.earliest()),
                    Some(kth) => (1, kth),
                };
                (class, marker, p)
            })
            .min()?
            .2;
        self.pages.remove(&victim);
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(r: &mut LruKReplacer, page: usize, evictable: bool) {
        r.record_access(page);
        r.set_evictable(page, evictable);
    }

    #[test]
    fn single_access_pages_evict_before_rereferenced_ones() {
        let mut r = LruKReplacer::new();
        touch(&mut r, 1, true); // tick 1
        touch(&mut r, 2, true); // tick 2
        r.record_access(1); // page 1 now has K=2 accesses
                            // Page 2 has one access (infinite distance): it goes first even
                            // though page 1's first access is older.
        assert_eq!(r.evict(), Some(2));
        assert_eq!(r.evict(), Some(1));
        assert_eq!(r.evict(), None);
    }

    #[test]
    fn infinite_class_orders_by_earliest_access() {
        let mut r = LruKReplacer::new();
        touch(&mut r, 7, true); // tick 1
        touch(&mut r, 3, true); // tick 2
        touch(&mut r, 9, true); // tick 3
        assert_eq!(r.evict(), Some(7));
        assert_eq!(r.evict(), Some(3));
        assert_eq!(r.evict(), Some(9));
    }

    #[test]
    fn finite_class_orders_by_kth_recent_access() {
        let mut r = LruKReplacer::new();
        touch(&mut r, 1, true); // tick 1
        touch(&mut r, 2, true); // tick 2
        r.record_access(1); // ticks: 1 -> {1,3}
        r.record_access(2); // ticks: 2 -> {2,4}
        r.record_access(1); // ticks: 1 -> {3,5}
                            // K-th recent: page 1 at tick 3, page 2 at tick 2 -> 2 is older.
        assert_eq!(r.evict(), Some(2));
        assert_eq!(r.evict(), Some(1));
    }

    #[test]
    fn pinned_pages_are_never_victims() {
        let mut r = LruKReplacer::new();
        touch(&mut r, 1, false);
        touch(&mut r, 2, true);
        assert_eq!(r.evict(), Some(2));
        assert_eq!(r.evict(), None, "page 1 is pinned");
        r.set_evictable(1, true);
        assert_eq!(r.evict(), Some(1));
    }

    #[test]
    fn remove_forgets_history() {
        let mut r = LruKReplacer::new();
        touch(&mut r, 5, true);
        r.remove(5);
        assert_eq!(r.evict(), None);
        assert_eq!(r.evictable_len(), 0);
    }
}
