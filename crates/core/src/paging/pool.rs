//! The pin/unpin buffer pool between the query path and disk.
//!
//! One pool serves one v4 page file. Frames are whole pages held as
//! `Arc<Vec<u8>>`; [`BufferPool::pin`] returns a [`PinnedPage`] guard
//! that keeps the frame unevictable until dropped. The frame count is a
//! **hard ceiling** derived from the memory budget: on a miss with a
//! full table the LRU-K replacer must yield an unpinned victim, and if
//! every frame is pinned the miss fails (the query degrades) rather
//! than allocating past the budget.
//!
//! The reverse-PageRank hot set is pinned *resident* at construction:
//! those frames are read once, never enter the replacer, and never
//! leave. All fetches go through [`prsim_storage::Storage::read_at`]
//! and are checksum-verified; a fault is retried a bounded number of
//! times with a short backoff, then surfaces as
//! [`PrsimError::PageFault`]. Per-page consecutive-failure streaks feed
//! the host's degraded-mode machinery ([`BufferPool::unhealthy`]); a
//! later successful fetch heals the streak.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use prsim_storage::Storage;

use super::pagefile::{self, PageFileMeta};
use super::replacer::LruKReplacer;
use crate::PrsimError;

/// Fetch attempts per pin before the fault propagates.
const PIN_ATTEMPTS: u32 = 3;

/// Backoff between fetch attempts (doubled each retry).
const RETRY_BACKOFF: Duration = Duration::from_micros(100);

/// Consecutive failed pins of one page that flip the pool unhealthy.
const UNHEALED_TRIP: u32 = 3;

/// Live counters of one pool (observability + the bench's budget gate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagingStats {
    /// Page size in bytes.
    pub page_bytes: u32,
    /// Total pages in the file.
    pub pages: u64,
    /// Permanently pinned hot pages.
    pub hot_pages: u64,
    /// Hard ceiling on simultaneously resident frames.
    pub frame_budget: u64,
    /// Frames currently resident (including hot pages).
    pub resident_frames: u64,
    /// Current resident bytes of the frame table.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` since construction.
    pub peak_resident_bytes: u64,
    /// Pins served from a resident frame.
    pub hits: u64,
    /// Pins that fetched from storage.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Pins that failed after bounded retries.
    pub faults: u64,
    /// Pages currently carrying an unhealed fault streak.
    pub unhealed_pages: u64,
}

/// Outcome of scrubbing one on-disk page ([`BufferPool::scrub_page`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageScrub {
    /// The on-disk bytes verified against the page checksum.
    Clean {
        /// Bytes read and verified.
        bytes: u64,
    },
    /// The on-disk bytes were rotten; the page was rewritten from a
    /// clean resident frame and re-verified from disk.
    Healed {
        /// Bytes rewritten and re-verified.
        bytes: u64,
    },
    /// The on-disk bytes are rotten and no clean resident copy exists
    /// (or the rewrite itself failed) — the host should degrade.
    Unhealable {
        /// Why the page could not be healed.
        detail: String,
    },
    /// The page could not be read at all (transient I/O error) — skip
    /// and retry next cycle.
    Unreadable {
        /// The read error.
        detail: String,
    },
}

struct Frame {
    data: Arc<Vec<u8>>,
    pins: u32,
    /// Hot frames are pinned at construction and never evicted.
    hot: bool,
}

struct PoolInner {
    frames: HashMap<usize, Frame>,
    replacer: LruKReplacer,
    /// Consecutive failed pin calls per page; cleared on success.
    fail_streaks: HashMap<usize, u32>,
    resident_bytes: u64,
}

/// A budgeted page cache over one v4 postings file.
pub struct BufferPool {
    storage: Arc<dyn Storage>,
    path: PathBuf,
    meta: PageFileMeta,
    frame_budget: usize,
    hot_pages: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    faults: AtomicU64,
    peak_resident: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("path", &self.path)
            .field("stats", &s)
            .finish()
    }
}

/// A pinned page: derefs to the page bytes; dropping it unpins.
pub struct PinnedPage {
    pool: Arc<BufferPool>,
    page: usize,
    data: Arc<Vec<u8>>,
}

impl std::ops::Deref for PinnedPage {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.pool.unpin(self.page);
    }
}

impl BufferPool {
    /// Builds a pool over an opened file with `frame_budget` total
    /// frames, reading and permanently pinning the pages listed in
    /// `hot` (sorted, deduplicated). The caller (admission control) has
    /// already verified the budget covers the hot set plus at least one
    /// working frame.
    pub(crate) fn new(
        storage: Arc<dyn Storage>,
        path: PathBuf,
        meta: PageFileMeta,
        frame_budget: usize,
        hot: Vec<usize>,
    ) -> Result<Arc<Self>, PrsimError> {
        debug_assert!(hot.iter().all(|&p| p < meta.pages.len()));
        debug_assert!(frame_budget >= hot.len() + usize::from(hot.len() < meta.pages.len()));
        let hot_pages = hot.len();
        let pool = Arc::new(BufferPool {
            storage,
            path,
            meta,
            frame_budget,
            hot_pages,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                replacer: LruKReplacer::new(),
                fail_streaks: HashMap::new(),
                resident_bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
        });
        for page in hot {
            let data = pool.fetch_with_retry(page)?;
            let mut inner = pool.lock();
            inner.resident_bytes += data.len() as u64;
            inner.frames.insert(
                page,
                Frame {
                    data: Arc::new(data),
                    pins: 1,
                    hot: true,
                },
            );
            let resident = inner.resident_bytes;
            drop(inner);
            pool.peak_resident.fetch_max(resident, Ordering::Relaxed);
        }
        Ok(pool)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // A frame table is never left torn: every mutation completes
        // before the lock drops, so poisoning (a panicked peer) does not
        // invalidate the state.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pins `page`, fetching and verifying it if not resident. Fails
    /// with [`PrsimError::PageFault`] after bounded retries, or when the
    /// frame table is full of pinned pages (the budget is a hard
    /// ceiling — the pool never grows past it).
    pub fn pin(self: &Arc<Self>, page: usize) -> Result<PinnedPage, PrsimError> {
        if page >= self.meta.pages.len() {
            return Err(PrsimError::PageFault(format!(
                "page {page} out of range ({} pages)",
                self.meta.pages.len()
            )));
        }
        {
            let mut inner = self.lock();
            if let Some(frame) = inner.frames.get_mut(&page) {
                frame.pins += 1;
                let data = Arc::clone(&frame.data);
                let hot = frame.hot;
                if !hot {
                    inner.replacer.record_access(page);
                    inner.replacer.set_evictable(page, false);
                }
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PinnedPage {
                    pool: Arc::clone(self),
                    page,
                    data,
                });
            }
            // Miss: make room *before* fetching so the budget ceiling
            // holds even transiently.
            if inner.frames.len() >= self.frame_budget {
                match inner.replacer.evict() {
                    Some(victim) => {
                        if let Some(f) = inner.frames.remove(&victim) {
                            inner.resident_bytes -= f.data.len() as u64;
                        }
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        drop(inner);
                        self.faults.fetch_add(1, Ordering::Relaxed);
                        return Err(PrsimError::PageFault(format!(
                            "page {page}: memory budget exhausted ({} frames, all pinned)",
                            self.frame_budget
                        )));
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        match self.fetch_with_retry(page) {
            Ok(data) => {
                let data = Arc::new(data);
                let mut inner = self.lock();
                inner.fail_streaks.remove(&page);
                // A concurrent miss may have refilled the table while the
                // fetch ran; the ceiling is hard, so make room again (or
                // fail) before inserting a new frame.
                if !inner.frames.contains_key(&page) && inner.frames.len() >= self.frame_budget {
                    match inner.replacer.evict() {
                        Some(victim) => {
                            if let Some(f) = inner.frames.remove(&victim) {
                                inner.resident_bytes -= f.data.len() as u64;
                            }
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            drop(inner);
                            self.faults.fetch_add(1, Ordering::Relaxed);
                            return Err(PrsimError::PageFault(format!(
                                "page {page}: memory budget exhausted ({} frames, all pinned)",
                                self.frame_budget
                            )));
                        }
                    }
                }
                // A concurrent pin may have raced the fetch; reuse the
                // resident frame in that case to keep accounting exact.
                let frame = inner.frames.entry(page).or_insert_with(|| Frame {
                    data: Arc::clone(&data),
                    pins: 0,
                    hot: false,
                });
                frame.pins += 1;
                let data = Arc::clone(&frame.data);
                inner.replacer.record_access(page);
                inner.replacer.set_evictable(page, false);
                let resident: u64 = inner.frames.values().map(|f| f.data.len() as u64).sum();
                inner.resident_bytes = resident;
                drop(inner);
                self.peak_resident.fetch_max(resident, Ordering::Relaxed);
                Ok(PinnedPage {
                    pool: Arc::clone(self),
                    page,
                    data,
                })
            }
            Err(e) => {
                let mut inner = self.lock();
                let streak = inner.fail_streaks.entry(page).or_insert(0);
                *streak = streak.saturating_add(1);
                drop(inner);
                self.faults.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn unpin(&self, page: usize) {
        let mut inner = self.lock();
        if let Some(frame) = inner.frames.get_mut(&page) {
            frame.pins = frame.pins.saturating_sub(1);
            if frame.pins == 0 && !frame.hot {
                inner.replacer.set_evictable(page, true);
            }
        }
    }

    /// Fetches and verifies one page, retrying transient faults with a
    /// short exponential backoff.
    fn fetch_with_retry(&self, page: usize) -> Result<Vec<u8>, PrsimError> {
        let mut backoff = RETRY_BACKOFF;
        let mut last = None;
        for attempt in 0..PIN_ATTEMPTS {
            match pagefile::read_page(self.storage.as_ref(), &self.path, &self.meta, page) {
                Ok(data) => return Ok(data),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < PIN_ATTEMPTS {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Copies blob bytes `[start, start + out_len)` (offsets relative to
    /// the blob, not the file) into `out`, pinning each spanned page in
    /// turn. `out` is cleared first.
    pub(crate) fn read_span(
        self: &Arc<Self>,
        start: u64,
        out_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), PrsimError> {
        out.clear();
        out.reserve(out_len);
        let page_bytes = u64::from(self.meta.page_bytes);
        let mut at = start;
        let end = start + out_len as u64;
        while at < end {
            let page = (at / page_bytes) as usize;
            let in_page = (at % page_bytes) as usize;
            let pinned = self.pin(page)?;
            let take = (pinned.len() - in_page).min((end - at) as usize);
            out.extend_from_slice(&pinned[in_page..in_page + take]);
            at += take as u64;
        }
        Ok(())
    }

    /// The file this pool serves pages from.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Total pages in the file (the scrubber's iteration bound).
    pub fn page_count(&self) -> usize {
        self.meta.pages.len()
    }

    /// Re-verifies one page's **on-disk** bytes against its checksum,
    /// bypassing resident frames, and heals detectable bit-rot in place.
    ///
    /// A checksum mismatch is double-checked with a second read before
    /// it counts as at-rest rot (a transient in-flight flip does not
    /// repeat; real rot does). Confirmed rot is healed by rewriting the
    /// page from a clean resident frame via
    /// [`prsim_storage::Storage::write_at`] and re-verifying from disk;
    /// with no resident copy (the page is cold) or a failed rewrite the
    /// page is [`PageScrub::Unhealable`] and the host should degrade.
    pub fn scrub_page(&self, page: usize) -> PageScrub {
        let Some(&entry) = self.meta.pages.get(page) else {
            return PageScrub::Unhealable {
                detail: format!("page {page} out of range ({} pages)", self.meta.pages.len()),
            };
        };
        let verify_disk = || -> Result<bool, String> {
            let buf = self
                .storage
                .read_at(&self.path, entry.offset, entry.len as usize)
                .map_err(|e| format!("page {page} scrub read failed: {e}"))?;
            Ok(pagefile::fnv1a64(&[&buf]) == entry.checksum)
        };
        match verify_disk() {
            Ok(true) => {
                return PageScrub::Clean {
                    bytes: u64::from(entry.len),
                }
            }
            Ok(false) => {}
            Err(detail) => return PageScrub::Unreadable { detail },
        }
        // Mismatch: confirm it is at-rest rot, not a flipped read.
        match verify_disk() {
            Ok(true) => {
                return PageScrub::Clean {
                    bytes: u64::from(entry.len),
                }
            }
            Ok(false) => {}
            Err(detail) => return PageScrub::Unreadable { detail },
        }
        let resident = {
            let inner = self.lock();
            inner.frames.get(&page).map(|f| Arc::clone(&f.data))
        };
        let Some(frame) = resident else {
            return PageScrub::Unhealable {
                detail: format!("page {page}: rotten on disk with no resident copy"),
            };
        };
        if pagefile::fnv1a64(&[&frame]) != entry.checksum {
            return PageScrub::Unhealable {
                detail: format!("page {page}: rotten on disk and resident frame disagrees"),
            };
        }
        if let Err(e) = self.storage.write_at(&self.path, entry.offset, &frame) {
            return PageScrub::Unhealable {
                detail: format!("page {page}: heal rewrite failed: {e}"),
            };
        }
        match verify_disk() {
            Ok(true) => PageScrub::Healed {
                bytes: u64::from(entry.len),
            },
            Ok(false) => PageScrub::Unhealable {
                detail: format!("page {page}: rot persists after heal rewrite"),
            },
            Err(detail) => PageScrub::Unreadable { detail },
        }
    }

    /// Whether any page's consecutive-failure streak has crossed the
    /// trip threshold — the signal a serving host folds into its
    /// degraded-mode health.
    pub fn unhealthy(&self) -> bool {
        self.lock()
            .fail_streaks
            .values()
            .any(|&s| s >= UNHEALED_TRIP)
    }

    /// Live counters.
    pub fn stats(&self) -> PagingStats {
        let inner = self.lock();
        PagingStats {
            page_bytes: self.meta.page_bytes,
            pages: self.meta.pages.len() as u64,
            hot_pages: self.hot_pages as u64,
            frame_budget: self.frame_budget as u64,
            resident_frames: inner.frames.len() as u64,
            resident_bytes: inner.resident_bytes,
            peak_resident_bytes: self.peak_resident.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            unhealed_pages: inner.fail_streaks.len() as u64,
        }
    }
}
