//! Out-of-core postings: the v4 page file and the pin/unpin buffer pool.
//!
//! The flat postings arena ([`crate::index`]) serializes as one
//! contiguous blob (`nodes` bytes followed by `reserves` bytes). This
//! module restructures that blob into **fixed-size pages** with
//! per-page FNV-1a checksums (the v4 `PRSIMIX4` format, `pagefile`)
//! and serves it through a [`pool::BufferPool`]: a hard-budgeted frame
//! table with an LRU-K replacer (`replacer`) where the
//! reverse-PageRank hot set is pinned resident at load and everything
//! else faults in on demand through the injectable
//! [`prsim_storage::Storage`] trait.
//!
//! ## Failure contract
//!
//! Every page fetch is verified against its checksum; a read error or a
//! checksum mismatch (bit-rot) gets a bounded retry with backoff and
//! then surfaces as [`crate::PrsimError::PageFault`] — never a panic.
//! The query path catches the fault and falls back to a live backward
//! walk for the affected hub terminal (`degraded=true`), and the pool
//! tracks per-page unhealed-fault streaks so a host can trip its
//! degraded-mode machinery when the same page keeps failing.
//!
//! ## Memory model
//!
//! The `--memory-budget` is a **hard ceiling** on the arena's resident
//! bytes: page-table and offset metadata, the permanently pinned hot
//! pages, and every pool frame are charged against it, and admission
//! control refuses to open a file whose pinned set alone (plus one
//! working frame) exceeds the budget. The pool never allocates a frame
//! beyond the ceiling — when every frame is pinned, a miss degrades the
//! query instead of growing the pool.

pub(crate) mod pagefile;
pub mod pool;
pub(crate) mod replacer;

pub use pool::{BufferPool, PageScrub, PagingStats};

/// Knobs for opening (or demoting to) a paged arena.
#[derive(Clone, Copy, Debug)]
pub struct PagedOptions {
    /// Page size in bytes (clamped to `[64, 2^30]` by validation).
    pub page_bytes: u32,
    /// Hard ceiling on the arena's resident bytes (metadata + pinned
    /// hot set + pool frames).
    pub memory_budget: u64,
    /// Number of top-ranked hubs whose postings runs are pinned
    /// resident at load (the harmonically-decayed hot set — hubs are
    /// stored in descending reverse-PageRank order, so this is a prefix
    /// of the arena).
    pub hot_ranks: usize,
}

impl Default for PagedOptions {
    fn default() -> Self {
        PagedOptions {
            page_bytes: 16 * 1024,
            memory_budget: 64 * 1024 * 1024,
            hot_ranks: 64,
        }
    }
}

/// Reusable decode buffers for postings served from the page pool. The
/// query workspace owns one so per-terminal lookups allocate nothing in
/// steady state.
#[derive(Clone, Debug, Default)]
pub struct PostingsScratch {
    /// Raw bytes gathered from the pinned pages.
    pub(crate) raw: Vec<u8>,
    /// Decoded source node ids.
    pub(crate) nodes: Vec<prsim_graph::NodeId>,
    /// Decoded f64 reserves (when the arena is full precision).
    pub(crate) r64: Vec<f64>,
    /// Decoded f32 reserves (when the arena is quantized).
    pub(crate) r32: Vec<f32>,
}

impl PostingsScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}
