//! The v4 page-oriented postings file format (`PRSIMIX4`).
//!
//! v3 ([`crate::index`]) serializes the arena as one unframed byte
//! stream, which forces an all-or-nothing load. v4 keeps the same
//! logical content but frames the postings blob into fixed-size pages
//! so a buffer pool can fetch and verify any piece independently:
//!
//! ```text
//! magic "PRSIMIX4"                     8 bytes
//! flags (bit 0 = f32 reserves)         u32 le
//! page_bytes                           u32 le
//! j0 (hub count)                       u64 le
//! total_levels (Σ level_counts)        u64 le
//! entries (total postings E)           u64 le
//! hubs                                 4·j0
//! level_counts                         4·j0
//! offsets (global, 0-based, monotone)  4·(total_levels+1)
//! meta_checksum (FNV-1a of the above)  u64 le
//! page_count                           u64 le
//! page index: {offset u64, len u32, checksum u64} · page_count
//! blob = nodes bytes (4E) ++ reserve bytes (8E or 4E),
//!        split into page_bytes pages (last page short)
//! ```
//!
//! The header, hub tables, offsets and page index stay resident (they
//! are a fraction of a percent of the blob); only blob pages go through
//! the pool. Every open-time table is validated exactly like v3 —
//! monotone offsets, in-range hubs, page-index entries that match the
//! computed layout, no trailing bytes — and every allocation is bounded
//! by the file length, so corrupt input yields a structured error,
//! never a panic or an attacker-sized allocation. Page *content*
//! (node ids, reserve values) is validated at decode time by the index,
//! since it is only read page-by-page.

use std::path::Path;

use prsim_graph::NodeId;
use prsim_storage::Storage;

use crate::index::ReservePrecision;
use crate::PrsimError;

/// Magic bytes of the paged format, version 4.
pub(crate) const PAGE_MAGIC: &[u8; 8] = b"PRSIMIX4";

/// Flag bit: reserves are f32.
pub(crate) const FLAG_F32: u32 = 1;

/// Smallest permitted page (a page must hold at least a few entries).
pub(crate) const MIN_PAGE_BYTES: u32 = 64;

/// Largest permitted page (1 GiB — beyond this "paging" is fiction).
pub(crate) const MAX_PAGE_BYTES: u32 = 1 << 30;

/// Fixed-size header length: magic + flags + page_bytes + j0 +
/// total_levels + entries.
const HEADER_BYTES: usize = 8 + 4 + 4 + 8 + 8 + 8;

/// Bytes per page-index entry: offset + len + checksum.
pub(crate) const PAGE_ENTRY_BYTES: usize = 8 + 4 + 8;

/// FNV-1a over a sequence of chunks (the same function the WAL uses;
/// kept local so core does not depend on the server crate).
pub(crate) fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// One page-index entry: where the page lives in the file and what its
/// bytes must hash to.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PageEntry {
    /// Absolute file offset of the page's first byte.
    pub offset: u64,
    /// Page length in bytes (equal to `page_bytes` except the tail).
    pub len: u32,
    /// FNV-1a of the page bytes.
    pub checksum: u64,
}

/// The resident metadata of an opened v4 file: everything except the
/// blob pages themselves.
#[derive(Clone, Debug)]
pub(crate) struct PageFileMeta {
    /// Reserve storage width of the blob.
    pub precision: ReservePrecision,
    /// Fixed page size in bytes.
    pub page_bytes: u32,
    /// Hub node ids in descending reverse-PageRank order.
    pub hubs: Vec<NodeId>,
    /// Per-hub stored level counts.
    pub level_counts: Vec<u32>,
    /// Global 0-based monotone entry offsets (one run per hub level).
    pub offsets: Vec<u32>,
    /// Total postings entries `E`.
    pub entries: u32,
    /// Validated page index.
    pub pages: Vec<PageEntry>,
}

impl PageFileMeta {
    /// Reserve width in bytes.
    pub fn reserve_width(&self) -> usize {
        match self.precision {
            ReservePrecision::F64 => 8,
            ReservePrecision::F32 => 4,
        }
    }
}

fn corrupt(msg: impl Into<String>) -> PrsimError {
    PrsimError::CorruptIndex(msg.into())
}

/// Writes a v4 page file atomically (temp file + fsync + rename +
/// directory sync — the WAL checkpoint discipline). `offsets` is the
/// global monotone entry-offset table and `blob` the postings payload
/// (`nodes` bytes then reserve bytes).
#[allow(clippy::too_many_arguments)] // the args are the v4 header tables
pub(crate) fn write(
    storage: &dyn Storage,
    path: &Path,
    page_bytes: u32,
    precision: ReservePrecision,
    hubs: &[NodeId],
    level_counts: &[u32],
    offsets: &[u32],
    blob: &[u8],
) -> Result<(), PrsimError> {
    if !(MIN_PAGE_BYTES..=MAX_PAGE_BYTES).contains(&page_bytes) {
        return Err(PrsimError::InvalidConfig(format!(
            "page size {page_bytes} outside [{MIN_PAGE_BYTES}, {MAX_PAGE_BYTES}]"
        )));
    }
    let total_levels: u64 = level_counts.iter().map(|&c| u64::from(c)).sum();
    let entries = u64::from(*offsets.last().expect("offsets always hold a 0 sentinel"));

    let mut head = Vec::with_capacity(HEADER_BYTES + 8 * hubs.len() + 4 * offsets.len());
    head.extend_from_slice(PAGE_MAGIC);
    let flags = match precision {
        ReservePrecision::F64 => 0,
        ReservePrecision::F32 => FLAG_F32,
    };
    head.extend_from_slice(&flags.to_le_bytes());
    head.extend_from_slice(&page_bytes.to_le_bytes());
    head.extend_from_slice(&(hubs.len() as u64).to_le_bytes());
    head.extend_from_slice(&total_levels.to_le_bytes());
    head.extend_from_slice(&entries.to_le_bytes());
    for &h in hubs {
        head.extend_from_slice(&h.to_le_bytes());
    }
    for &c in level_counts {
        head.extend_from_slice(&c.to_le_bytes());
    }
    for &o in offsets {
        head.extend_from_slice(&o.to_le_bytes());
    }
    let meta_checksum = fnv1a64(&[&head]);

    let page = page_bytes as usize;
    let page_count = blob.len().div_ceil(page);
    let blob_start = (head.len() + 8 + 8 + page_count * PAGE_ENTRY_BYTES) as u64;
    let mut table = Vec::with_capacity(16 + page_count * PAGE_ENTRY_BYTES);
    table.extend_from_slice(&meta_checksum.to_le_bytes());
    table.extend_from_slice(&(page_count as u64).to_le_bytes());
    for (i, chunk) in blob.chunks(page).enumerate() {
        table.extend_from_slice(&(blob_start + (i * page) as u64).to_le_bytes());
        table.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        table.extend_from_slice(&fnv1a64(&[chunk]).to_le_bytes());
    }

    let io_err = |e: std::io::Error| PrsimError::PageFault(format!("page file write: {e}"));
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let written = (|| -> std::io::Result<()> {
        let mut f = storage.create(&tmp)?;
        f.write_all(&head)?;
        f.write_all(&table)?;
        f.write_all(blob)?;
        f.sync_all()
    })();
    if let Err(e) = written {
        let _ = storage.remove_file(&tmp);
        return Err(io_err(e));
    }
    storage.rename(&tmp, path).map_err(io_err)?;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Err(e) = storage.sync_dir(dir.unwrap_or(Path::new("."))) {
        // Same discipline as a WAL checkpoint: an unsynced rename is not
        // durable, so un-publish rather than report success.
        let _ = storage.remove_file(path);
        return Err(io_err(e));
    }
    Ok(())
}

/// Opens and validates a v4 file's resident metadata; `n` is the node
/// count of the graph the index belongs to. Blob pages are *not* read —
/// that is the buffer pool's job.
pub(crate) fn open(
    storage: &dyn Storage,
    path: &Path,
    n: usize,
) -> Result<PageFileMeta, PrsimError> {
    let io_err = |what: &str, e: std::io::Error| corrupt(format!("{what}: {e}"));
    let file_len = storage
        .file_len(path)
        .map_err(|e| io_err("page file unreadable", e))?;
    if (file_len as usize) < HEADER_BYTES {
        return Err(corrupt("page file header truncated"));
    }
    let head = storage
        .read_prefix(path, HEADER_BYTES)
        .map_err(|e| io_err("page file header unreadable", e))?;
    if &head[..8] != PAGE_MAGIC {
        return Err(corrupt("bad page file magic"));
    }
    let flags = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
    if flags & !FLAG_F32 != 0 {
        return Err(corrupt("unknown page file flags"));
    }
    let precision = if flags & FLAG_F32 != 0 {
        ReservePrecision::F32
    } else {
        ReservePrecision::F64
    };
    let page_bytes = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes"));
    if !(MIN_PAGE_BYTES..=MAX_PAGE_BYTES).contains(&page_bytes) {
        return Err(corrupt(format!("page size {page_bytes} out of range")));
    }
    let j0 = u64::from_le_bytes(head[16..24].try_into().expect("8 bytes")) as usize;
    let total_levels = u64::from_le_bytes(head[24..32].try_into().expect("8 bytes")) as usize;
    let entries64 = u64::from_le_bytes(head[32..40].try_into().expect("8 bytes"));
    if j0 > n {
        return Err(corrupt("hub count exceeds node count"));
    }
    let entries = u32::try_from(entries64).map_err(|_| corrupt("entry count exceeds u32"))?;

    // The whole metadata region must fit in the file before we size any
    // allocation from it.
    let meta_len = j0
        .checked_mul(8)
        .and_then(|hl| total_levels.checked_add(1).map(|t| (hl, t)))
        .and_then(|(hl, t)| t.checked_mul(4).map(|ob| hl + ob))
        .ok_or_else(|| corrupt("metadata size overflows"))?;
    let table_at = HEADER_BYTES
        .checked_add(meta_len)
        .ok_or_else(|| corrupt("metadata size overflows"))?;
    if (table_at + 16) as u64 > file_len {
        return Err(corrupt("metadata tables exceed file length"));
    }
    let meta = storage
        .read_at(path, HEADER_BYTES as u64, meta_len)
        .map_err(|e| io_err("page file metadata unreadable", e))?;

    let mut hubs = Vec::with_capacity(j0);
    let mut seen = vec![false; n];
    for i in 0..j0 {
        let h = u32::from_le_bytes(meta[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        if h as usize >= n || seen[h as usize] {
            return Err(corrupt("hub id out of range or duplicated"));
        }
        seen[h as usize] = true;
        hubs.push(h);
    }
    let mut level_counts = Vec::with_capacity(j0);
    let mut level_sum = 0u64;
    for i in 0..j0 {
        let at = 4 * j0 + 4 * i;
        let lc = u32::from_le_bytes(meta[at..at + 4].try_into().expect("4 bytes"));
        level_sum += u64::from(lc);
        level_counts.push(lc);
    }
    if level_sum != total_levels as u64 {
        return Err(corrupt("level counts disagree with header"));
    }
    let mut offsets = Vec::with_capacity(total_levels + 1);
    let mut prev = 0u32;
    for i in 0..=total_levels {
        let at = 8 * j0 + 4 * i;
        let o = u32::from_le_bytes(meta[at..at + 4].try_into().expect("4 bytes"));
        if (i == 0 && o != 0) || o < prev {
            return Err(corrupt("offset table not monotone from 0"));
        }
        offsets.push(o);
        prev = o;
    }
    if prev != entries {
        return Err(corrupt("offset table total disagrees with header"));
    }

    let tail = storage
        .read_at(path, table_at as u64, 16)
        .map_err(|e| io_err("page file checksum unreadable", e))?;
    let meta_checksum = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
    if fnv1a64(&[&head, &meta]) != meta_checksum {
        return Err(corrupt("metadata checksum mismatch"));
    }
    let page_count64 = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));

    let reserve_width = match precision {
        ReservePrecision::F64 => 8u64,
        ReservePrecision::F32 => 4,
    };
    let blob_len = entries64 * (4 + reserve_width);
    let expect_pages = blob_len.div_ceil(u64::from(page_bytes));
    if page_count64 != expect_pages {
        return Err(corrupt(format!(
            "page count {page_count64} disagrees with blob of {blob_len} bytes"
        )));
    }
    let page_count = page_count64 as usize;
    let blob_start = (table_at + 16 + page_count * PAGE_ENTRY_BYTES) as u64;
    if blob_start
        .checked_add(blob_len)
        .is_none_or(|end| end != file_len)
    {
        return Err(corrupt(
            "file length disagrees with page table (truncated blob or trailing bytes)",
        ));
    }
    let table = storage
        .read_at(path, (table_at + 16) as u64, page_count * PAGE_ENTRY_BYTES)
        .map_err(|e| io_err("page index unreadable", e))?;
    let mut pages = Vec::with_capacity(page_count);
    for i in 0..page_count {
        let at = i * PAGE_ENTRY_BYTES;
        let offset = u64::from_le_bytes(table[at..at + 8].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(table[at + 8..at + 12].try_into().expect("4 bytes"));
        let checksum = u64::from_le_bytes(table[at + 12..at + 20].try_into().expect("8 bytes"));
        let want_offset = blob_start + (i as u64) * u64::from(page_bytes);
        let want_len = u64::from(page_bytes).min(blob_len - (i as u64) * u64::from(page_bytes));
        if offset != want_offset || u64::from(len) != want_len {
            return Err(corrupt(format!(
                "page-index entry {i} out of range (offset {offset}, len {len})"
            )));
        }
        pages.push(PageEntry {
            offset,
            len,
            checksum,
        });
    }

    Ok(PageFileMeta {
        precision,
        page_bytes,
        hubs,
        level_counts,
        offsets,
        entries,
        pages,
    })
}

/// Reads and checksum-verifies one blob page. A read failure or a
/// mismatch is a [`PrsimError::PageFault`] — the caller retries or
/// degrades.
pub(crate) fn read_page(
    storage: &dyn Storage,
    path: &Path,
    meta: &PageFileMeta,
    page: usize,
) -> Result<Vec<u8>, PrsimError> {
    let entry = meta.pages[page];
    let buf = storage
        .read_at(path, entry.offset, entry.len as usize)
        .map_err(|e| PrsimError::PageFault(format!("page {page} read failed: {e}")))?;
    if fnv1a64(&[&buf]) != entry.checksum {
        return Err(PrsimError::PageFault(format!(
            "page {page} checksum mismatch"
        )));
    }
    Ok(buf)
}
