//! Sparse single-source SimRank result vectors.

use prsim_graph::NodeId;
use std::collections::HashMap;

/// Result of a single-source SimRank query: sparse scores `ŝ(u, ·)`.
///
/// Only nodes with non-zero estimates are stored; `get` returns 0.0 for
/// the rest, matching the semantics of all algorithms in the suite (they
/// return "all non-zero estimates", paper Algorithm 4 line 19).
///
/// Internally an id-sorted `Vec<(NodeId, f64)>`: the query engine
/// produces its entries already sorted from dense scratch, so
/// construction is one `memcpy`-shaped pass (no hashing), `get` is a
/// binary search, and iteration is a cache-friendly slice walk. The
/// mutating [`SimRankScores::add`] / [`SimRankScores::set`] keep working
/// (binary search + ordered insert) but are `O(len)` worst case — they
/// exist for tests and small fix-ups, not for bulk assembly; bulk callers
/// use [`SimRankScores::from_map`] or [`SimRankScores::from_pairs`].
#[derive(Clone, Debug)]
pub struct SimRankScores {
    source: NodeId,
    n: usize,
    /// `(v, ŝ(u,v))` sorted by `v`, unique, always containing the source.
    entries: Vec<(NodeId, f64)>,
}

impl SimRankScores {
    /// Creates a score vector for `source` over a graph with `n` nodes;
    /// `s(u,u) = 1` is inserted automatically.
    pub fn new(source: NodeId, n: usize) -> Self {
        SimRankScores {
            source,
            n,
            entries: vec![(source, 1.0)],
        }
    }

    /// Creates a score vector from raw parts (used by the baselines).
    pub fn from_map(source: NodeId, n: usize, scores: HashMap<NodeId, f64>) -> Self {
        let mut entries: Vec<(NodeId, f64)> = scores.into_iter().collect();
        entries.sort_unstable_by_key(|&(v, _)| v);
        let mut out = SimRankScores { source, n, entries };
        out.upsert_source();
        out
    }

    /// Bulk constructor from an iterator of `(v, ŝ(u,v))` pairs with a
    /// known entry count — one sized allocation. Already-sorted unique
    /// input (what the query engine's dense scratch produces) is taken
    /// as-is; anything else is sorted, with later duplicates overwriting
    /// earlier ones. `s(u,u) = 1` is enforced last.
    pub fn from_pairs<I>(source: NodeId, n: usize, count: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, f64)>,
    {
        let mut entries: Vec<(NodeId, f64)> = Vec::with_capacity(count + 1);
        entries.extend(pairs);
        if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
            // Stable sort keeps duplicate keys in insertion order, so
            // "previous keeps the last value" below overwrites correctly.
            entries.sort_by_key(|&(v, _)| v);
            entries.dedup_by(|cur, prev| {
                if cur.0 == prev.0 {
                    prev.1 = cur.1;
                    true
                } else {
                    false
                }
            });
        }
        let mut out = SimRankScores { source, n, entries };
        out.upsert_source();
        out
    }

    /// [`SimRankScores::from_pairs`] for an entry vector the caller
    /// guarantees to be sorted by node id with unique keys (what the
    /// query engine's merge assembly produces) — takes the vector as-is
    /// with no sortedness scan, which is a full extra pass over a large
    /// score vector.
    pub fn from_sorted_entries(source: NodeId, n: usize, entries: Vec<(NodeId, f64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let mut out = SimRankScores { source, n, entries };
        out.upsert_source();
        out
    }

    fn upsert_source(&mut self) {
        match self.entries.binary_search_by_key(&self.source, |&(v, _)| v) {
            Ok(i) => self.entries[i].1 = 1.0,
            Err(i) => self.entries.insert(i, (self.source, 1.0)),
        }
    }

    /// The query node `u`.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Number of nodes in the underlying graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// `ŝ(u, v)`; 0.0 for nodes without a stored estimate.
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        self.entries
            .binary_search_by_key(&v, |&(node, _)| node)
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Adds `delta` to `ŝ(u, v)`. `O(len)` worst case (ordered insert).
    pub fn add(&mut self, v: NodeId, delta: f64) {
        match self.entries.binary_search_by_key(&v, |&(node, _)| node) {
            Ok(i) => self.entries[i].1 += delta,
            Err(i) => self.entries.insert(i, (v, delta)),
        }
    }

    /// Overwrites `ŝ(u, v)`. `O(len)` worst case (ordered insert).
    pub fn set(&mut self, v: NodeId, value: f64) {
        match self.entries.binary_search_by_key(&v, |&(node, _)| node) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (v, value)),
        }
    }

    /// Number of stored (non-zero) entries, including the source.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when only the trivial self-score is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 1
    }

    /// Iterates over stored `(v, ŝ(u,v))` pairs in ascending node-id
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The `k` highest-scoring nodes **excluding the source** (whose score
    /// is trivially 1), sorted by descending score with node-id
    /// tie-breaking — the ranking used for Precision@k and pooling.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut entries: Vec<(NodeId, f64)> = self
            .entries
            .iter()
            .copied()
            .filter(|&(v, _)| v != self.source)
            .collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        entries.truncate(k);
        entries
    }

    /// Materializes the dense score vector of length `n`.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        for &(v, s) in &self.entries {
            out[v as usize] = s;
        }
        out
    }

    /// Largest absolute difference against another score vector over all
    /// `n` nodes (used by the accuracy tests). A merge walk over the two
    /// sorted entry lists: `O(len_a + len_b)`, independent of `n`.
    pub fn max_abs_diff(&self, other: &SimRankScores) -> f64 {
        let a = &self.entries;
        let b = &other.entries;
        let mut worst: f64 = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Equal => {
                    worst = worst.max((a[i].1 - b[j].1).abs());
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    worst = worst.max(a[i].1.abs());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    worst = worst.max(b[j].1.abs());
                    j += 1;
                }
            }
        }
        for &(_, s) in &a[i..] {
            worst = worst.max(s.abs());
        }
        for &(_, s) in &b[j..] {
            worst = worst.max(s.abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_score_is_one() {
        let s = SimRankScores::new(3, 10);
        assert_eq!(s.get(3), 1.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.source(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn add_and_set() {
        let mut s = SimRankScores::new(0, 5);
        s.add(1, 0.25);
        s.add(1, 0.25);
        s.set(2, 0.9);
        assert_eq!(s.get(1), 0.5);
        assert_eq!(s.get(2), 0.9);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn top_k_excludes_source_and_sorts() {
        let mut s = SimRankScores::new(0, 6);
        s.set(1, 0.3);
        s.set(2, 0.7);
        s.set(3, 0.7);
        s.set(4, 0.1);
        let top = s.top_k(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 2); // tie broken by node id
        assert_eq!(top[1].0, 3);
        assert_eq!(top[2].0, 1);
        assert!(s.top_k(100).len() == 4);
    }

    #[test]
    fn dense_round_trip() {
        let mut s = SimRankScores::new(1, 4);
        s.set(3, 0.5);
        assert_eq!(s.to_dense(), vec![0.0, 1.0, 0.0, 0.5]);
    }

    #[test]
    fn max_abs_diff() {
        let mut a = SimRankScores::new(0, 4);
        let mut b = SimRankScores::new(0, 4);
        a.set(2, 0.8);
        b.set(2, 0.6);
        b.set(3, 0.1);
        assert!((a.max_abs_diff(&b) - 0.2).abs() < 1e-12);
        assert!((b.max_abs_diff(&a) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_pairs_sizes_and_inserts_self() {
        let s = SimRankScores::from_pairs(1, 6, 3, vec![(2, 0.4), (3, 0.2), (5, 0.1)]);
        assert_eq!(s.get(1), 1.0);
        assert_eq!(s.get(2), 0.4);
        assert_eq!(s.get(5), 0.1);
        assert_eq!(s.len(), 4);
        // Source score stays 1.0 even when the pairs carry a stale value.
        let s = SimRankScores::from_pairs(0, 3, 1, vec![(0, 0.5)]);
        assert_eq!(s.get(0), 1.0);
    }

    #[test]
    fn from_map_inserts_self() {
        let mut m = HashMap::new();
        m.insert(2u32, 0.4);
        let s = SimRankScores::from_map(1, 5, m);
        assert_eq!(s.get(1), 1.0);
        assert_eq!(s.get(2), 0.4);
    }
}
