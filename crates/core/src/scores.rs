//! Sparse single-source SimRank result vectors.

use prsim_graph::NodeId;
use std::collections::HashMap;

/// Result of a single-source SimRank query: sparse scores `ŝ(u, ·)`.
///
/// Only nodes with non-zero estimates are stored; `get` returns 0.0 for
/// the rest, matching the semantics of all algorithms in the suite (they
/// return "all non-zero estimates", paper Algorithm 4 line 19).
#[derive(Clone, Debug)]
pub struct SimRankScores {
    source: NodeId,
    n: usize,
    scores: HashMap<NodeId, f64>,
}

impl SimRankScores {
    /// Creates a score vector for `source` over a graph with `n` nodes;
    /// `s(u,u) = 1` is inserted automatically.
    pub fn new(source: NodeId, n: usize) -> Self {
        let mut scores = HashMap::new();
        scores.insert(source, 1.0);
        SimRankScores { source, n, scores }
    }

    /// Creates a score vector from raw parts (used by the baselines).
    pub fn from_map(source: NodeId, n: usize, mut scores: HashMap<NodeId, f64>) -> Self {
        scores.insert(source, 1.0);
        SimRankScores { source, n, scores }
    }

    /// The query node `u`.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Number of nodes in the underlying graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// `ŝ(u, v)`; 0.0 for nodes without a stored estimate.
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        self.scores.get(&v).copied().unwrap_or(0.0)
    }

    /// Adds `delta` to `ŝ(u, v)`.
    #[inline]
    pub fn add(&mut self, v: NodeId, delta: f64) {
        *self.scores.entry(v).or_insert(0.0) += delta;
    }

    /// Overwrites `ŝ(u, v)`.
    #[inline]
    pub fn set(&mut self, v: NodeId, value: f64) {
        self.scores.insert(v, value);
    }

    /// Number of stored (non-zero) entries, including the source.
    #[inline]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when only the trivial self-score is stored.
    pub fn is_empty(&self) -> bool {
        self.scores.len() <= 1
    }

    /// Iterates over stored `(v, ŝ(u,v))` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.scores.iter().map(|(&v, &s)| (v, s))
    }

    /// The `k` highest-scoring nodes **excluding the source** (whose score
    /// is trivially 1), sorted by descending score with node-id
    /// tie-breaking — the ranking used for Precision@k and pooling.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut entries: Vec<(NodeId, f64)> = self
            .scores
            .iter()
            .filter(|&(&v, _)| v != self.source)
            .map(|(&v, &s)| (v, s))
            .collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        entries.truncate(k);
        entries
    }

    /// Materializes the dense score vector of length `n`.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        for (&v, &s) in &self.scores {
            out[v as usize] = s;
        }
        out
    }

    /// Largest absolute difference against another score vector over all
    /// `n` nodes (used by the accuracy tests).
    pub fn max_abs_diff(&self, other: &SimRankScores) -> f64 {
        let mut worst: f64 = 0.0;
        for v in 0..self.n as NodeId {
            worst = worst.max((self.get(v) - other.get(v)).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_score_is_one() {
        let s = SimRankScores::new(3, 10);
        assert_eq!(s.get(3), 1.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.source(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn add_and_set() {
        let mut s = SimRankScores::new(0, 5);
        s.add(1, 0.25);
        s.add(1, 0.25);
        s.set(2, 0.9);
        assert_eq!(s.get(1), 0.5);
        assert_eq!(s.get(2), 0.9);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn top_k_excludes_source_and_sorts() {
        let mut s = SimRankScores::new(0, 6);
        s.set(1, 0.3);
        s.set(2, 0.7);
        s.set(3, 0.7);
        s.set(4, 0.1);
        let top = s.top_k(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 2); // tie broken by node id
        assert_eq!(top[1].0, 3);
        assert_eq!(top[2].0, 1);
        assert!(s.top_k(100).len() == 4);
    }

    #[test]
    fn dense_round_trip() {
        let mut s = SimRankScores::new(1, 4);
        s.set(3, 0.5);
        assert_eq!(s.to_dense(), vec![0.0, 1.0, 0.0, 0.5]);
    }

    #[test]
    fn max_abs_diff() {
        let mut a = SimRankScores::new(0, 4);
        let mut b = SimRankScores::new(0, 4);
        a.set(2, 0.8);
        b.set(2, 0.6);
        b.set(3, 0.1);
        assert!((a.max_abs_diff(&b) - 0.2).abs() < 1e-12);
        assert!((b.max_abs_diff(&a) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_map_inserts_self() {
        let mut m = HashMap::new();
        m.insert(2u32, 0.4);
        let s = SimRankScores::from_map(1, 5, m);
        assert_eq!(s.get(1), 1.0);
        assert_eq!(s.get(2), 0.4);
    }
}
