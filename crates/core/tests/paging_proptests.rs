//! Property and chaos tests for the v4 paged postings arena: write/open
//! round trips, byte-level corruption (flipped bytes, truncations,
//! trailing bytes, page-index attacks) handled with structured errors
//! only, hard memory budgets honored under real eviction pressure, and
//! exact-or-degraded query behavior under injected read faults and
//! bit-rot.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use prsim_core::pagerank::{rank_by_pagerank, reverse_pagerank};
use prsim_core::{
    HubCount, PagedOptions, Postings, PostingsScratch, Prsim, PrsimConfig, PrsimIndex, QueryParams,
    QueryPlan, ReservePrecision,
};
use prsim_graph::ordering::sort_out_by_in_degree;
use prsim_graph::{DiGraph, GraphBuilder, NodeId};
use prsim_storage::fault::{FaultPlan, FaultyStorage};
use prsim_storage::FsStorage;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SQRT_C: f64 = 0.774_596_669_241_483_4;

/// A budget no admission check can reject (round-trip tests only
/// exercise correctness, not eviction).
const HUGE_BUDGET: u64 = 1 << 30;

fn tmpdir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "prsim_paging_prop_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Random simple graphs over up to 30 nodes (the builder dedups).
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..120).prop_map(move |es| {
            let mut b = GraphBuilder::new();
            b.ensure_nodes(n);
            for (u, v) in es {
                b.add_edge(u, v);
            }
            let mut g = b.build();
            sort_out_by_in_degree(&mut g);
            g
        })
    })
}

fn arb_precision() -> impl Strategy<Value = ReservePrecision> {
    (0u8..2).prop_map(|wide| {
        if wide == 0 {
            ReservePrecision::F64
        } else {
            ReservePrecision::F32
        }
    })
}

fn build_index(g: &DiGraph, j0: usize, precision: ReservePrecision) -> PrsimIndex {
    let pi = reverse_pagerank(g, SQRT_C, 1e-10, 64);
    let hubs: Vec<NodeId> = rank_by_pagerank(&pi)
        .into_iter()
        .take(j0.min(g.node_count()))
        .collect();
    PrsimIndex::build_tracked_with(g, hubs, SQRT_C, 1e-3, 64, 1, precision).0
}

fn opts(budget: u64) -> PagedOptions {
    PagedOptions {
        page_bytes: 64,
        memory_budget: budget,
        hot_ranks: 0,
    }
}

/// Writes `idx` as a v4 page file and reopens it out of core.
fn round_trip(
    idx: &PrsimIndex,
    n: usize,
    budget: u64,
) -> Result<PrsimIndex, prsim_core::PrsimError> {
    let dir = tmpdir();
    let path = dir.join("arena.pages");
    idx.write_paged(&FsStorage, &path, 64)?;
    PrsimIndex::open_paged(Arc::new(FsStorage), &path, n, &opts(budget))
}

fn collect(p: &Postings<'_>) -> Vec<(NodeId, f64)> {
    p.iter().collect()
}

/// Every (hub, level) run of `paged` must either read back exactly
/// `resident`'s run or fail with a structured error — never panic,
/// never return different postings.
fn assert_exact_or_fault(resident: &PrsimIndex, paged: &PrsimIndex) -> Result<(), String> {
    let mut scratch = PostingsScratch::new();
    for &w in resident.hubs() {
        for level in 0..128usize {
            let truth = resident.postings(w, level).map(|p| collect(&p));
            match paged.postings_in(w, level, &mut scratch) {
                Ok(run) => {
                    prop_assert_eq!(run.as_ref().map(collect), truth.clone());
                }
                Err(prsim_core::PrsimError::PageFault(_)) => {}
                Err(other) => {
                    return Err(format!("non-fault error: {other}"));
                }
            }
            if truth.is_none() {
                break;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// write_paged/open_paged is the identity for arenas over arbitrary
    /// graphs, hub counts and both precisions, and the paged arena
    /// serves every run bit-identically through the buffer pool.
    #[test]
    fn paged_round_trips(g in arb_graph(), j0 in 0usize..30, p in arb_precision()) {
        let idx = build_index(&g, j0, p);
        let paged = round_trip(&idx, g.node_count(), HUGE_BUDGET)
            .map_err(|e| format!("round trip rejected: {e}"))?;
        prop_assert_eq!(idx.precision(), paged.precision());
        prop_assert_eq!(idx.entry_count(), paged.entry_count());
        prop_assert!(!paged.is_resident());
        let mut scratch = PostingsScratch::new();
        for &w in idx.hubs() {
            for level in 0..128usize {
                let truth = idx.postings(w, level).map(|p| collect(&p));
                let run = paged
                    .postings_in(w, level, &mut scratch)
                    .map_err(|e| format!("fault-free read failed: {e}"))?;
                prop_assert_eq!(run.as_ref().map(collect), truth.clone());
                if truth.is_none() {
                    break;
                }
            }
        }
        prop_assert_eq!(&idx, &paged);
    }

    /// Any single-byte corruption of a v4 file is either rejected at
    /// open (metadata is checksummed; page-index entries are validated
    /// against the computed layout) or surfaces as a per-page
    /// [`prsim_core::PrsimError::PageFault`] at read time (page bytes
    /// are checksummed). Reads that succeed return exactly the original
    /// postings; nothing panics.
    #[test]
    fn paged_corruption_is_exact_or_fault(g in arb_graph(), j0 in 1usize..20,
                                          p in arb_precision(),
                                          pos in 0usize..1 << 20, mask in 1u8..255) {
        let idx = build_index(&g, j0, p);
        let dir = tmpdir();
        let path = dir.join("arena.pages");
        idx.write_paged(&FsStorage, &path, 64).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let at = pos % bytes.len();
        bytes[at] ^= mask;
        fs::write(&path, &bytes).unwrap();
        if let Ok(paged) =
            PrsimIndex::open_paged(Arc::new(FsStorage), &path, g.node_count(), &opts(HUGE_BUDGET))
        {
            assert_exact_or_fault(&idx, &paged)?;
        }
    }

    /// Every truncation of a valid page file is rejected at open: the
    /// validated layout must account for the file length exactly.
    #[test]
    fn paged_truncation_always_rejected(g in arb_graph(), j0 in 1usize..20,
                                        p in arb_precision(), cut_frac in 0.0f64..1.0) {
        let idx = build_index(&g, j0, p);
        let dir = tmpdir();
        let path = dir.join("arena.pages");
        idx.write_paged(&FsStorage, &path, 64).unwrap();
        let bytes = fs::read(&path).unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(
            PrsimIndex::open_paged(Arc::new(FsStorage), &path, g.node_count(),
                                   &opts(HUGE_BUDGET)).is_err(),
            "truncation at {} of {} accepted", cut, bytes.len()
        );
    }

    /// Trailing garbage after the blob is rejected at open for the same
    /// reason.
    #[test]
    fn paged_trailing_bytes_rejected(g in arb_graph(), j0 in 1usize..20,
                                     extra in 1usize..64) {
        let idx = build_index(&g, j0, ReservePrecision::F64);
        let dir = tmpdir();
        let path = dir.join("arena.pages");
        idx.write_paged(&FsStorage, &path, 64).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend(std::iter::repeat_n(0xABu8, extra));
        fs::write(&path, &bytes).unwrap();
        prop_assert!(PrsimIndex::open_paged(
            Arc::new(FsStorage), &path, g.node_count(), &opts(HUGE_BUDGET)).is_err());
    }

    /// Overwriting a page-index entry's offset field with anything but
    /// the computed layout value is rejected at open (out-of-range
    /// page-index entries must never reach the pool).
    #[test]
    fn paged_page_index_attack_rejected(g in arb_graph(), j0 in 1usize..20,
                                        entry_raw in 0usize..4096, value in 0u64..u64::MAX) {
        let idx = build_index(&g, j0, ReservePrecision::F64);
        prop_assume!(idx.entry_count() > 0);
        let dir = tmpdir();
        let path = dir.join("arena.pages");
        idx.write_paged(&FsStorage, &path, 64).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Layout: header(40) + hubs/level_counts(8·j0) + offsets +
        // meta_checksum(8) + page_count(8) + entries of 20 bytes each.
        let j0n = idx.hub_count();
        let slots = idx.stats().level_slots + 1;
        let table_at = 40 + 8 * j0n + 4 * slots + 16;
        let page_count =
            u64::from_le_bytes(bytes[table_at - 8..table_at].try_into().unwrap()) as usize;
        prop_assume!(page_count > 0);
        let at = table_at + (entry_raw % page_count) * 20;
        let original = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        prop_assume!(value != original);
        bytes[at..at + 8].copy_from_slice(&value.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        prop_assert!(PrsimIndex::open_paged(
            Arc::new(FsStorage), &path, g.node_count(), &opts(HUGE_BUDGET)).is_err());
    }
}

// ---------------------------------------------------------------------
// Engine-level: budgets and exact-or-degraded serving.
// ---------------------------------------------------------------------

fn engine_config() -> PrsimConfig {
    PrsimConfig {
        eps: 0.2,
        hubs: HubCount::SqrtN,
        query: QueryParams::Explicit { dr: 400, fr: 1 },
        ..Default::default()
    }
}

fn pressure_graph() -> DiGraph {
    prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(1_000, 8.0, 2.0, 7))
}

/// Builds the resident truth engine plus a paged twin served from
/// `storage`, both pinned to the Reference plan so the comparison is
/// bit-exact by construction.
fn paged_twin(
    g: &DiGraph,
    storage: Arc<dyn prsim_storage::Storage>,
    path: &std::path::Path,
    paged_opts: &PagedOptions,
) -> (Prsim, Prsim) {
    let config = engine_config();
    let mut resident = Prsim::build(g.clone(), config.clone()).unwrap();
    resident.set_query_plan(QueryPlan::Reference);
    resident
        .index()
        .write_paged(&FsStorage, path, paged_opts.page_bytes)
        .unwrap();
    let index = PrsimIndex::open_paged(storage, path, g.node_count(), paged_opts).unwrap();
    // from_parts re-derives π over the engine's (already sorted) graph.
    let sorted = resident.graph().clone();
    let pi = reverse_pagerank(&sorted, config.sqrt_c(), 1e-12, config.max_level);
    let mut paged = Prsim::from_parts(sorted, pi, index, config).unwrap();
    paged.set_query_plan(QueryPlan::Reference);
    (resident, paged)
}

/// The ISSUE acceptance bar: an arena at least 4× the memory budget
/// loads, serves bit-identically to fully-resident when fault-free, and
/// the pool's peak resident bytes never exceed the budget.
#[test]
fn paged_serves_bit_identical_under_4x_budget_pressure() {
    let g = pressure_graph();
    let config = engine_config();
    let resident_probe = Prsim::build(g.clone(), config).unwrap();
    let width = match resident_probe.index().precision() {
        ReservePrecision::F64 => 8,
        ReservePrecision::F32 => 4,
    };
    let blob_bytes = resident_probe.index().entry_count() as u64 * (4 + width);
    let budget = blob_bytes / 4;
    assert!(
        blob_bytes >= 4 * budget && budget > 0,
        "arena too small to exercise pressure: {blob_bytes} blob bytes"
    );
    drop(resident_probe);

    let dir = tmpdir();
    let path = dir.join("arena.pages");
    // hot_ranks stays 0: the top hubs own most of the arena, so any
    // pinned hot set busts a blob/4 budget by itself (hot pinning is
    // exercised by the fault-injection test below, where the budget is
    // generous).
    let paged_opts = PagedOptions {
        page_bytes: 256,
        memory_budget: budget,
        hot_ranks: 0,
    };
    let (resident, paged) = paged_twin(&g, Arc::new(FsStorage), &path, &paged_opts);

    for source in [0u32, 17, 311, 640, 999] {
        let truth = resident
            .try_single_source(source, &mut StdRng::seed_from_u64(u64::from(source)))
            .unwrap();
        let (scores, stats) = paged
            .try_single_source(source, &mut StdRng::seed_from_u64(u64::from(source)))
            .unwrap();
        assert!(!stats.degraded, "fault-free serving must be exact");
        assert_eq!(stats.page_fallbacks, 0);
        assert_eq!(scores.top_k(50), truth.0.top_k(50), "source {source}");
    }

    let p = paged.index().paging_stats().expect("paged engine");
    assert!(
        p.peak_resident_bytes <= budget,
        "peak resident {} exceeds budget {}",
        p.peak_resident_bytes,
        budget
    );
    assert!(p.evictions > 0, "a 4x-budget arena must evict");
    assert!(!paged.index().paging_unhealthy());
    let _ = fs::remove_dir_all(&dir);
}

/// A budget smaller than the resident metadata + hot set + one working
/// frame is rejected up front with `InvalidConfig` — admission control,
/// not a later OOM.
#[test]
fn paged_budget_admission_rejects_infeasible_budgets() {
    let g = pressure_graph();
    let engine = Prsim::build(g.clone(), engine_config()).unwrap();
    let dir = tmpdir();
    let path = dir.join("arena.pages");
    engine.index().write_paged(&FsStorage, &path, 256).unwrap();
    let starved = PagedOptions {
        page_bytes: 256,
        memory_budget: 64,
        hot_ranks: 0,
    };
    match PrsimIndex::open_paged(Arc::new(FsStorage), &path, g.node_count(), &starved) {
        Err(prsim_core::PrsimError::InvalidConfig(_)) => {}
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chaos: under injected page-read faults and bit-rot, every query
    /// either matches the resident truth bit-for-bit or reports
    /// `degraded = true` — never a wrong answer, never a crash.
    #[test]
    fn paged_queries_exact_or_degraded_under_read_faults(
        seed in 0u64..u64::MAX,
        read_per_mille in 0u16..400,
        bitrot_per_mille in 0u16..200,
    ) {
        let g = pressure_graph();
        let dir = tmpdir();
        let path = dir.join("arena.pages");
        // Disarmed while the file is opened (open-time metadata reads
        // must succeed to get an engine at all); armed for the queries.
        let faulty = Arc::new(FaultyStorage::new_disarmed(
            Arc::new(FsStorage),
            FaultPlan {
                read_per_mille,
                bitrot_per_mille,
                ..FaultPlan::none(seed)
            },
        ));
        let paged_opts = PagedOptions {
            page_bytes: 256,
            memory_budget: 1 << 22,
            hot_ranks: 8,
        };
        let (resident, paged) = paged_twin(&g, Arc::clone(&faulty) as _, &path, &paged_opts);
        faulty.set_armed(true);

        for source in [3u32, 512, 901] {
            let q_seed = seed ^ u64::from(source);
            let (truth, _) = resident
                .try_single_source(source, &mut StdRng::seed_from_u64(q_seed))
                .unwrap();
            let (scores, stats) = paged
                .try_single_source(source, &mut StdRng::seed_from_u64(q_seed))
                .map_err(|e| format!("query died under faults: {e}"))?;
            if !stats.degraded {
                prop_assert_eq!(scores.top_k(50), truth.top_k(50),
                                "non-degraded answer differs at source {}", source);
            } else {
                prop_assert!(stats.page_fallbacks > 0);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
