//! Determinism guarantees of the dense-scratch query engine:
//!
//! 1. workspace-reused queries are bit-identical to fresh-workspace
//!    queries (the epoch-stamping invariant of `prsim_core::workspace`);
//! 2. the lock-free chunked `batch_single_source` exactly matches serial
//!    execution for every thread count;
//! 3. the geometric-length walk sampler matches the per-step reference
//!    sampler's terminal distribution (the heavy statistical version
//!    lives in `walk::tests`; here we pin the moments on a cycle).

use prsim_core::walk::{sample_terminal, sample_terminal_per_step, Terminal};
use prsim_core::{Prsim, PrsimConfig, QueryParams, QueryWorkspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine(seed: u64) -> Prsim {
    let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(300, 6.0, 2.0, seed));
    Prsim::build(
        g,
        PrsimConfig {
            eps: 0.1,
            query: QueryParams::Practical { c_mult: 5.0 },
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn workspace_reuse_is_bit_identical_to_fresh() {
    let e = engine(11);
    let queries = [0u32, 42, 7, 42, 199, 0, 250];
    let mut reused = QueryWorkspace::new();
    for (i, &u) in queries.iter().enumerate() {
        let seed = 5000 + i as u64;
        // Fresh workspace (the plain entry point allocates one).
        let (fresh, fresh_stats) = e
            .try_single_source(u, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        // Workspace that has already served every previous query.
        let (warm, warm_stats) = e
            .try_single_source_with_workspace(u, &mut reused, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(fresh_stats.walks, warm_stats.walks);
        assert_eq!(fresh_stats.backward_walks, warm_stats.backward_walks);
        assert_eq!(fresh_stats.backward_cost, warm_stats.backward_cost);
        assert_eq!(fresh_stats.index_entries, warm_stats.index_entries);
        assert_eq!(fresh.len(), warm.len(), "query {i} (u = {u}): entry counts");
        // Bit-identical: every stored score matches exactly, both ways.
        for (v, s) in fresh.iter() {
            assert!(
                warm.get(v) == s,
                "query {i} (u = {u}): s({u},{v}) fresh {s:e} vs warm {:e}",
                warm.get(v)
            );
        }
        assert_eq!(fresh.max_abs_diff(&warm), 0.0);
    }
}

#[test]
fn median_rounds_are_workspace_invariant_too() {
    // fr > 1 exercises the round-entries + median-buffer scratch.
    let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(150, 5.0, 2.0, 23));
    let e = Prsim::build(
        g,
        PrsimConfig {
            eps: 0.1,
            query: QueryParams::Explicit { dr: 400, fr: 5 },
            ..Default::default()
        },
    )
    .unwrap();
    let mut reused = QueryWorkspace::new();
    for (i, u) in [3u32, 77, 3, 149].into_iter().enumerate() {
        let seed = 900 + i as u64;
        let (fresh, _) = e
            .try_single_source(u, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let (warm, _) = e
            .try_single_source_with_workspace(u, &mut reused, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(fresh.max_abs_diff(&warm), 0.0, "fr=5 query {i} diverged");
    }
}

#[test]
fn cached_source_queries_are_workspace_invariant() {
    // Queries from a *cached* source drive the cache's hardest path:
    // every walk consumes a pool draw at step 0, the cursor sweeps most
    // of the source pool, and η verdicts come from the bit pool. Reused
    // cursors (epoch-stamped in the workspace) must behave bit-identically
    // to fresh ones, and the cache must actually be serving draws.
    let e = engine(11); // default config: walk cache on
    let hub = e.index().hubs()[0]; // top-π node: cached by construction
    assert!(e.walk_cache().expect("cache on by default").is_cached(hub));
    let mut reused = QueryWorkspace::new();
    for (i, u) in [hub, 0, hub, hub].into_iter().enumerate() {
        let seed = 7_000 + i as u64;
        let (fresh, fresh_stats) = e
            .try_single_source(u, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let (warm, warm_stats) = e
            .try_single_source_with_workspace(u, &mut reused, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(fresh_stats.cached_terminals, warm_stats.cached_terminals);
        assert_eq!(fresh_stats.cached_eta, warm_stats.cached_eta);
        if u == hub {
            assert!(
                fresh_stats.cached_terminals > 0,
                "query {i}: cached source must consume pool draws"
            );
        }
        assert_eq!(fresh.max_abs_diff(&warm), 0.0, "query {i} (u = {u})");
    }
}

#[test]
fn batch_matches_serial_for_every_thread_count() {
    let e = engine(31);
    let queries = [0u32, 7, 33, 99, 45, 12, 80, 211, 5, 298, 150];
    let base_seed = 4242;
    let serial = e.batch_single_source(&queries, 1, base_seed).unwrap();
    for threads in 2..=8usize {
        let parallel = e.batch_single_source(&queries, threads, base_seed).unwrap();
        assert_eq!(parallel.len(), queries.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                a.max_abs_diff(b),
                0.0,
                "threads = {threads}, query {i} diverged from serial"
            );
            assert_eq!(a.len(), b.len());
        }
    }
    // More threads than queries must also be exact (chunks of size 1).
    let oversub = e.batch_single_source(&queries, 64, base_seed).unwrap();
    for (a, b) in serial.iter().zip(&oversub) {
        assert_eq!(a.max_abs_diff(b), 0.0);
    }
}

#[test]
fn geometric_sampler_moments_match_per_step_on_cycle() {
    // Level distribution on a cycle is pure geometric; compare the mean
    // and survival tail of the two samplers (full per-level histogram
    // comparison lives next to the samplers in walk::tests).
    let g = prsim_gen::toys::cycle(7);
    let sqrt_c = 0.6f64.sqrt();
    let trials = 80_000;
    let mut rngs = (StdRng::seed_from_u64(0xFACE), StdRng::seed_from_u64(0xCAFE));
    let (mut geo_sum, mut ref_sum) = (0.0f64, 0.0f64);
    let (mut geo_tail, mut ref_tail) = (0usize, 0usize);
    for _ in 0..trials {
        if let Terminal::At { level, .. } = sample_terminal(&g, sqrt_c, 0, 64, &mut rngs.0) {
            geo_sum += level as f64;
            if level >= 4 {
                geo_tail += 1;
            }
        }
        if let Terminal::At { level, .. } = sample_terminal_per_step(&g, sqrt_c, 0, 64, &mut rngs.1)
        {
            ref_sum += level as f64;
            if level >= 4 {
                ref_tail += 1;
            }
        }
    }
    let (geo_mean, ref_mean) = (geo_sum / trials as f64, ref_sum / trials as f64);
    let want_mean = sqrt_c / (1.0 - sqrt_c); // E[Geom] = √c/(1−√c)
    assert!(
        (geo_mean - ref_mean).abs() < 0.05,
        "mean level: geometric {geo_mean:.3} vs per-step {ref_mean:.3}"
    );
    assert!((geo_mean - want_mean).abs() < 0.05);
    let (gt, rt) = (
        geo_tail as f64 / trials as f64,
        ref_tail as f64 / trials as f64,
    );
    assert!(
        (gt - rt).abs() < 0.01,
        "P(level >= 4): geometric {gt:.4} vs per-step {rt:.4}"
    );
}
