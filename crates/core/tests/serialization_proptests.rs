//! Property tests for [`PrsimIndex`] serialization: round trips over
//! arbitrary graphs, and byte-level corruption handled without panics or
//! attacker-sized allocations.

use proptest::prelude::*;
use prsim_core::pagerank::{rank_by_pagerank, reverse_pagerank};
use prsim_core::PrsimIndex;
use prsim_graph::ordering::sort_out_by_in_degree;
use prsim_graph::{DiGraph, GraphBuilder, NodeId};

const SQRT_C: f64 = 0.774_596_669_241_483_4;

/// Random simple graphs over up to 30 nodes (the builder dedups).
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..120).prop_map(move |es| {
            let mut b = GraphBuilder::new();
            b.ensure_nodes(n);
            for (u, v) in es {
                b.add_edge(u, v);
            }
            let mut g = b.build();
            sort_out_by_in_degree(&mut g);
            g
        })
    })
}

fn build_index(g: &DiGraph, j0: usize) -> PrsimIndex {
    let pi = reverse_pagerank(g, SQRT_C, 1e-10, 64);
    let hubs: Vec<NodeId> = rank_by_pagerank(&pi)
        .into_iter()
        .take(j0.min(g.node_count()))
        .collect();
    PrsimIndex::build(g, hubs, SQRT_C, 1e-3, 64, 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// to_bytes/from_bytes is the identity for indexes over arbitrary
    /// graphs and hub counts (including 0 and n).
    #[test]
    fn index_round_trips(g in arb_graph(), j0 in 0usize..30) {
        let idx = build_index(&g, j0);
        let bytes = idx.to_bytes();
        let back = PrsimIndex::from_bytes(&bytes, g.node_count())
            .map_err(|e| format!("round trip rejected: {e}"))?;
        prop_assert_eq!(idx, back);
    }

    /// Random single-byte corruption must never panic, and whatever
    /// `from_bytes` accepts must still be a structurally valid index for
    /// the graph (validation is what protects query code from reading
    /// out of range).
    #[test]
    fn index_corruption_never_panics(g in arb_graph(), j0 in 1usize..20,
                                     pos in 0usize..1 << 16, mask in 1u8..255) {
        let idx = build_index(&g, j0);
        let mut bytes = idx.to_bytes().to_vec();
        let at = pos % bytes.len();
        bytes[at] ^= mask;
        if let Ok(parsed) = PrsimIndex::from_bytes(&bytes, g.node_count()) {
            // Accepted despite the flip (e.g. a ψ mantissa bit): every
            // invariant queries rely on must still hold.
            prop_assert!(parsed.hub_count() <= g.node_count());
            for &h in parsed.hubs() {
                prop_assert!((h as usize) < g.node_count());
                prop_assert!(parsed.contains(h));
            }
            for rank in 0..parsed.hub_count() {
                let w = parsed.hubs()[rank];
                let mut level = 0usize;
                while let Some(list) = parsed.level_list(w, level) {
                    for &(v, psi) in list {
                        prop_assert!((v as usize) < g.node_count());
                        prop_assert!(psi.is_finite() && psi >= 0.0);
                    }
                    level += 1;
                    if level > 128 { break; }
                }
            }
        }
    }

    /// Every truncation of a valid payload is rejected with an error.
    #[test]
    fn index_truncation_always_rejected(g in arb_graph(), j0 in 1usize..20,
                                        cut_frac in 0.0f64..1.0) {
        let idx = build_index(&g, j0);
        let bytes = idx.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(
            PrsimIndex::from_bytes(&bytes[..cut], g.node_count()).is_err(),
            "truncation at {} of {} accepted", cut, bytes.len()
        );
    }

    /// A hub count claiming more hubs than `n` (the oversized-allocation
    /// vector) is rejected before any allocation proportional to it.
    #[test]
    fn index_rejects_oversized_hub_counts(g in arb_graph(), claim in 0u64..u64::MAX) {
        let idx = build_index(&g, 2);
        let mut bytes = idx.to_bytes().to_vec();
        let n = g.node_count() as u64;
        prop_assume!(claim > n);
        bytes[8..16].copy_from_slice(&claim.to_le_bytes());
        prop_assert!(PrsimIndex::from_bytes(&bytes, g.node_count()).is_err());
    }
}
