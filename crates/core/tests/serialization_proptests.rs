//! Property tests for [`PrsimIndex`] serialization: round trips of the
//! flat postings arena (both reserve precisions) over arbitrary graphs,
//! and byte-level corruption — including targeted offset-table attacks —
//! handled without panics or attacker-sized allocations.

use proptest::prelude::*;
use prsim_core::pagerank::{rank_by_pagerank, reverse_pagerank};
use prsim_core::{PrsimIndex, ReservePrecision};
use prsim_graph::ordering::sort_out_by_in_degree;
use prsim_graph::{DiGraph, GraphBuilder, NodeId};

const SQRT_C: f64 = 0.774_596_669_241_483_4;

/// Random simple graphs over up to 30 nodes (the builder dedups).
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..120).prop_map(move |es| {
            let mut b = GraphBuilder::new();
            b.ensure_nodes(n);
            for (u, v) in es {
                b.add_edge(u, v);
            }
            let mut g = b.build();
            sort_out_by_in_degree(&mut g);
            g
        })
    })
}

fn arb_precision() -> impl Strategy<Value = ReservePrecision> {
    (0u8..2).prop_map(|wide| {
        if wide == 0 {
            ReservePrecision::F64
        } else {
            ReservePrecision::F32
        }
    })
}

fn build_index(g: &DiGraph, j0: usize, precision: ReservePrecision) -> PrsimIndex {
    let pi = reverse_pagerank(g, SQRT_C, 1e-10, 64);
    let hubs: Vec<NodeId> = rank_by_pagerank(&pi)
        .into_iter()
        .take(j0.min(g.node_count()))
        .collect();
    PrsimIndex::build_tracked_with(g, hubs, SQRT_C, 1e-3, 64, 1, precision).0
}

/// Structural invariants query code relies on: whatever `from_bytes`
/// accepts must be safe to scan.
fn assert_structurally_valid(parsed: &PrsimIndex, n: usize) -> Result<(), String> {
    let check = |ok: bool, what: &str| {
        if ok {
            Ok(())
        } else {
            Err(format!("accepted index violates: {what}"))
        }
    };
    check(parsed.hub_count() <= n, "hub count <= n")?;
    for &h in parsed.hubs() {
        check((h as usize) < n, "hub id in range")?;
        check(parsed.contains(h), "hub_pos consistent")?;
    }
    for rank in 0..parsed.hub_count() {
        let w = parsed.hubs()[rank];
        let mut level = 0usize;
        while let Some(postings) = parsed.postings(w, level) {
            for (v, psi) in postings.iter() {
                check((v as usize) < n, "posting node in range")?;
                check(psi.is_finite() && psi >= 0.0, "posting reserve sane")?;
            }
            level += 1;
            if level > 128 {
                break;
            }
        }
    }
    Ok(())
}

/// Byte position where the serialized offset table starts (see the
/// format doc in `index.rs`): magic(8) + flags(4) + j0(8) + hubs(4·j0) +
/// level_counts(4·j0).
fn offsets_at(idx: &PrsimIndex) -> usize {
    8 + 4 + 8 + 8 * idx.hub_count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// to_bytes/from_bytes is the identity for arenas over arbitrary
    /// graphs, hub counts (including 0 and n) and both precisions.
    #[test]
    fn index_round_trips(g in arb_graph(), j0 in 0usize..30, p in arb_precision()) {
        let idx = build_index(&g, j0, p);
        let bytes = idx.to_bytes();
        let back = PrsimIndex::from_bytes(&bytes, g.node_count())
            .map_err(|e| format!("round trip rejected: {e}"))?;
        prop_assert_eq!(&idx, &back);
        prop_assert_eq!(idx.precision(), back.precision());
        prop_assert_eq!(idx.entry_count(), back.entry_count());
    }

    /// Random single-byte corruption must never panic, and whatever
    /// `from_bytes` accepts must still be a structurally valid index for
    /// the graph (validation is what protects query code from reading
    /// out of range).
    #[test]
    fn index_corruption_never_panics(g in arb_graph(), j0 in 1usize..20,
                                     p in arb_precision(),
                                     pos in 0usize..1 << 16, mask in 1u8..255) {
        let idx = build_index(&g, j0, p);
        let mut bytes = idx.to_bytes().to_vec();
        let at = pos % bytes.len();
        bytes[at] ^= mask;
        if let Ok(parsed) = PrsimIndex::from_bytes(&bytes, g.node_count()) {
            // Accepted despite the flip (e.g. a ψ mantissa bit): every
            // invariant queries rely on must still hold.
            assert_structurally_valid(&parsed, g.node_count())?;
        }
    }

    /// Targeted offset-table corruption: overwriting any offset slot with
    /// an arbitrary value must either be rejected (non-monotone table,
    /// postings overrun) or still parse into a structurally valid index —
    /// never a panic, never an allocation beyond the payload.
    #[test]
    fn offset_table_corruption_is_contained(g in arb_graph(), j0 in 1usize..20,
                                            slot_raw in 0usize..4096,
                                            value in 0u32..u32::MAX) {
        let idx = build_index(&g, j0, ReservePrecision::F64);
        let mut bytes = idx.to_bytes().to_vec();
        let start = offsets_at(&idx);
        // The table has one u32 per stored level plus one.
        let slots = idx.stats().level_slots + 1;
        let at = start + (slot_raw % slots) * 4;
        bytes[at..at + 4].copy_from_slice(&value.to_le_bytes());
        if let Ok(parsed) = PrsimIndex::from_bytes(&bytes, g.node_count()) {
            assert_structurally_valid(&parsed, g.node_count())?;
        }
    }

    /// A decreasing offset pair is always rejected as non-monotone.
    #[test]
    fn non_monotone_offsets_always_rejected(g in arb_graph(), j0 in 1usize..20) {
        let idx = build_index(&g, j0, ReservePrecision::F64);
        prop_assume!(idx.entry_count() > 0);
        let mut bytes = idx.to_bytes().to_vec();
        let start = offsets_at(&idx);
        // Force offsets[1] above the grand total: some later offset must
        // then decrease (the table ends at entry_count), so parsing has
        // to reject — it must never mis-slice the arena.
        let poison = idx.entry_count() as u32 + 1;
        bytes[start + 4..start + 8].copy_from_slice(&poison.to_le_bytes());
        prop_assert!(PrsimIndex::from_bytes(&bytes, g.node_count()).is_err());
    }

    /// Every truncation of a valid payload is rejected with an error.
    #[test]
    fn index_truncation_always_rejected(g in arb_graph(), j0 in 1usize..20,
                                        p in arb_precision(), cut_frac in 0.0f64..1.0) {
        let idx = build_index(&g, j0, p);
        let bytes = idx.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(
            PrsimIndex::from_bytes(&bytes[..cut], g.node_count()).is_err(),
            "truncation at {} of {} accepted", cut, bytes.len()
        );
    }

    /// A hub count claiming more hubs than `n` (the oversized-allocation
    /// vector) is rejected before any allocation proportional to it.
    #[test]
    fn index_rejects_oversized_hub_counts(g in arb_graph(), claim in 0u64..u64::MAX) {
        let idx = build_index(&g, 2, ReservePrecision::F64);
        let mut bytes = idx.to_bytes().to_vec();
        let n = g.node_count() as u64;
        prop_assume!(claim > n);
        bytes[12..20].copy_from_slice(&claim.to_le_bytes());
        prop_assert!(PrsimIndex::from_bytes(&bytes, g.node_count()).is_err());
    }

    /// Level counts claiming an offset table (and hence postings) far
    /// beyond the payload are rejected before the table is allocated.
    #[test]
    fn index_rejects_oversized_level_counts(g in arb_graph(), claim in 1u32..u32::MAX) {
        let idx = build_index(&g, 2, ReservePrecision::F64);
        prop_assume!(idx.hub_count() >= 1);
        let mut bytes = idx.to_bytes().to_vec();
        // First level-count slot sits right after the hub table.
        let at = 8 + 4 + 8 + 4 * idx.hub_count();
        prop_assume!(claim as usize > (bytes.len() - at) / 4);
        bytes[at..at + 4].copy_from_slice(&claim.to_le_bytes());
        prop_assert!(PrsimIndex::from_bytes(&bytes, g.node_count()).is_err());
    }
}
