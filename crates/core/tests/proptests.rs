//! Property-based tests of the PRSim core invariants.

use proptest::prelude::*;
use prsim_core::backward::backward_search;
use prsim_core::pagerank::{exact_lhop_rppr_to, reverse_pagerank, second_moment};
use prsim_core::vbbw::variance_bounded_backward_walk;
use prsim_core::walk::{sample_walk, Terminal};
use prsim_core::{HubCount, Prsim, PrsimConfig, PrsimIndex, QueryParams};
use prsim_graph::ordering::sort_out_by_in_degree;
use prsim_graph::DiGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SQRT_C: f64 = 0.774_596_669_241_483_4;

/// Random directed graphs over 3..30 nodes with some edges.
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (3usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..120).prop_map(move |edges| {
            let filtered: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let mut all = filtered;
            all.sort_unstable();
            all.dedup();
            DiGraph::from_edges(n, &all)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pagerank_is_a_subdistribution(g in arb_graph()) {
        let pi = reverse_pagerank(&g, SQRT_C, 1e-12, 128);
        let total: f64 = pi.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9, "Σπ = {total}");
        prop_assert!(pi.iter().all(|&x| x >= 0.0));
        let m2 = second_moment(&pi);
        prop_assert!(m2 <= total * total + 1e-9);
    }

    #[test]
    fn backward_reserves_never_exceed_truth(g in arb_graph(), w_raw in 0u32..30, r_exp in 2u32..6) {
        let w = w_raw % g.node_count() as u32;
        let r_max = 10f64.powi(-(r_exp as i32));
        let res = backward_search(&g, SQRT_C, w, r_max, 40);
        let exact = exact_lhop_rppr_to(&g, SQRT_C, w, res.levels.len().max(1));
        for (l, level) in res.levels.iter().enumerate() {
            for &(v, psi) in level {
                let truth = exact[l][v as usize];
                prop_assert!(psi <= truth + 1e-9, "ψ_{l}({v}) = {psi} > π = {truth}");
                prop_assert!(psi >= 0.0);
            }
        }
    }

    #[test]
    fn walks_are_paths_in_the_reverse_graph(g in arb_graph(), seed in 0u64..1000, src_raw in 0u32..30) {
        let src = src_raw % g.node_count() as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let w = sample_walk(&g, SQRT_C, src, 64, &mut rng);
        prop_assert_eq!(w.path[0], src);
        for win in w.path.windows(2) {
            prop_assert!(
                g.in_neighbors(win[0]).contains(&win[1]),
                "step {} -> {} is not an in-edge",
                win[0],
                win[1]
            );
        }
        if let Terminal::At { node, level } = w.terminal {
            prop_assert_eq!(node, *w.path.last().unwrap());
            prop_assert_eq!(level as usize, w.path.len() - 1);
        }
    }

    #[test]
    fn vbbw_estimates_are_nonnegative_and_finite(g in arb_graph(), seed in 0u64..500, w_raw in 0u32..30, level in 0usize..6) {
        let mut g = g;
        sort_out_by_in_degree(&mut g);
        let w = w_raw % g.node_count() as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let out = variance_bounded_backward_walk(&g, SQRT_C, w, level, &mut rng);
        for &(v, x) in &out.estimates {
            prop_assert!(x.is_finite() && x >= 0.0, "π̂({v}) = {x}");
        }
        // Level 0 is exactly {w: 1-√c}.
        if level == 0 {
            prop_assert_eq!(out.estimates.len(), 1);
            prop_assert!((out.estimates[0].1 - (1.0 - SQRT_C)).abs() < 1e-12);
        }
    }

    #[test]
    fn index_round_trip_is_identity(g in arb_graph(), j0 in 0usize..10) {
        let mut g = g;
        sort_out_by_in_degree(&mut g);
        let pi = reverse_pagerank(&g, SQRT_C, 1e-10, 64);
        let hubs: Vec<u32> = prsim_core::pagerank::rank_by_pagerank(&pi)
            .into_iter()
            .take(j0)
            .collect();
        let idx = PrsimIndex::build(&g, hubs, SQRT_C, 1e-3, 40, 1);
        let back = PrsimIndex::from_bytes(&idx.to_bytes(), g.node_count()).unwrap();
        prop_assert_eq!(idx, back);
    }

    #[test]
    fn query_scores_are_probabilities_ish(g in arb_graph(), seed in 0u64..200, hubs in 0usize..20) {
        let engine = Prsim::build(
            g,
            PrsimConfig {
                eps: 0.2,
                hubs: HubCount::Fixed(hubs),
                query: QueryParams::Explicit { dr: 400, fr: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        let n = engine.graph().node_count() as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let u = seed as u32 % n;
        let scores = engine.single_source(u, &mut rng);
        prop_assert_eq!(scores.get(u), 1.0);
        for (v, s) in scores.iter() {
            prop_assert!(s.is_finite() && s >= 0.0, "ŝ({u},{v}) = {s}");
            // Statistical overshoot is possible but bounded: estimates are
            // averages of [0, 1/(1-√c)²]-valued terms with 400 samples.
            prop_assert!(s <= 1.5, "ŝ({u},{v}) = {s} implausibly large");
        }
    }

    #[test]
    fn corrupt_index_bytes_never_panic(g in arb_graph(), cut in 0usize..4096, flip in 0usize..4096) {
        // Failure injection: arbitrary truncation and bit flips must yield
        // Err (or a still-valid index for benign flips), never a panic.
        let mut g = g;
        sort_out_by_in_degree(&mut g);
        let pi = reverse_pagerank(&g, SQRT_C, 1e-10, 64);
        let hubs: Vec<u32> = prsim_core::pagerank::rank_by_pagerank(&pi)
            .into_iter()
            .take(4)
            .collect();
        let idx = PrsimIndex::build(&g, hubs, SQRT_C, 1e-3, 40, 1);
        let bytes = idx.to_bytes().to_vec();
        // Truncation.
        let cut = cut % (bytes.len() + 1);
        let _ = PrsimIndex::from_bytes(&bytes[..cut], g.node_count());
        // Bit flip.
        let mut flipped = bytes.clone();
        let pos = flip % flipped.len();
        flipped[pos] ^= 0x40;
        let _ = PrsimIndex::from_bytes(&flipped, g.node_count());
    }

    #[test]
    fn query_deterministic_for_seed(g in arb_graph(), seed in 0u64..100) {
        let engine = Prsim::build(g, PrsimConfig {
            query: QueryParams::Explicit { dr: 200, fr: 2 },
            ..Default::default()
        }).unwrap();
        let n = engine.graph().node_count() as u32;
        let u = seed as u32 % n;
        let a = engine.single_source(u, &mut StdRng::seed_from_u64(seed));
        let b = engine.single_source(u, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
