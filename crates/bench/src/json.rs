//! A deliberately small JSON reader/writer shared by the benchmark
//! binaries: enough to validate a benchmark artifact's structure, pull
//! numbers back out for `--check` guardrails, and re-emit preserved
//! blocks when regenerating a file. Not a general-purpose parser (no
//! unicode escapes, no exotic numbers).

use std::collections::BTreeMap;

/// Parsed JSON value.
#[derive(Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string (no unicode escapes).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serializes a value back to compact JSON (used to re-emit preserved
/// blocks verbatim-enough when regenerating a benchmark file).
pub fn render(value: &Value) -> String {
    match value {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{}", *x as i64)
            } else {
                format!("{x}")
            }
        }
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Value::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Obj(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("\"{k}\": {}", render(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| x.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("dangling escape")?;
                *pos += 1;
                out.push(match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    other => return Err(format!("unsupported escape \\{}", other as char)),
                });
            }
            other => out.push(other as char),
        }
    }
    Err("unterminated string".into())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_benchmark_shaped_documents() {
        let text = r#"{"bench": "x", "results": [{"name": "a", "v": 1.5}, {"name": "b", "v": 3}], "ok": true, "none": null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("x"));
        let results = v.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].get("v").and_then(Value::as_f64), Some(3.0));
        // render -> parse is stable.
        let again = parse(&render(&v)).unwrap();
        assert_eq!(render(&again), render(&v));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} accepted");
        }
    }
}
