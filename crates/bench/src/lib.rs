//! # prsim-bench
//!
//! Harness reproducing every table and figure of the PRSim paper's
//! evaluation (§5). Each artifact has a dedicated binary in `src/bin/`
//! (see DESIGN.md §5 for the experiment index); this library holds the
//! shared plumbing: the laptop-scale stand-in datasets, algorithm
//! factories with the paper's parameter grids, and the shared-pool sweep
//! runner.
//!
//! ## Datasets
//!
//! The paper evaluates on DBLP-Author, LiveJournal, IT-2004, Twitter and
//! UK-Union (Table 3) — up to 5.5 billion edges on a 196 GB machine. We
//! substitute synthetic graphs whose *structure* matches what the paper's
//! analysis says drives SimRank hardness: the cumulative out-degree
//! power-law exponent γ and the average degree d̄ (see DESIGN.md §3).
//! Accuracy figures (2–5) run at `n ≈ 2000` so the ground truth can be
//! **exact** (power method) instead of pooled Monte Carlo — this resolves
//! errors down to 1e-10, far below what sampling-based truth allows.
//! Scalability figures (6–7) run on larger graphs without accuracy
//! metrics, exactly like the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod hot;
pub mod json;
pub mod sweep;

pub use datasets::{accuracy_datasets, Dataset};
pub use sweep::{run_dataset_sweep, AlgoSpec, SweepRow};

/// Parses a `--scale <f>` argument from `std::env::args`, defaulting to 1.
pub fn parse_scale() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                return v.max(0.01);
            }
        }
    }
    1.0
}

/// Returns the first free-standing (non-flag) CLI argument, if any.
pub fn parse_subcommand() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--") && a.parse::<f64>().is_err())
}
