//! Shared-pool sweep runner for Figures 2–5.
//!
//! Faithful to §5.1: for each query node, *every* algorithm configuration
//! answers the same query; the union of all top-k answers forms the pool;
//! ground truth is evaluated on the pool; each configuration is scored
//! against the pooled reference set.

use prsim_baselines::{
    MonteCarlo, MonteCarloConfig, ProbeSim, ProbeSimConfig, Reads, ReadsConfig,
    SingleSourceSimRank, Sling, SlingConfig, TopSim, TopSimConfig, Tsf, TsfConfig,
};
use prsim_core::{PrsimConfig, QueryParams};
use prsim_eval::metrics::{avg_error_at_k, precision_at_k};
use prsim_eval::{GroundTruth, PrsimAlgo};
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One algorithm configuration to include in a sweep.
pub struct AlgoSpec {
    /// Parameter description, e.g. "eps=0.05".
    pub params: String,
    /// The built algorithm.
    pub algo: Box<dyn SingleSourceSimRank>,
    /// Preprocessing wall time (0 for index-free methods).
    pub preprocess_seconds: f64,
}

/// Builds the paper's §5.2 parameter grids for one dataset, scaled so the
/// full sweep stays laptop-sized. `heavy` enables the densest settings.
pub fn paper_grids(graph: &Arc<DiGraph>, heavy: bool, seed: u64) -> Vec<AlgoSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut specs: Vec<AlgoSpec> = Vec::new();

    // PRSim: ε ∈ {0.5, 0.1, 0.05, (0.01)}; j0 = √n as in the paper.
    let mut prsim_eps = vec![0.5, 0.1, 0.05];
    if heavy {
        prsim_eps.push(0.01);
    }
    for &eps in &prsim_eps {
        let cfg = PrsimConfig {
            eps,
            query: QueryParams::Practical { c_mult: 3.0 },
            ..Default::default()
        };
        let algo = PrsimAlgo::build((**graph).clone(), cfg).expect("valid config");
        specs.push(AlgoSpec {
            params: format!("eps={eps}"),
            preprocess_seconds: algo.preprocess_seconds,
            algo: Box::new(algo),
        });
    }

    // ProbeSim: ε_a ∈ {0.5, 0.1, 0.05}.
    for &eps in &[0.5, 0.1, 0.05] {
        specs.push(AlgoSpec {
            params: format!("eps={eps}"),
            preprocess_seconds: 0.0,
            algo: Box::new(ProbeSim::new(
                Arc::clone(graph),
                ProbeSimConfig {
                    eps_a: eps,
                    c_mult: 3.0,
                    ..Default::default()
                },
            )),
        });
    }

    // SLING: ε_a ∈ {0.5, 0.1, 0.05}.
    for &eps in &[0.5, 0.1, 0.05] {
        let start = std::time::Instant::now();
        let sling = Sling::build(
            Arc::clone(graph),
            SlingConfig {
                eps_a: eps,
                eta_samples: if heavy { 2_000 } else { 500 },
                ..Default::default()
            },
            &mut rng,
        );
        let t = start.elapsed().as_secs_f64();
        specs.push(AlgoSpec {
            params: format!("eps={eps}"),
            preprocess_seconds: t,
            algo: Box::new(sling),
        });
    }

    // TSF: (Rg, Rq) grid.
    for &(rg, rq) in &[(10usize, 2usize), (100, 20), (300, 40)] {
        let start = std::time::Instant::now();
        let tsf = Tsf::build(
            Arc::clone(graph),
            TsfConfig {
                rg,
                rq,
                ..Default::default()
            },
            &mut rng,
        );
        let t = start.elapsed().as_secs_f64();
        specs.push(AlgoSpec {
            params: format!("Rg={rg},Rq={rq}"),
            preprocess_seconds: t,
            algo: Box::new(tsf),
        });
    }

    // READS: (r, t) grid.
    for &(r, t) in &[(10usize, 2usize), (50, 5), (100, 10)] {
        let start = std::time::Instant::now();
        let reads = Reads::build(Arc::clone(graph), ReadsConfig { c: 0.6, r, t }, &mut rng);
        let el = start.elapsed().as_secs_f64();
        specs.push(AlgoSpec {
            params: format!("r={r},t={t}"),
            preprocess_seconds: el,
            algo: Box::new(reads),
        });
    }

    // TopSim: (T, 1/h) grid.
    for &(depth, inv_h) in &[(1usize, 10usize), (3, 100), (3, 1000)] {
        specs.push(AlgoSpec {
            params: format!("T={depth},1/h={inv_h}"),
            preprocess_seconds: 0.0,
            algo: Box::new(TopSim::new(
                Arc::clone(graph),
                TopSimConfig {
                    depth,
                    degree_threshold: inv_h,
                    ..Default::default()
                },
            )),
        });
    }

    // Monte Carlo reference point (not in the paper's figures; useful
    // sanity anchor).
    specs.push(AlgoSpec {
        params: "nr=400".into(),
        preprocess_seconds: 0.0,
        algo: Box::new(MonteCarlo::new(
            Arc::clone(graph),
            MonteCarloConfig {
                nr: 400,
                ..Default::default()
            },
        )),
    });

    specs
}

/// Measured sweep point for one algorithm configuration on one dataset.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algo: String,
    /// Parameter description.
    pub params: String,
    /// Mean query wall time (seconds).
    pub query_seconds: f64,
    /// `AvgError@k` against the shared pool.
    pub avg_error: f64,
    /// `Precision@k` against the shared pool.
    pub precision: f64,
    /// Index bytes.
    pub index_bytes: usize,
    /// Preprocessing seconds.
    pub preprocess_seconds: f64,
}

/// Runs the shared-pool sweep: all `specs` answer all `queries`; metrics
/// are computed against the union pool per query.
pub fn run_dataset_sweep(
    dataset: &str,
    specs: &[AlgoSpec],
    queries: &[NodeId],
    truth: &GroundTruth,
    k: usize,
    seed: u64,
) -> Vec<SweepRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut time_acc = vec![0.0f64; specs.len()];
    let mut err_acc = vec![0.0f64; specs.len()];
    let mut prec_acc = vec![0.0f64; specs.len()];

    for &u in queries {
        // Timed answers from every configuration.
        let mut all_scores = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let start = std::time::Instant::now();
            let scores = spec.algo.single_source(u, &mut rng);
            time_acc[i] += start.elapsed().as_secs_f64();
            all_scores.push(scores);
        }
        // Shared pool: union of all top-k answers.
        let mut pool: Vec<NodeId> = all_scores
            .iter()
            .flat_map(|s| s.top_k(k).into_iter().map(|(v, _)| v))
            .collect();
        pool.sort_unstable();
        pool.dedup();
        let mut reference: Vec<(NodeId, f64)> =
            pool.into_iter().map(|v| (v, truth.pair(u, v))).collect();
        reference.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        reference.truncate(k);

        for (i, scores) in all_scores.iter().enumerate() {
            err_acc[i] += avg_error_at_k(scores, &reference);
            prec_acc[i] += precision_at_k(scores, &reference, k);
        }
    }

    let q = queries.len().max(1) as f64;
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| SweepRow {
            dataset: dataset.to_string(),
            algo: spec.algo.name().to_string(),
            params: spec.params.clone(),
            query_seconds: time_acc[i] / q,
            avg_error: err_acc[i] / q,
            precision: prec_acc[i] / q,
            index_bytes: spec.algo.index_size_bytes(),
            preprocess_seconds: spec.preprocess_seconds,
        })
        .collect()
}

/// Converts sweep rows into report cells.
pub fn sweep_row_cells(r: &SweepRow) -> Vec<String> {
    vec![
        r.dataset.clone(),
        r.algo.clone(),
        r.params.clone(),
        format!("{:.6}", r.query_seconds),
        format!("{:.6}", r.avg_error),
        format!("{:.3}", r.precision),
        prsim_eval::report::human_bytes(r.index_bytes),
        format!("{:.3}", r.preprocess_seconds),
    ]
}

/// Headers matching [`sweep_row_cells`].
pub const SWEEP_HEADERS: [&str; 8] = [
    "dataset",
    "algorithm",
    "params",
    "query_s",
    "avg_err@k",
    "prec@k",
    "index",
    "preproc_s",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_end_to_end() {
        let g = Arc::new(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(80, 5.0, 2.0, 9),
        ));
        let truth = GroundTruth::exact(&g, 0.6);
        // Two cheap configs only.
        let mut specs = Vec::new();
        specs.push(AlgoSpec {
            params: "eps=0.2".into(),
            preprocess_seconds: 0.0,
            algo: Box::new(ProbeSim::new(
                Arc::clone(&g),
                ProbeSimConfig {
                    eps_a: 0.2,
                    ..Default::default()
                },
            )),
        });
        let prsim = PrsimAlgo::build((*g).clone(), PrsimConfig::default()).unwrap();
        specs.push(AlgoSpec {
            params: "eps=0.05".into(),
            preprocess_seconds: prsim.preprocess_seconds,
            algo: Box::new(prsim),
        });

        let rows = run_dataset_sweep("toy", &specs, &[0, 5, 11], &truth, 10, 77);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.query_seconds > 0.0);
            assert!(r.avg_error < 0.2, "{} error {}", r.algo, r.avg_error);
            assert!(r.precision > 0.3);
        }
        // PRSim row carries an index.
        assert!(rows[1].index_bytes > 0);
    }
}
