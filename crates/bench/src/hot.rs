//! Helpers shared by the hot-path benchmark binaries (`query_hot`,
//! `dynamic_hot`): the common engine configuration and the percentile
//! convention, kept in one place so the two committed `BENCH_*.json`
//! artifacts are guaranteed to measure the same setup.

use prsim_core::{HubCount, PrsimConfig, QueryParams};

/// Per-round sample multiplier of the hot-path benchmarks
/// (`d_r = HOT_C_MULT / ε²`).
pub const HOT_C_MULT: f64 = 5.0;

/// The engine configuration both hot-path benchmarks build with.
pub fn hot_bench_config() -> PrsimConfig {
    PrsimConfig {
        eps: 0.1,
        hubs: HubCount::SqrtN,
        query: QueryParams::Practical { c_mult: HOT_C_MULT },
        ..Default::default()
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0.0 empty).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0); // round(1.5) = 2
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn config_is_valid() {
        hot_bench_config().validate().unwrap();
    }
}
