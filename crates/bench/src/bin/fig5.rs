//! Figure 5: AvgError@50 vs preprocessing time (index-based algorithms).
//!
//! Usage: `cargo run -p prsim-bench --bin fig5 --release [-- --scale 0.5]`

use prsim_bench::sweep::{paper_grids, run_dataset_sweep};
use prsim_bench::{accuracy_datasets, parse_scale};
use prsim_eval::experiment::pick_query_nodes;
use prsim_eval::report::{render_table, write_csv};
use prsim_eval::GroundTruth;
use std::sync::Arc;

fn main() {
    let scale = parse_scale();
    let heavy = std::env::args().any(|a| a == "--heavy");
    println!("== Figure 5: AvgError@50 vs preprocessing time (scale {scale}) ==\n");
    let headers = ["dataset", "algorithm", "params", "preproc_s", "avg_err@50"];
    let mut cells = Vec::new();
    for ds in accuracy_datasets(scale) {
        let g = Arc::new(ds.graph);
        eprintln!("[fig5] dataset {} ...", ds.name);
        let truth = GroundTruth::exact(&g, 0.6);
        let specs = paper_grids(&g, heavy, 900 + ds.name.len() as u64);
        let queries = pick_query_nodes(g.node_count(), 10, 42);
        for r in run_dataset_sweep(ds.name, &specs, &queries, &truth, 50, 4242) {
            if r.preprocess_seconds == 0.0 {
                continue; // index-free algorithms are not in Figure 5
            }
            cells.push(vec![
                r.dataset,
                r.algo,
                r.params,
                format!("{:.4}", r.preprocess_seconds),
                format!("{:.6}", r.avg_error),
            ]);
        }
    }
    println!("{}", render_table(&headers, &cells));
    let _ = write_csv("target/fig5.csv", &headers, &cells);
    println!(
        "\nPaper shape check: PRSim preprocesses faster than SLING at every\n\
         error level (no per-node eta sampling) and far faster than READS\n\
         at matched accuracy."
    );
}
