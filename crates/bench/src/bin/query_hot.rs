//! `query_hot` — the single-source hot-path benchmark behind
//! `BENCH_query.json`.
//!
//! Measures, on the Chung-Lu benchmark family (the same generator family
//! as the paper stand-ins in [`prsim_bench::datasets`]), per graph size:
//!
//! * engine build time,
//! * single-source latency (p50 / p95 / mean over a seeded query set) and
//!   the derived queries-per-second, in **both walk-cache modes** (the
//!   default cached engine and a `walk_cache_budget = 0` engine) and on
//!   the f32 reserve arena,
//! * walk-cache observability: budget, pool count, resident bytes,
//!   terminal/η hit rates and mean wavefront peak over the query set,
//! * index memory: live postings, offset-table slots and resident
//!   `size_bytes` for both arena precisions, plus the estimated resident
//!   size of the pre-arena nested `Vec<Vec<Vec<(NodeId, f64)>>>` layout
//!   (16 bytes per entry after padding + 24-byte `Vec` headers) so the
//!   compaction ratio is visible in the committed trajectory,
//! * batch throughput of [`Prsim::batch_single_source`] at requested 1,
//!   2 and 4 threads, recording the *effective* worker count after the
//!   hardware/chunk cap ([`Prsim::effective_batch_threads`]).
//!
//! Everything is seeded, so two runs on the same machine measure the same
//! work — the JSON is machine-comparable, not machine-portable.
//!
//! ```text
//! query_hot [--smoke] [--out PATH] [--check PATH] [--queries N]
//! ```
//!
//! * default: run the full family (5k / 20k / 100k nodes) and write
//!   `BENCH_query.json` in the current directory;
//! * `--smoke`: run only the 5k graph (seconds, for CI); both cache
//!   modes are still measured, so CI covers cached and uncached engines;
//! * `--check PATH`: after running, compare against the committed JSON at
//!   `PATH`; exit non-zero when the file is malformed, the fresh
//!   single-source p50 regresses by more than 3x, the committed row lacks
//!   the index-memory, walk-cache or paged fields, the fresh f64
//!   `size_bytes` exceeds 1.1x its committed value, the fresh walk-cache
//!   `resident_bytes` exceeds 1.1x its committed value (memory
//!   guardrails), or the paged qps-vs-budget curve collapses against the
//!   committed one. Every run (with or without `--check`) additionally
//!   hard-asserts that the paged buffer pool's peak resident bytes stay
//!   within the memory budget at every sweep point.

use prsim_bench::hot::{hot_bench_config, percentile, HOT_C_MULT};
use prsim_bench::json as mini_json;
use prsim_core::pagerank::reverse_pagerank;
use prsim_core::{
    PagedOptions, Prsim, PrsimConfig, PrsimIndex, QueryPlan, QueryWorkspace, ReservePrecision,
    SimRankScores,
};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::NodeId;
use prsim_server::FsStorage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Latency tolerance of `--check`: fail when fresh p50 exceeds 3x the
/// committed p50 for the same dataset.
const CHECK_TOLERANCE: f64 = 3.0;

/// Memory tolerance of `--check`: fail when the fresh f64 arena
/// `size_bytes` (or the walk cache's `resident_bytes`) exceeds 1.1x the
/// committed value (the build is seeded, so any real growth is a layout
/// regression, not noise).
const SIZE_TOLERANCE: f64 = 1.1;

/// Page size of the out-of-core sweep. Small enough that even the 5k
/// smoke arena spans hundreds of pages, so the sweep measures real
/// pin/evict traffic, not a fully-pinned pool.
const PAGED_PAGE_BYTES: u32 = 4096;

/// Budget fractions of the paged sweep, as multiples of the postings
/// blob size. `1.0` caches the whole arena (the paged ceiling); each
/// halving doubles the eviction pressure.
const PAGED_FRACS: &[f64] = &[1.0, 0.5, 0.25, 0.125];

/// Curve tolerance of the paged `--check` gate: at each budget fraction
/// the fresh qps, normalized by the same-run full-budget qps (cancels
/// box drift), must stay within 3x of the committed normalized point —
/// a collapse in the qps-vs-budget curve flags a replacer or pin-path
/// regression. The budget itself is a hard gate: fresh peak resident
/// bytes must never exceed the budget.
const PAGED_CURVE_TOLERANCE: f64 = 3.0;

/// Plan-regression tolerance of `--check`: fail when the fused plan's
/// p50, *normalized by the same-run reference-plan p50* (the two plans
/// run interleaved per query, so the ratio cancels box drift that moves
/// absolute microseconds by ±50% between runs), regresses more than
/// 1.1x against the committed normalized p50.
const PLAN_TOLERANCE: f64 = 1.1;

struct DatasetSpec {
    name: &'static str,
    n: usize,
    avg_degree: f64,
    gamma: f64,
    seed: u64,
}

const FAMILY: &[DatasetSpec] = &[
    DatasetSpec {
        name: "chung_lu_5k",
        n: 5_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 42,
    },
    DatasetSpec {
        name: "chung_lu_20k",
        n: 20_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 43,
    },
    DatasetSpec {
        name: "chung_lu_100k",
        n: 100_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 44,
    },
];

struct BatchPoint {
    threads: usize,
    threads_used: usize,
    qps: f64,
}

struct IndexRow {
    hubs: usize,
    entries: usize,
    level_slots: usize,
    size_bytes_f64: usize,
    size_bytes_f32: usize,
    nested_f64_size_bytes: usize,
}

/// Walk-cache observability aggregated over one serial run.
#[derive(Default)]
struct CacheAgg {
    walks: usize,
    died: usize,
    term_hits: usize,
    eta_hits: usize,
    wavefront_peak_sum: usize,
    queries: usize,
}

impl CacheAgg {
    fn term_hit_rate(&self) -> f64 {
        self.term_hits as f64 / self.walks.max(1) as f64
    }

    fn eta_hit_rate(&self) -> f64 {
        self.eta_hits as f64 / (self.walks - self.died).max(1) as f64
    }

    fn wavefront_peak_mean(&self) -> f64 {
        self.wavefront_peak_sum as f64 / self.queries.max(1) as f64
    }
}

struct CacheRow {
    budget: usize,
    pools: usize,
    resident_bytes: usize,
    term_hit_rate: f64,
    eta_hit_rate: f64,
    wavefront_peak_mean: f64,
}

/// The reference-plan half of the interleaved fused-vs-reference run:
/// both plans answer every query back to back from identically seeded
/// RNGs, alternating which goes first, so the speedup is a paired
/// per-query statistic rather than a cross-run comparison.
struct PlanRow {
    p50_us: f64,
    qps: f64,
    /// Median over per-query `reference_us / fused_us` ratios.
    fused_speedup_paired: f64,
    /// Worst |ŝ_fused − ŝ_reference| over the query set — reassociation
    /// only, expected ~1e-16.
    max_abs_diff: f64,
}

/// One budget point of the out-of-core sweep: the engine serving the
/// same query set with its postings arena paged under a hard memory
/// budget (`budget_frac` × blob bytes).
struct PagedPoint {
    budget_frac: f64,
    budget_bytes: u64,
    p50_us: f64,
    qps: f64,
    peak_resident_bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

struct BenchRow {
    name: String,
    n: usize,
    m: usize,
    build_ms: f64,
    plan: String,
    p50_us: f64,
    p95_us: f64,
    mean_us: f64,
    qps: f64,
    alloc_qps: f64,
    nocache_p50_us: f64,
    nocache_qps: f64,
    f32_p50_us: f64,
    f32_qps: f64,
    reference: PlanRow,
    cache: CacheRow,
    index: IndexRow,
    paged: Vec<PagedPoint>,
    batch: Vec<BatchPoint>,
}

/// Consumes the scores enough that the optimizer cannot elide the query.
fn sink(scores: &SimRankScores) -> f64 {
    scores.get(scores.source()) + scores.len() as f64
}

/// Serial latency distribution of the workspace-reused hot path — the
/// steady state of a query server. Returns (sorted latencies µs, qps)
/// and folds per-query stats into `agg`.
fn serial_latencies(
    engine: &Prsim,
    sources: &[NodeId],
    guard: &mut f64,
    agg: &mut CacheAgg,
) -> (Vec<f64>, f64) {
    let mut ws = QueryWorkspace::new();
    // Warmup (touches the index + graph pages, grows the workspace).
    for (i, &u) in sources.iter().take(10).enumerate() {
        let mut rng = StdRng::seed_from_u64(0xDEAD + i as u64);
        *guard += sink(&engine.single_source_with_workspace(u, &mut ws, &mut rng));
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(sources.len());
    let start = Instant::now();
    for (i, &u) in sources.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1_000 + i as u64);
        let t = Instant::now();
        let (scores, stats) = engine
            .try_single_source_with_workspace(u, &mut ws, &mut rng)
            .expect("sources pre-checked");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        *guard += sink(&scores);
        agg.walks += stats.walks;
        agg.died += stats.died;
        agg.term_hits += stats.cached_terminals;
        agg.eta_hits += stats.cached_eta;
        agg.wavefront_peak_sum += stats.wavefront_peak;
        agg.queries += 1;
    }
    let qps = sources.len() as f64 / start.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (lat_us, qps)
}

/// Interleaved fused-vs-reference measurement on one engine: each query
/// is answered by both plans back to back from identically seeded RNGs
/// (the order alternates per query to cancel cache-warming asymmetry),
/// yielding the reference-plan latency distribution, the paired
/// per-query speedup median, and the worst plan-to-plan estimate
/// divergence. The engine is handed back in its original plan.
fn paired_plan_latencies(engine: &mut Prsim, sources: &[NodeId], guard: &mut f64) -> PlanRow {
    let original = engine.config().plan;
    let mut ws = QueryWorkspace::new();
    for (i, &u) in sources.iter().take(10).enumerate() {
        for plan in [QueryPlan::Reference, QueryPlan::Fused] {
            engine.set_query_plan(plan);
            let mut rng = StdRng::seed_from_u64(0xDEAD + i as u64);
            *guard += sink(&engine.single_source_with_workspace(u, &mut ws, &mut rng));
        }
    }
    let mut ref_us: Vec<f64> = Vec::with_capacity(sources.len());
    let mut ratios: Vec<f64> = Vec::with_capacity(sources.len());
    let mut max_abs_diff = 0.0f64;
    for (i, &u) in sources.iter().enumerate() {
        let order = if i % 2 == 0 {
            [QueryPlan::Reference, QueryPlan::Fused]
        } else {
            [QueryPlan::Fused, QueryPlan::Reference]
        };
        let mut pair_us = [0.0f64; 2]; // [reference, fused]
        let mut answers: Vec<SimRankScores> = Vec::with_capacity(2);
        for plan in order {
            engine.set_query_plan(plan);
            let mut rng = StdRng::seed_from_u64(1_000 + i as u64);
            let t = Instant::now();
            let (scores, _) = engine
                .try_single_source_with_workspace(u, &mut ws, &mut rng)
                .expect("sources pre-checked");
            pair_us[(plan == QueryPlan::Fused) as usize] = t.elapsed().as_secs_f64() * 1e6;
            *guard += sink(&scores);
            answers.push(scores);
        }
        max_abs_diff = max_abs_diff.max(answers[0].max_abs_diff(&answers[1]));
        ref_us.push(pair_us[0]);
        ratios.push(pair_us[0] / pair_us[1]);
    }
    engine.set_query_plan(original);
    let total_ref_secs = ref_us.iter().sum::<f64>() / 1e6;
    ref_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    PlanRow {
        p50_us: percentile(&ref_us, 0.50),
        qps: sources.len() as f64 / total_ref_secs.max(f64::MIN_POSITIVE),
        fused_speedup_paired: percentile(&ratios, 0.50),
        max_abs_diff,
    }
}

/// Out-of-core sweep: demote the engine's arena to a v4 page file once,
/// then serve the same seeded query set with the buffer pool capped at
/// each budget fraction of the blob size. All points (and the resident
/// engine they are compared to) run the reference plan — the paged
/// arena resolves `Auto` to reference, so pinning keeps the sweep
/// apples-to-apples. The sweep asserts fault-free serving (local disk,
/// no injection) and that the pool honors every budget.
fn run_paged_sweep(engine: &Prsim, spec: &DatasetSpec, sources: &[NodeId]) -> Vec<PagedPoint> {
    let dir = std::env::temp_dir().join(format!("prsim_query_hot_paged_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("{}.pages", spec.name));
    engine
        .index()
        .write_paged(&FsStorage, &path, PAGED_PAGE_BYTES)
        .expect("arena demotes");
    let width = match engine.index().precision() {
        ReservePrecision::F64 => 8u64,
        ReservePrecision::F32 => 4,
    };
    let blob_bytes = engine.index().entry_count() as u64 * (4 + width);
    let config = engine.config().clone();
    let sorted = engine.graph().clone();
    let pi = reverse_pagerank(&sorted, config.sqrt_c(), 1e-12, config.max_level);

    let mut guard = 0.0;
    let mut points = Vec::with_capacity(PAGED_FRACS.len());
    for &frac in PAGED_FRACS {
        let budget_bytes = (blob_bytes as f64 * frac) as u64;
        let opts = PagedOptions {
            page_bytes: PAGED_PAGE_BYTES,
            memory_budget: budget_bytes,
            hot_ranks: 0,
        };
        let index = PrsimIndex::open_paged(Arc::new(FsStorage), &path, sorted.node_count(), &opts)
            .expect("budget fraction admits (meta tables outgrew the smallest fraction?)");
        let mut paged = Prsim::from_parts(sorted.clone(), pi.clone(), index, config.clone())
            .expect("paged engine builds");
        paged.set_query_plan(QueryPlan::Reference);
        let mut agg = CacheAgg::default();
        let (lat_us, qps) = serial_latencies(&paged, sources, &mut guard, &mut agg);
        let stats = paged.index().paging_stats().expect("engine is paged");
        assert_eq!(stats.faults, 0, "local-disk sweep must be fault-free");
        assert!(
            stats.peak_resident_bytes <= budget_bytes,
            "{}: pool peak {} B exceeds budget {} B (frac {})",
            spec.name,
            stats.peak_resident_bytes,
            budget_bytes,
            frac
        );
        points.push(PagedPoint {
            budget_frac: frac,
            budget_bytes,
            p50_us: percentile(&lat_us, 0.50),
            qps,
            peak_resident_bytes: stats.peak_resident_bytes,
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
        });
    }
    assert!(guard.is_finite());
    let _ = std::fs::remove_file(&path);
    points
}

/// Resident-size estimate of the pre-arena nested layout for the same
/// postings: `Vec<(u32, f64)>` stores 16 bytes per entry after padding,
/// plus a 24-byte `Vec` header per (hub, level) list and per hub, plus
/// the hub tables.
fn nested_layout_bytes(index: &prsim_core::PrsimIndex, n: usize) -> usize {
    let s = index.stats();
    s.entries * 16 + (s.level_slots + s.hubs) * 24 + s.hubs * 4 + n * 4
}

fn run_dataset(spec: &DatasetSpec, queries: usize) -> BenchRow {
    let graph = chung_lu_undirected(ChungLuConfig::new(
        spec.n,
        spec.avg_degree,
        spec.gamma,
        spec.seed,
    ));
    let n = graph.node_count();
    let m = graph.edge_count();

    let t0 = Instant::now();
    let mut engine =
        Prsim::build(graph.clone(), hot_bench_config()).expect("bench config is valid");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Seeded query set: uniform random sources, fixed across runs.
    let mut pick = StdRng::seed_from_u64(spec.seed ^ 0x9E37);
    let sources: Vec<NodeId> = (0..queries)
        .map(|_| pick.gen_range(0..n as NodeId))
        .collect();

    // All f64 measurements run before the other engines exist: their
    // builds would otherwise evict the f64 engine's working set (each
    // engine owns its own graph copy) and skew the serial numbers.
    let mut guard = 0.0;
    let mut agg = CacheAgg::default();
    let (lat_us, qps) = serial_latencies(&engine, &sources, &mut guard, &mut agg);
    let mean_us = lat_us.iter().sum::<f64>() / lat_us.len().max(1) as f64;
    let cache_row = {
        let c = engine.walk_cache().expect("hot config keeps the cache on");
        CacheRow {
            budget: engine.config().walk_cache_budget,
            pools: c.pool_count(),
            resident_bytes: c.resident_bytes(),
            term_hit_rate: agg.term_hit_rate(),
            eta_hit_rate: agg.eta_hit_rate(),
            wavefront_peak_mean: agg.wavefront_peak_mean(),
        }
    };

    // Interleaved fused-vs-reference: the reference plan is the frozen
    // PR 5 back half, so this paired run is the same-box baseline the
    // committed `pr5` block and the `--check` plan gate are built on.
    let reference = paired_plan_latencies(&mut engine, &sources, &mut guard);

    // Secondary: the allocating entry point (fresh transient workspace
    // per query), i.e. what a naive caller pays.
    let alloc_start = Instant::now();
    for (i, &u) in sources.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1_000 + i as u64);
        guard += sink(&engine.single_source(u, &mut rng));
    }
    let alloc_qps = sources.len() as f64 / alloc_start.elapsed().as_secs_f64();

    // Batch throughput at requested 1 / 2 / 4 threads; the engine caps
    // the workers it actually spawns, and both counts are recorded.
    let mut batch = Vec::new();
    for threads in [1usize, 2, 4] {
        let t = Instant::now();
        let results = engine
            .batch_single_source(&sources, threads, 77)
            .expect("sources pre-checked");
        let secs = t.elapsed().as_secs_f64();
        guard += results.iter().map(sink).sum::<f64>();
        batch.push(BatchPoint {
            threads,
            threads_used: Prsim::effective_batch_threads(sources.len(), threads),
            qps: sources.len() as f64 / secs,
        });
    }

    // Out-of-core sweep: the same arena served through the paged buffer
    // pool at shrinking hard budgets. Runs after every resident
    // measurement so the paged engines cannot evict the resident
    // working set mid-measurement.
    let paged = run_paged_sweep(&engine, spec, &sources);

    // The same engine with the walk cache disabled: the committed
    // trajectory records both modes, and CI's smoke run therefore
    // exercises cached and uncached engines alike.
    let engine_nocache = Prsim::build(
        graph.clone(),
        PrsimConfig {
            walk_cache_budget: 0,
            ..hot_bench_config()
        },
    )
    .expect("bench config is valid");
    let mut nocache_agg = CacheAgg::default();
    let (nc_lat_us, nocache_qps) =
        serial_latencies(&engine_nocache, &sources, &mut guard, &mut nocache_agg);
    assert_eq!(nocache_agg.term_hits, 0, "budget 0 must never hit");
    drop(engine_nocache);

    // The same engine with the compact f32 arena (identical hubs, seeds
    // and sample counts; only the reserve width differs).
    let engine_f32 = Prsim::build(
        graph,
        PrsimConfig {
            reserve_precision: ReservePrecision::F32,
            ..hot_bench_config()
        },
    )
    .expect("bench config is valid");
    let mut f32_agg = CacheAgg::default();
    let (f32_lat_us, f32_qps) = serial_latencies(&engine_f32, &sources, &mut guard, &mut f32_agg);

    assert!(guard.is_finite());
    let stats = engine.index().stats();
    BenchRow {
        name: spec.name.to_string(),
        n,
        m,
        build_ms,
        plan: engine.query_plan().to_string(),
        p50_us: percentile(&lat_us, 0.50),
        p95_us: percentile(&lat_us, 0.95),
        mean_us,
        qps,
        alloc_qps,
        nocache_p50_us: percentile(&nc_lat_us, 0.50),
        nocache_qps,
        f32_p50_us: percentile(&f32_lat_us, 0.50),
        f32_qps,
        reference,
        cache: cache_row,
        index: IndexRow {
            hubs: stats.hubs,
            entries: stats.entries,
            level_slots: stats.level_slots,
            size_bytes_f64: stats.size_bytes,
            size_bytes_f32: engine_f32.index().stats().size_bytes,
            nested_f64_size_bytes: nested_layout_bytes(engine.index(), n),
        },
        paged,
        batch,
    }
}

/// Baseline blocks of an existing benchmark file (`pre_pr`, `pr3`),
/// re-emitted on regeneration so committed history survives `--out`
/// overwrites.
fn preserved_block(out_path: &str, key: &str) -> Option<String> {
    let existing = std::fs::read_to_string(out_path).ok()?;
    let value = mini_json::parse(&existing).ok()?;
    value.get(key).map(mini_json::render)
}

fn render_json(rows: &[BenchRow], queries: usize, preserved: &[(&str, String)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"query_hot\",\n");
    out.push_str("  \"unit_note\": \"latencies in microseconds, build in milliseconds; seeded and machine-comparable\",\n");
    let cfg = hot_bench_config();
    out.push_str(&format!(
        "  \"config\": {{\"eps\": {}, \"c\": {}, \"query\": \"practical c_mult={}\", \"hubs\": \"sqrt_n\", \"queries_per_dataset\": {queries}}},\n",
        cfg.eps, cfg.c, HOT_C_MULT,
    ));
    out.push_str(&format!(
        "  \"machine\": {{\"cpu_cores\": {}}},\n",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    ));
    for (key, block) in preserved {
        out.push_str(&format!("  \"{key}\": {block},\n"));
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"build_ms\": {:.2},\n",
            r.name, r.n, r.m, r.build_ms
        ));
        out.push_str(&format!(
            "     \"single_source\": {{\"plan\": \"{}\", \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"mean_us\": {:.1}, \"qps\": {:.1}, \"alloc_qps\": {:.1}}},\n",
            r.plan, r.p50_us, r.p95_us, r.mean_us, r.qps, r.alloc_qps
        ));
        out.push_str(&format!(
            "     \"single_source_reference\": {{\"plan\": \"reference\", \"p50_us\": {:.1}, \"qps\": {:.1}, \"fused_speedup_paired\": {:.3}, \"max_abs_diff_vs_fused\": {:.3e}}},\n",
            r.reference.p50_us,
            r.reference.qps,
            r.reference.fused_speedup_paired,
            r.reference.max_abs_diff
        ));
        out.push_str(&format!(
            "     \"single_source_nocache\": {{\"plan\": \"{}\", \"p50_us\": {:.1}, \"qps\": {:.1}}},\n",
            r.plan, r.nocache_p50_us, r.nocache_qps
        ));
        out.push_str(&format!(
            "     \"single_source_f32\": {{\"plan\": \"{}\", \"p50_us\": {:.1}, \"qps\": {:.1}}},\n",
            r.plan, r.f32_p50_us, r.f32_qps
        ));
        let c = &r.cache;
        out.push_str(&format!(
            "     \"walk_cache\": {{\"budget\": {}, \"pools\": {}, \"resident_bytes\": {}, \"term_hit_rate\": {:.3}, \"eta_hit_rate\": {:.3}, \"wavefront_peak_mean\": {:.1}}},\n",
            c.budget, c.pools, c.resident_bytes, c.term_hit_rate, c.eta_hit_rate, c.wavefront_peak_mean
        ));
        let ix = &r.index;
        out.push_str(&format!(
            "     \"index\": {{\"hubs\": {}, \"entries\": {}, \"level_slots\": {}, \"size_bytes\": {}, \"size_bytes_f32\": {}, \"nested_f64_size_bytes\": {}, \"f32_vs_nested\": {:.3}}},\n",
            ix.hubs,
            ix.entries,
            ix.level_slots,
            ix.size_bytes_f64,
            ix.size_bytes_f32,
            ix.nested_f64_size_bytes,
            ix.size_bytes_f32 as f64 / ix.nested_f64_size_bytes.max(1) as f64
        ));
        out.push_str(&format!(
            "     \"paged\": {{\"plan\": \"reference\", \"page_bytes\": {PAGED_PAGE_BYTES}, \"points\": ["
        ));
        for (j, p) in r.paged.iter().enumerate() {
            out.push_str(&format!(
                "{{\"budget_frac\": {:.3}, \"budget_bytes\": {}, \"p50_us\": {:.1}, \"qps\": {:.1}, \"peak_resident_bytes\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}}",
                p.budget_frac, p.budget_bytes, p.p50_us, p.qps, p.peak_resident_bytes, p.hits, p.misses, p.evictions
            ));
            if j + 1 < r.paged.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]},\n");
        out.push_str("     \"batch\": [");
        for (j, b) in r.batch.iter().enumerate() {
            out.push_str(&format!(
                "{{\"threads\": {}, \"threads_used\": {}, \"qps\": {:.1}}}",
                b.threads, b.threads_used, b.qps
            ));
            if j + 1 < r.batch.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `pr5` baseline block: reference-plan latency per dataset from
/// this run's interleaved measurement, plus the paired speedup the fused
/// plan achieved against it on the same box, same queries, same minute.
fn render_pr5_block(rows: &[BenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\"note\": \"reference plan = frozen PR 5 back half, measured interleaved with the fused plan (paired per-query, alternating order); speedup is the per-query ratio median\", \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"p50_us\": {:.1}, \"qps\": {:.1}, \"fused_speedup_paired\": {:.3}}}",
            r.name, r.reference.p50_us, r.reference.qps, r.reference.fused_speedup_paired
        ));
        if i + 1 < rows.len() {
            out.push_str(", ");
        }
    }
    out.push_str("]}");
    out
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_query.json".to_string());
    let check_path = arg_value(&args, "--check");
    let queries: usize = arg_value(&args, "--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 60 } else { 200 });

    let specs: Vec<&DatasetSpec> = if smoke {
        FAMILY.iter().take(1).collect()
    } else {
        FAMILY.iter().collect()
    };

    let mut rows = Vec::new();
    for spec in specs {
        eprintln!("running {} (n = {}) ...", spec.name, spec.n);
        let row = run_dataset(spec, queries);
        eprintln!(
            "  plan {} | reference p50 {:.0} us | paired speedup {:.2}x | plan diff {:.1e}",
            row.plan,
            row.reference.p50_us,
            row.reference.fused_speedup_paired,
            row.reference.max_abs_diff,
        );
        eprintln!(
            "  build {:.1} ms | p50 {:.0} us | p95 {:.0} us | {:.0} qps serial ({:.0} nocache, {:.0} f32) | {:.0} qps batch | index {} B (f32 {} B) | cache {} B, hit {:.2}/{:.2}, peak {:.0}",
            row.build_ms,
            row.p50_us,
            row.p95_us,
            row.qps,
            row.nocache_qps,
            row.f32_qps,
            row.batch.last().map(|b| b.qps).unwrap_or(0.0),
            row.index.size_bytes_f64,
            row.index.size_bytes_f32,
            row.cache.resident_bytes,
            row.cache.term_hit_rate,
            row.cache.eta_hit_rate,
            row.cache.wavefront_peak_mean,
        );
        for p in &row.paged {
            eprintln!(
                "  paged {:>5.3}x budget ({} B): p50 {:.0} us | {:.0} qps | peak {} B | {} hits / {} misses / {} evictions",
                p.budget_frac, p.budget_bytes, p.p50_us, p.qps, p.peak_resident_bytes, p.hits, p.misses, p.evictions,
            );
        }
        rows.push(row);
    }

    let mut preserved: Vec<(&str, String)> = ["pre_pr", "pr3", "pr4", "pr5"]
        .iter()
        .filter_map(|&k| preserved_block(&out_path, k).map(|b| (k, b)))
        .collect();
    // First regeneration after the fused plan landed: snapshot the
    // reference plan (the frozen PR 5 back half) as the `pr5` baseline
    // block, measured in this very run interleaved with the fused plan —
    // a same-box baseline, unlike the pre-fused absolute numbers.
    if !preserved.iter().any(|(k, _)| *k == "pr5") {
        preserved.push(("pr5", render_pr5_block(&rows)));
    }
    let json = render_json(&rows, queries, &preserved);
    // Self-check: what we write must parse.
    mini_json::parse(&json).expect("query_hot produced malformed JSON");

    if let Some(path) = check_path {
        check_against_baseline(&rows, &path);
    } else {
        std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
        eprintln!("wrote {out_path}");
    }
}

/// `--check`: compare measured p50 and index size against the committed
/// baseline JSON; the index-memory fields are required to be present.
fn check_against_baseline(rows: &[BenchRow], path: &str) {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));
    let value = mini_json::parse(&committed)
        .unwrap_or_else(|e| panic!("committed baseline {path} is malformed JSON: {e}"));
    let results = value
        .get("results")
        .and_then(mini_json::Value::as_array)
        .expect("committed baseline lacks a results array");

    let mut failures = 0usize;
    for row in rows {
        let committed_row = results
            .iter()
            .find(|r| r.get("name").and_then(mini_json::Value::as_str) == Some(&row.name));
        let committed_p50 = committed_row
            .and_then(|r| r.get("single_source"))
            .and_then(|s| s.get("p50_us"))
            .and_then(mini_json::Value::as_f64);
        match committed_p50 {
            None => {
                eprintln!("FAIL: baseline has no p50_us entry for {}", row.name);
                failures += 1;
            }
            Some(base) if row.p50_us > base * CHECK_TOLERANCE => {
                eprintln!(
                    "FAIL: {} p50 regressed {:.0} us -> {:.0} us (> {CHECK_TOLERANCE}x)",
                    row.name, base, row.p50_us
                );
                failures += 1;
            }
            Some(base) => {
                eprintln!(
                    "OK: {} p50 {:.0} us vs committed {:.0} us",
                    row.name, row.p50_us, base
                );
            }
        }
        // Plan guardrail: the fused plan must not regress against its
        // own committed p50. Absolute microseconds drift with box state,
        // so both sides are normalized by their same-run reference-plan
        // p50 (the interleaved pair cancels the drift): fail when
        // fresh(fused/reference) > committed(fused/reference) × 1.1.
        let committed_ref_p50 = committed_row
            .and_then(|r| r.get("single_source_reference"))
            .and_then(|s| s.get("p50_us"))
            .and_then(mini_json::Value::as_f64);
        match (committed_p50, committed_ref_p50) {
            (Some(base), Some(base_ref)) if base_ref > 0.0 => {
                let committed_norm = base / base_ref;
                let fresh_norm = row.p50_us / row.reference.p50_us;
                if fresh_norm > committed_norm * PLAN_TOLERANCE {
                    eprintln!(
                        "FAIL: {} fused plan regressed: p50/reference-p50 {:.3} vs committed {:.3} (> {PLAN_TOLERANCE}x)",
                        row.name, fresh_norm, committed_norm
                    );
                    failures += 1;
                } else {
                    eprintln!(
                        "OK: {} fused p50/reference-p50 {:.3} vs committed {:.3}",
                        row.name, fresh_norm, committed_norm
                    );
                }
            }
            _ => {
                eprintln!(
                    "FAIL: baseline has no single_source_reference.p50_us entry for {} (regenerate BENCH_query.json)",
                    row.name
                );
                failures += 1;
            }
        }
        // Memory guardrail: the committed row must carry the index block
        // and the fresh arena must not have silently grown.
        let committed_size = committed_row
            .and_then(|r| r.get("index"))
            .and_then(|ix| ix.get("size_bytes"))
            .and_then(mini_json::Value::as_f64);
        match committed_size {
            None => {
                eprintln!(
                    "FAIL: baseline has no index.size_bytes entry for {}",
                    row.name
                );
                failures += 1;
            }
            Some(base) if row.index.size_bytes_f64 as f64 > base * SIZE_TOLERANCE => {
                eprintln!(
                    "FAIL: {} index size grew {:.0} B -> {} B (> {SIZE_TOLERANCE}x)",
                    row.name, base, row.index.size_bytes_f64
                );
                failures += 1;
            }
            Some(base) => {
                eprintln!(
                    "OK: {} index {} B vs committed {:.0} B",
                    row.name, row.index.size_bytes_f64, base
                );
            }
        }
        // Out-of-core guardrails. The hard budget gate (fresh peak
        // resident ≤ budget at every fraction) already ran inside
        // `run_paged_sweep`; here the committed row must carry the paged
        // block, and the fresh qps-vs-budget curve — each point
        // normalized by the same-run full-budget point to cancel box
        // drift — must not collapse against the committed curve.
        let committed_paged = committed_row
            .and_then(|r| r.get("paged"))
            .and_then(|p| p.get("points"))
            .and_then(mini_json::Value::as_array);
        match committed_paged {
            None => {
                eprintln!(
                    "FAIL: baseline has no paged.points entry for {} (regenerate BENCH_query.json)",
                    row.name
                );
                failures += 1;
            }
            Some(committed_points) => {
                let norm = |points: &[&PagedPoint]| -> Option<f64> {
                    points.iter().find(|p| p.budget_frac == 1.0).map(|p| p.qps)
                };
                let fresh_refs: Vec<&PagedPoint> = row.paged.iter().collect();
                let fresh_full = norm(&fresh_refs).unwrap_or(0.0);
                let committed_point = |frac: f64, key: &str| -> Option<f64> {
                    committed_points
                        .iter()
                        .find(|p| {
                            p.get("budget_frac").and_then(mini_json::Value::as_f64) == Some(frac)
                        })
                        .and_then(|p| p.get(key))
                        .and_then(mini_json::Value::as_f64)
                };
                let committed_full = committed_point(1.0, "qps").unwrap_or(0.0);
                for p in &row.paged {
                    if p.budget_frac == 1.0 {
                        continue;
                    }
                    let Some(base_qps) = committed_point(p.budget_frac, "qps") else {
                        eprintln!(
                            "FAIL: baseline paged curve for {} lacks budget_frac {}",
                            row.name, p.budget_frac
                        );
                        failures += 1;
                        continue;
                    };
                    if fresh_full <= 0.0 || committed_full <= 0.0 {
                        eprintln!(
                            "FAIL: {} paged curve lacks a full-budget point to normalize by",
                            row.name
                        );
                        failures += 1;
                        break;
                    }
                    let fresh_norm = p.qps / fresh_full;
                    let committed_norm = base_qps / committed_full;
                    if fresh_norm * PAGED_CURVE_TOLERANCE < committed_norm {
                        eprintln!(
                            "FAIL: {} paged qps at {}x budget collapsed: normalized {:.3} vs committed {:.3} (> {PAGED_CURVE_TOLERANCE}x)",
                            row.name, p.budget_frac, fresh_norm, committed_norm
                        );
                        failures += 1;
                    } else {
                        eprintln!(
                            "OK: {} paged qps at {}x budget: normalized {:.3} vs committed {:.3}",
                            row.name, p.budget_frac, fresh_norm, committed_norm
                        );
                    }
                }
            }
        }
        // Walk-cache memory guardrail: the committed row must carry the
        // walk_cache block, and the fresh pools must not have silently
        // grown (builds are seeded, so growth is a sizing regression).
        let committed_cache = committed_row
            .and_then(|r| r.get("walk_cache"))
            .and_then(|c| c.get("resident_bytes"))
            .and_then(mini_json::Value::as_f64);
        match committed_cache {
            None => {
                eprintln!(
                    "FAIL: baseline has no walk_cache.resident_bytes entry for {}",
                    row.name
                );
                failures += 1;
            }
            Some(base) if row.cache.resident_bytes as f64 > base * SIZE_TOLERANCE => {
                eprintln!(
                    "FAIL: {} walk cache grew {:.0} B -> {} B (> {SIZE_TOLERANCE}x)",
                    row.name, base, row.cache.resident_bytes
                );
                failures += 1;
            }
            Some(base) => {
                eprintln!(
                    "OK: {} walk cache {} B vs committed {:.0} B",
                    row.name, row.cache.resident_bytes, base
                );
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
